"""E9 — Figure 8 / Appendix F: per-country scatter of visible vs accessibility
native-language share.

Each point is one website: x = share of visible text in the native language,
y = share of accessibility text in the native language.  The paper highlights
the dense bottom-right cluster (native visible content, little native
accessibility text) for countries like Thailand, and the top-right cluster
(consistent sites) for countries like Japan and Israel.
"""

from __future__ import annotations

from repro.core.mismatch import country_scatter


def test_fig8_country_scatter(benchmark, dataset, reporter) -> None:
    scatters = benchmark(lambda: {country: country_scatter(dataset, country)
                                  for country in dataset.countries()})

    lines = [f"{'country':<8}{'sites':>7}{'bottom-right %':>16}{'top-right %':>13}"
             "   (x>=50 and y<25 / x>=50 and y>=50)"]
    clusters: dict[str, tuple[float, float]] = {}
    for country in sorted(scatters):
        points = scatters[country]
        total = len(points)
        bottom_right = sum(1 for p in points
                           if p.visible_native_pct >= 50 and p.accessibility_native_pct < 25)
        top_right = sum(1 for p in points
                        if p.visible_native_pct >= 50 and p.accessibility_native_pct >= 50)
        clusters[country] = (bottom_right / total, top_right / total)
        lines.append(f"{country:<8}{total:>7}{bottom_right / total * 100:>15.1f}%"
                     f"{top_right / total * 100:>12.1f}%")
    lines.append("paper anchor: bottom-right cluster dense for th/bd/in, "
                 "top-right cluster dense for jp/il")
    reporter("Figure 8 — visible vs accessibility native share, per-site scatter", lines)

    # Every point has native-majority visible content (the inclusion criterion).
    for country, points in scatters.items():
        assert all(point.visible_native_pct >= 50.0 for point in points), country

    # Cluster shape: mismatch-heavy countries have a larger bottom-right
    # cluster than Japan/Israel; Japan/Israel have the larger top-right one.
    for country in ("bd", "th", "in"):
        assert clusters[country][0] > clusters["jp"][0], country
        assert clusters[country][0] > clusters["il"][0], country
    assert clusters["jp"][1] > clusters["bd"][1]
    assert clusters["il"][1] > clusters["bd"][1]

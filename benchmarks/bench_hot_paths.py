"""Hot paths — memoised script scoring, table-driven n-gram scoring, profiling overhead.

PR 7 rewrote the three CPU-heaviest post-index primitives around
precomputed state: ``script_histogram``/``textual_length`` classify each
*distinct* character once through a codepoint→script memo instead of
bisecting per character, ``extract_ngrams`` memoises per-token gram dicts,
and ``NGramModel.score`` folds the Laplace smoothing into a precomputed
log-probability table so scoring is one dict lookup per gram.  Every fast
path keeps its naive reference implementation, and the parity suites
(``tests/test_langid_hot_paths.py``) pin them equal on arbitrary inputs.

This harness measures what the rewrites bought:

* script scoring — characters/second through ``script_histogram`` +
  ``textual_length``, fast vs naive, on mixed-script text;
* n-gram scoring — texts/second through ``NGramModel.score`` vs
  ``score_naive`` across a trained classifier's models;
* parse+audit — records/second through the full per-page stage with and
  without an active :mod:`repro.perf` collector, to bound the profiling
  overhead; the collected counters ship in the JSON payload.

Set ``LANGCRUX_BENCH_ASSERT_SPEEDUP=0`` to demote the throughput targets to
report-only lines (CI does this: shared runners are too noisy for
wall-clock gates) — result parity is always asserted.
"""

from __future__ import annotations

import os
import time

from repro import perf
from repro.audit.engine import AuditEngine
from repro.core.extraction import extract_page
from repro.html.parser import parse_html
from repro.langid.ngram import NGramClassifier
from repro.langid.scripts import (
    script_histogram,
    script_histogram_naive,
    textual_length,
    textual_length_naive,
)

#: Minimum fast/naive throughput ratio for the langid hot paths (the PR's
#: acceptance floor is 2x on scoring; measured locally well above that, the
#: margin absorbs machine noise).
TARGET_SPEEDUP = 2.0

#: Mixed-script corpus shaped like real accessibility texts: short strings,
#: several scripts, emoji and digits.  Repetition is realistic — crawled
#: pages reuse the same alt/label phrases — and exercises the memo hit path.
SCRIPT_TEXTS = [
    "স্বাগতম আমাদের সাইটে welcome to our site",
    "ไทยกข เมนูหลัก main menu 012",
    "汉字テキスト mixed with Latin text and 😀 emoji",
    "اردو متن کے ساتھ with some English",
    "ছবি: একটি নদীর দৃশ্য 🚀",
    "search অনুসন্ধান ค้นหา suche",
] * 40

NGRAM_TRAINING = {
    "en": ["the quick brown fox jumps over the lazy dog",
           "sign in register search menu home news contact"],
    "de": ["der schnelle braune fuchs springt über den faulen hund",
           "anmelden registrieren suche menü startseite neuigkeiten"],
    "th": ["เมนูหลัก ค้นหา หน้าแรก ข่าว ติดต่อเรา",
           "ลงชื่อเข้าใช้ สมัครสมาชิก"],
}

NGRAM_TEXTS = [
    "sign in to read the news",
    "registrieren und anmelden",
    "ค้นหาข่าวจากหน้าแรก",
    "the startseite menu ข่าว mixed",
] * 60


def _page_markup(groups: int) -> str:
    parts = ["<html lang='bn'><head><title>হট পাথ</title></head><body>"]
    for i in range(groups):
        parts.append(f"<p>অনুচ্ছেদ {i} with mixed বাংলা and English text</p>")
        parts.append(f"<img src='/i{i}.jpg' alt='ছবির বিবরণ {i}'>")
        parts.append(f"<label for='f{i}'>ক্ষেত্র {i}</label>"
                     f"<input type='text' id='f{i}'>")
        parts.append(f"<a href='/p{i}'>লিংক {i}</a>")
    parts.append("</body></html>")
    return "".join(parts)


def _time_script_pass(histogram, length, repeats: int) -> tuple[float, list]:
    results = []
    started = time.perf_counter()
    for _ in range(repeats):
        for text in SCRIPT_TEXTS:
            results.append((histogram(text, textual_only=True), length(text)))
    return time.perf_counter() - started, results


def _time_ngram_pass(classifier: NGramClassifier, naive: bool,
                     repeats: int) -> tuple[float, list]:
    models = classifier._models
    results = []
    started = time.perf_counter()
    for _ in range(repeats):
        for text in NGRAM_TEXTS:
            if naive:
                results.append({code: model.score_naive(text)
                                for code, model in models.items()})
            else:
                results.append(classifier.scores(text))
    return time.perf_counter() - started, results


def _time_parse_audit(markup: str, engine: AuditEngine, repeats: int,
                      collector: perf.PerfCounters | None) -> tuple[float, list]:
    results = []
    started = time.perf_counter()
    with perf.collecting(collector):
        for _ in range(repeats):
            document = parse_html(markup, url="https://bench.example.bd/")
            extraction = extract_page(document)
            report = engine.audit_document(document)
            results.append((extraction, report.to_dict()))
    return time.perf_counter() - started, results


def test_script_scoring_throughput(reporter) -> None:
    repeats = 6
    chars = sum(len(text) for text in SCRIPT_TEXTS) * repeats
    naive_s, naive_results = _time_script_pass(
        script_histogram_naive, textual_length_naive, repeats)
    fast_s, fast_results = _time_script_pass(
        script_histogram, textual_length, repeats)

    # The memo is a pure access-path change: identical outputs.
    assert fast_results == naive_results

    naive_cps, fast_cps = chars / naive_s, chars / fast_s
    speedup = fast_cps / naive_cps
    reporter("Hot paths — script scoring (memoised codepoint→script)", [
        f"naive {naive_cps:,.0f} chars/s, fast {fast_cps:,.0f} chars/s "
        f"(speedup {speedup:.2f}x)",
        f"target: >= {TARGET_SPEEDUP:.0f}x script-scoring throughput",
    ], data={
        "config": {"texts": len(SCRIPT_TEXTS), "repeats": repeats},
        "script_naive_cps": naive_cps,
        "script_fast_cps": fast_cps,
        "script_speedup": speedup,
        "target_speedup": TARGET_SPEEDUP,
    })
    if os.environ.get("LANGCRUX_BENCH_ASSERT_SPEEDUP", "1") != "0":
        assert speedup >= TARGET_SPEEDUP, (
            f"memoised script scoring reached {speedup:.2f}x, "
            f"expected >= {TARGET_SPEEDUP}x")


def test_ngram_scoring_throughput(reporter) -> None:
    classifier = NGramClassifier.train(NGRAM_TRAINING)
    repeats = 4
    texts = len(NGRAM_TEXTS) * repeats
    naive_s, naive_results = _time_ngram_pass(classifier, True, repeats)
    fast_s, fast_results = _time_ngram_pass(classifier, False, repeats)

    # Precomputed log tables evaluate the same expressions in the same
    # order: exact float equality, not approximate.
    assert fast_results == naive_results

    naive_tps, fast_tps = texts / naive_s, texts / fast_s
    speedup = fast_tps / naive_tps
    reporter("Hot paths — n-gram scoring (precomputed log tables)", [
        f"naive {naive_tps:,.0f} texts/s, fast {fast_tps:,.0f} texts/s "
        f"(speedup {speedup:.2f}x) across {len(NGRAM_TRAINING)} models",
        f"target: >= {TARGET_SPEEDUP:.0f}x n-gram scoring throughput",
    ], data={
        "config": {"texts": len(NGRAM_TEXTS), "repeats": repeats,
                   "models": sorted(NGRAM_TRAINING)},
        "ngram_naive_tps": naive_tps,
        "ngram_fast_tps": fast_tps,
        "ngram_speedup": speedup,
        "target_speedup": TARGET_SPEEDUP,
    })
    if os.environ.get("LANGCRUX_BENCH_ASSERT_SPEEDUP", "1") != "0":
        assert speedup >= TARGET_SPEEDUP, (
            f"table-driven n-gram scoring reached {speedup:.2f}x, "
            f"expected >= {TARGET_SPEEDUP}x")


def test_profiling_overhead(reporter) -> None:
    import gc

    engine = AuditEngine()
    markup = _page_markup(60)
    repeats = 15
    _time_parse_audit(markup, engine, 2, None)  # warm-up
    # Interleave the two modes and keep the best of each: back-to-back single
    # passes conflate the timer overhead with GC pressure from the first
    # pass's accumulated results and with machine noise.
    plain_s = profiled_s = float("inf")
    collector = perf.PerfCounters()
    plain_results = profiled_results = None
    for _ in range(3):
        gc.collect()
        seconds, profiled_results = _time_parse_audit(markup, engine, repeats,
                                                      collector)
        profiled_s = min(profiled_s, seconds)
        gc.collect()
        seconds, plain_results = _time_parse_audit(markup, engine, repeats, None)
        plain_s = min(plain_s, seconds)

    # Profiling observes the run; it must not change any result.
    assert profiled_results == plain_results
    assert collector.counters["parse.documents"] == 3 * repeats
    assert collector.stages["audit"].calls == 3 * repeats

    plain_rps, profiled_rps = repeats / plain_s, repeats / profiled_s
    overhead_pct = (plain_s and (profiled_s / plain_s - 1.0) * 100.0)
    reporter("Hot paths — profiling overhead on parse+extract+audit", [
        f"unprofiled {plain_rps:.1f} rec/s, profiled {profiled_rps:.1f} rec/s "
        f"(overhead {overhead_pct:+.1f}%)",
        f"collected: {collector.summary_line()}",
    ], data={
        "config": {"groups": 60, "repeats": repeats},
        "unprofiled_rps": plain_rps,
        "profiled_rps": profiled_rps,
        "profile_overhead_pct": overhead_pct,
        "perf": collector.as_dict(),
    })

"""Scaling — the real-HTTP transport against a live loopback site server.

The production transport stack replaces the simulated web with genuine
sockets; this harness measures what that costs and what the async layers
buy back.  A :class:`~repro.webgen.server.LocalSiteServer` serves the
synthetic web over loopback HTTP and the same origins are fetched three
ways through :class:`~repro.crawler.transport.HttpAsyncTransport`:

* sequentially (one request at a time over the pooled connections);
* batched, with ``MAX_IN_FLIGHT`` requests overlapped on one event loop;
* batched again through a warm :class:`~repro.crawler.transport.CachingTransport`,
  which must answer with **zero** network requests.

Responses must be byte-identical to the in-memory dispatch in every mode;
the batched walk must beat the sequential one.  Set
``LANGCRUX_BENCH_ASSERT_SPEEDUP=0`` to demote the throughput target to a
report-only line (CI does this; parity is always asserted).
"""

from __future__ import annotations

import asyncio
import os
import time

from repro.crawler.fetcher import AsyncFetcher, Fetcher, SimulatedTransport
from repro.crawler.metrics import TransportMetrics
from repro.crawler.transport import HttpAsyncTransport, build_transport_stack
from repro.webgen.profiles import get_profile
from repro.webgen.server import LocalSiteServer, SyntheticWeb
from repro.webgen.sitegen import SiteGenerator

ORIGINS = 40
MAX_IN_FLIGHT = 8
BENCHMARK_SEED = 2025

#: Loopback latency is microseconds, so overlap buys less than it would
#: over a real network; the batched walk must still never lose.
TARGET_SPEEDUP = 1.0


def _fetch_all(fetcher: AsyncFetcher, urls: list[str], max_in_flight: int):
    return asyncio.run(fetcher.fetch_many(urls, client_country="bd",
                                          via_vpn=True,
                                          max_in_flight=max_in_flight))


def test_http_transport_throughput(reporter, tmp_path) -> None:
    sites = SiteGenerator(get_profile("bd"),
                          seed=BENCHMARK_SEED).generate_sites(ORIGINS)
    web = SyntheticWeb(sites)
    urls = [f"https://{site.domain}/" for site in sites]
    # The parity reference: the simulated fetch walk (same redirect policy).
    simulated = Fetcher(SimulatedTransport(web))
    reference = {site.domain: simulated.fetch(f"https://{site.domain}/",
                                              client_country="bd", via_vpn=True)
                 for site in sites}

    with LocalSiteServer(web) as server:
        metrics = TransportMetrics()
        transport = HttpAsyncTransport(gateway=server.gateway, metrics=metrics)
        fetcher = AsyncFetcher(transport)
        try:
            started = time.perf_counter()
            sequential = _fetch_all(fetcher, urls, max_in_flight=1)
            sequential_s = time.perf_counter() - started

            started = time.perf_counter()
            batched = _fetch_all(fetcher, urls, max_in_flight=MAX_IN_FLIGHT)
            batched_s = time.perf_counter() - started
        finally:
            transport.close()

        stack = build_transport_stack(
            HttpAsyncTransport(gateway=server.gateway), cache_dir=tmp_path)
        try:
            cached_fetcher = AsyncFetcher(stack.transport)
            _fetch_all(cached_fetcher, urls, MAX_IN_FLIGHT)  # warm the cache
            network_before = stack.metrics.network_requests
            started = time.perf_counter()
            replayed = _fetch_all(cached_fetcher, urls, MAX_IN_FLIGHT)
            cached_s = time.perf_counter() - started
            warm_network = stack.metrics.network_requests - network_before
        finally:
            stack.close()

    sequential_rps = len(urls) / sequential_s
    batched_rps = len(urls) / batched_s
    cached_rps = len(urls) / cached_s
    reporter("Scaling — real-HTTP transport over a live loopback server", [
        f"origins: {len(urls)}, gateway: loopback, pooled connections "
        f"(opened {metrics.connections_opened}, reused {metrics.connections_reused})",
        f"sequential: {sequential_s:.2f}s, {sequential_rps:.1f} records/s",
        f"batched x{MAX_IN_FLIGHT}: {batched_s:.2f}s, {batched_rps:.1f} records/s "
        f"(speedup {sequential_s / batched_s:.2f}x)",
        f"warm cache: {cached_s:.2f}s, {cached_rps:.1f} records/s "
        f"({warm_network} network requests)",
    ], data={
        "config": {"origins": len(urls), "max_in_flight": MAX_IN_FLIGHT},
        "sequential_rps": sequential_rps,
        "batched_rps": batched_rps,
        "cached_rps": cached_rps,
        "speedup": sequential_s / batched_s,
        "warm_cache_network_requests": warm_network,
        "target_speedup": TARGET_SPEEDUP,
    })

    # Parity: every mode returns exactly what the in-memory dispatch serves.
    for responses in (sequential, batched, replayed):
        for response in responses:
            expected = reference[response.url.host]
            assert (response.status, response.body) == \
                (expected.status, expected.body), response.url.host

    # The warm cache must absorb the entire batch.
    assert warm_network == 0

    if os.environ.get("LANGCRUX_BENCH_ASSERT_SPEEDUP", "1") != "0":
        assert batched_rps >= TARGET_SPEEDUP * sequential_rps, (
            f"batched HTTP fetch reached {batched_rps / sequential_rps:.2f}x, "
            f"expected >= {TARGET_SPEEDUP}x")

"""Distributed crawl — worker scaling and warm-cache replay (`repro.dist`).

ROADMAP item 1: the file-based work-queue coordinator partitions per-country
sub-shard windows across independent worker *processes* sharing one crawl
cache, then merges results in rank order — byte-identical to the single-host
build.  This harness measures what that buys:

* **worker scaling** — cold-cache builds at 1, 2 and 4 local workers
  (records/s end to end, coordinator + workers);
* **warm-cache replay** — the same build again over the warmed shared
  cache, where every fetch replays from disk (the kill-and-resume recovery
  path: a re-issued window costs replay, not wire time).

Every build's output is asserted byte-identical to the sequential
single-host reference, and every warm run is asserted to replay stored
responses from the cache (fewer wire requests than cold; failed fetches
are never stored, so persistently-failing origins legitimately re-fetch) —
those are correctness claims, enforced regardless of
``LANGCRUX_BENCH_ASSERT_SPEEDUP``.  Throughput numbers are report-only at
this scale: process spawn + polling overhead dominates a synthetic crawl
this small, so the interesting signal is the warm/cold ratio and that
scaling does not *regress* the bytes.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.core.pipeline import LangCrUXPipeline, PipelineConfig
from repro.dist import dist_build

BENCHMARK_SEED = 2025

SITES_PER_COUNTRY = 8
SUB_SHARD_SIZE = 2
COUNTRIES = ("bd", "th")
WORKER_COUNTS = (1, 2, 4)


def _config(cache_dir: str | None) -> PipelineConfig:
    return PipelineConfig(countries=COUNTRIES,
                          sites_per_country=SITES_PER_COUNTRY,
                          seed=BENCHMARK_SEED, sub_shard_size=SUB_SHARD_SIZE,
                          crawl_cache=cache_dir)


def test_distributed_crawl_scaling(reporter, tmp_path_factory) -> None:
    # Spawned workers must import `repro` regardless of the invoking cwd.
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = os.environ.get("PYTHONPATH", "")
    os.environ["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    try:
        _run_harness(reporter, tmp_path_factory.mktemp("dist"))
    finally:
        os.environ["PYTHONPATH"] = existing


def _run_harness(reporter, root: Path) -> None:
    reference_path = root / "single-host.jsonl"
    started = time.perf_counter()
    LangCrUXPipeline(_config(None)).run(stream_to=reference_path,
                                        keep_in_memory=False)
    single_host_s = time.perf_counter() - started
    reference = reference_path.read_bytes()
    records = reference.count(b"\n")

    lines = [f"single-host reference: {records} records "
             f"in {single_host_s:.2f}s ({records / single_host_s:.1f} rec/s)"]
    data: dict = {"config": {"countries": list(COUNTRIES),
                             "sites_per_country": SITES_PER_COUNTRY,
                             "sub_shard_size": SUB_SHARD_SIZE,
                             "records": records},
                  "single_host_s": single_host_s,
                  "workers": {}}
    for workers in WORKER_COUNTS:
        cache_dir = root / f"cache-{workers}w"
        rates: dict[str, float] = {}
        wire: dict[str, int] = {}
        for phase in ("cold", "warm"):
            out = root / f"dist-{workers}w-{phase}.jsonl"
            started = time.perf_counter()
            result = dist_build(_config(str(cache_dir)),
                                root / f"queue-{workers}w-{phase}", out,
                                workers=workers, lease_timeout_s=30.0)
            elapsed = time.perf_counter() - started
            rates[phase] = records / elapsed
            transport = result.transport_metrics
            assert transport is not None
            wire[phase] = transport.network_requests
            assert out.read_bytes() == reference, (
                f"{workers}-worker {phase} build diverged from single-host bytes")
            assert result.windows_reissued == 0
            if phase == "warm":
                # Only uncacheable responses (failed fetches are never
                # stored) may touch the wire again; everything that was
                # stored must replay from disk.
                assert transport.cache_hits > 0
                assert transport.network_requests < wire["cold"], (
                    "warm-cache build refetched stored responses")
        lines.append(f"  {workers} worker(s): cold {rates['cold']:6.1f} rec/s "
                     f"({wire['cold']} wire), warm {rates['warm']:6.1f} rec/s "
                     f"({wire['warm']} wire, "
                     f"{rates['warm'] / rates['cold']:.2f}x replay speed)")
        data["workers"][workers] = {"cold_records_per_s": rates["cold"],
                                    "warm_records_per_s": rates["warm"],
                                    "cold_network_requests": wire["cold"],
                                    "warm_network_requests": wire["warm"]}
    lines.append("every build byte-identical to the single-host reference; "
                 "warm builds replayed every stored response from disk")
    reporter("Distributed crawl — worker scaling, warm vs cold cache", lines,
             data=data)

"""Scaling — parallel pipeline execution vs the sequential baseline.

The paper crawls and audits its twelve countries independently, which makes
the pipeline embarrassingly parallel.  This harness builds the same
12-country synthetic web sequentially and with 4-worker thread and process
backends, then reports wall-clock, records-per-second and the speedup per
backend — while asserting that every backend produces *byte-identical*
JSONL, the determinism contract of :mod:`repro.core.executor`.

The >= 2x records-per-second target at 4 workers needs real CPU parallelism
(the hot loops — page generation, HTML parsing, audits — are pure Python,
so the thread backend cannot beat the GIL); the assertion therefore applies
to the process backend and only when the machine exposes at least four
usable cores.  On smaller machines the harness still runs, reports the
measured numbers and verifies parity.  Set
``LANGCRUX_BENCH_ASSERT_SPEEDUP=0`` to demote the throughput target to a
report-only line (CI does this: shared runners are too noisy for a
wall-clock gate).
"""

from __future__ import annotations

import json
import os
import time

from repro.core.pipeline import LangCrUXPipeline, PipelineConfig

#: Per-country quota: big enough that per-shard work dominates dispatch
#: overhead, small enough to keep the harness in benchmark territory.
SITES_PER_COUNTRY = 12

BENCHMARK_SEED = 2025

WORKERS = 4

#: Minimum parallel speedup demanded of the process backend at 4 workers
#: when the hardware can actually run 4 shards at once.
TARGET_SPEEDUP = 2.0


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _config(**overrides) -> PipelineConfig:
    return PipelineConfig(sites_per_country=SITES_PER_COUNTRY, seed=BENCHMARK_SEED,
                          transport_failure_rate=0.02, **overrides)


def _timed_run(config: PipelineConfig):
    started = time.perf_counter()
    result = LangCrUXPipeline(config).run()
    return result, time.perf_counter() - started


def _dataset_jsonl(result) -> str:
    return "\n".join(json.dumps(record.to_dict(), ensure_ascii=False)
                     for record in result.dataset)


def test_parallel_pipeline_scaling(benchmark, reporter) -> None:
    sequential, sequential_s = _timed_run(_config())
    baseline_rps = len(sequential.dataset) / sequential_s

    threaded, threaded_s = _timed_run(_config(workers=WORKERS, executor="thread"))
    process_result, process_s = benchmark.pedantic(
        lambda: _timed_run(_config(workers=WORKERS, executor="process")),
        rounds=1, iterations=1,
    )

    runs = {
        "thread": (threaded, threaded_s),
        "process": (process_result, process_s),
    }
    cpus = _usable_cpus()
    lines = [
        f"usable CPU cores: {cpus}",
        f"sequential: {sequential_s:.2f}s, {baseline_rps:.1f} records/s "
        f"({len(sequential.dataset)} records, 12 countries)",
    ]
    for name, (result, elapsed) in runs.items():
        rps = len(result.dataset) / elapsed
        lines.append(
            f"{name} x{WORKERS}: {elapsed:.2f}s, {rps:.1f} records/s "
            f"(speedup {sequential_s / elapsed:.2f}x, shard wall-clock "
            f"{result.total_shard_seconds():.2f}s)")
    lines.append(
        f"target: >= {TARGET_SPEEDUP:.0f}x records/s on the process backend at "
        f"{WORKERS} workers" + ("" if cpus >= WORKERS else
                                f" — not asserted with only {cpus} core(s)"))
    reporter("Scaling — sequential vs parallel pipeline execution", lines, data={
        "config": {"workers": WORKERS, "countries": 12,
                   "records": len(sequential.dataset), "cpus": cpus},
        "sequential_rps": baseline_rps,
        "thread_rps": len(threaded.dataset) / threaded_s,
        "process_rps": len(process_result.dataset) / process_s,
        "thread_speedup": sequential_s / threaded_s,
        "process_speedup": sequential_s / process_s,
        "target_speedup": TARGET_SPEEDUP,
    })

    # Determinism: every backend serializes byte-identically.
    sequential_jsonl = _dataset_jsonl(sequential)
    for name, (result, _) in runs.items():
        assert _dataset_jsonl(result) == sequential_jsonl, name
        assert result.qualifying_site_counts() == sequential.qualifying_site_counts()

    # Per-shard metrics cover every country on every backend.
    for result in (sequential, threaded, process_result):
        assert set(result.shard_metrics) == set(sequential.selection_outcomes)

    # Throughput: only meaningful where 4 shards can genuinely run at once,
    # and only as a hard gate on quiet machines (see module docstring).
    strict = os.environ.get("LANGCRUX_BENCH_ASSERT_SPEEDUP", "1") != "0"
    if strict and cpus >= WORKERS:
        process_rps = len(process_result.dataset) / process_s
        assert process_rps >= TARGET_SPEEDUP * baseline_rps, (
            f"process backend reached {process_rps / baseline_rps:.2f}x, "
            f"expected >= {TARGET_SPEEDUP}x")

"""E1 — Table 1: the twelve language-sensitive accessibility elements.

The paper derives twelve elements from the Lighthouse/Axe rule set for which
natural language is integral.  This harness checks that the library's element
registry and audit-rule registry regenerate exactly that list.
"""

from __future__ import annotations

from repro.audit.rules import ALL_RULES, rule_ids
from repro.core.elements import ELEMENT_IDS, LANGUAGE_SENSITIVE_ELEMENTS

PAPER_TABLE1 = {
    "button-name", "document-title", "image-alt", "frame-title", "summary-name",
    "label", "input-image-alt", "select-name", "link-name", "input-button-name",
    "svg-img-alt", "object-alt",
}


def test_table1_language_sensitive_elements(benchmark, reporter) -> None:
    registry = benchmark(lambda: {spec.element_id for spec in LANGUAGE_SENSITIVE_ELEMENTS})

    assert registry == PAPER_TABLE1
    assert set(ELEMENT_IDS) == PAPER_TABLE1
    assert set(rule_ids()) == PAPER_TABLE1
    assert len(ALL_RULES) == 12

    reporter("Table 1 — web elements requiring natural language", [
        f"{'element':<20} {'HTML element':<28} audit rule implemented",
        *[f"{spec.element_id:<20} {spec.html_element:<28} yes"
          for spec in LANGUAGE_SENSITIVE_ELEMENTS],
        "paper: 12 elements; reproduced: "
        f"{len(LANGUAGE_SENSITIVE_ELEMENTS)} elements (exact match)",
    ])

"""E6 / E15 — Figure 5: CDFs of native-language usage in visible vs
accessibility text, and the Section 3 headline mismatch numbers.

For every country the harness regenerates both CDFs and the fraction of sites
whose accessibility text is less than 10% native.  Shape checks follow the
paper: the accessibility CDF sits far above the visible CDF at low native
shares (most sites have native visible content but little native
accessibility text), the mismatch exceeds 40% in Bangladesh and India(*),
exceeds a quarter in Thailand/China/Hong Kong, and stays low in Japan and
Israel.

(*) the benchmark dataset covers all twelve countries at 25 sites each, so
per-country fractions carry sampling noise of a few percentage points.
"""

from __future__ import annotations

from repro.core.mismatch import country_cdfs, low_native_accessibility_fraction

PAPER_HIGH_MISMATCH = ("bd", "in")
PAPER_MODERATE_MISMATCH = ("th", "cn", "hk")
PAPER_LOW_MISMATCH = ("jp", "il")


def test_fig5_visible_vs_accessibility_cdfs(benchmark, dataset, reporter) -> None:
    fractions = benchmark(lambda: {
        country: low_native_accessibility_fraction(dataset, country)
        for country in dataset.countries()
    })

    grid = (0, 10, 25, 50, 75, 90, 100)
    lines = [f"{'country':<8}{'P(a11y<10% native)':>20}   CDF of a11y native share at "
             f"{grid}"]
    for country in sorted(fractions):
        cdfs = country_cdfs(dataset, country)
        accessibility_series = [f"{value:.2f}" for _, value in cdfs.accessibility.tabulate(grid)]
        lines.append(f"{country:<8}{fractions[country] * 100:>19.1f}%   {accessibility_series}")
    lines.append("paper anchors: >40% for bd/in, >25% for th/cn/hk, <10% for jp/il")
    reporter("Figure 5 — native share CDFs and low-native-accessibility fractions", lines)

    for country in PAPER_HIGH_MISMATCH:
        assert fractions[country] > 0.3, country
    for country in PAPER_MODERATE_MISMATCH:
        assert fractions[country] > 0.15, country
    for country in PAPER_LOW_MISMATCH:
        assert fractions[country] < 0.25, country
    # The high-mismatch countries must exceed the low-mismatch ones.
    assert min(fractions[c] for c in PAPER_HIGH_MISMATCH) > \
        max(fractions[c] for c in PAPER_LOW_MISMATCH)

    # CDF shape: at a 10% native share the accessibility CDF dominates the
    # visible CDF everywhere (visible content is native by construction).
    for country in dataset.countries():
        cdfs = country_cdfs(dataset, country)
        assert cdfs.accessibility.evaluate(10.0) >= cdfs.visible.evaluate(10.0)

"""E4 — Figure 3: distribution of filtered accessibility texts by discard reason.

Regenerates, per country, the share of accessibility texts discarded by each
Appendix H rule, and checks the orderings the paper highlights: single-word
labels dominate (worst in Thailand, mild in Bangladesh), too-short labels are
a small but non-negligible slice, and URLs/file paths appear mostly in Hong
Kong, South Korea and Russia.
"""

from __future__ import annotations

from repro.core.analysis import filter_breakdown_by_country
from repro.core.filtering import DiscardCategory

#: Single-word shares reported in the paper (percent of accessibility texts).
PAPER_SINGLE_WORD = {"th": 33.0, "ru": 22.2, "gr": 18.03, "in": 17.1, "eg": 10.5, "bd": 6.9}


def test_fig3_filter_reason_distribution(benchmark, dataset, reporter) -> None:
    breakdown = benchmark(filter_breakdown_by_country, dataset)

    lines = [f"{'country':<8}{'single word':>14}{'too short':>12}{'generic':>10}"
             f"{'placeholder':>13}{'url/path':>10}{'total filtered':>16}"]
    for country in sorted(breakdown):
        categories = breakdown[country]
        single = categories.get(DiscardCategory.SINGLE_WORD, 0.0)
        paper_single = PAPER_SINGLE_WORD.get(country)
        paper_note = f" (paper {paper_single:.1f})" if paper_single is not None else ""
        lines.append(
            f"{country:<8}{single:>9.1f}%{paper_note:<12}"
            f"{categories.get(DiscardCategory.TOO_SHORT, 0.0):>7.1f}%"
            f"{categories.get(DiscardCategory.GENERIC_ACTION, 0.0):>9.1f}%"
            f"{categories.get(DiscardCategory.PLACEHOLDER, 0.0):>12.1f}%"
            f"{categories.get(DiscardCategory.URL_OR_PATH, 0.0):>9.1f}%"
            f"{sum(categories.values()):>15.1f}%"
        )
    reporter("Figure 3 — filtered accessibility texts by discard reason", lines)

    single_word = {country: categories.get(DiscardCategory.SINGLE_WORD, 0.0)
                   for country, categories in breakdown.items()}
    # Shape: Thailand worst, Bangladesh among the mildest, Russia above Bangladesh.
    assert max(single_word, key=single_word.get) == "th"
    assert single_word["th"] > 15.0
    assert single_word["bd"] < single_word["th"]
    assert single_word["ru"] > single_word["bd"]
    # Every country discards a non-trivial share of its accessibility text.
    for country, categories in breakdown.items():
        assert sum(categories.values()) > 5.0, country

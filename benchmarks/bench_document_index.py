"""Scaling — single-pass DocumentIndex vs naive per-rule traversal.

Auditing and extracting one page used to cost ~25 full DOM walks: every
audit rule re-ran ``find_all`` over the whole tree, accessible-name
computation rescanned every ``<label>`` per form control (O(n²) on
form-heavy pages), and extraction repeated the same walks again.  The
:class:`~repro.html.index.DocumentIndex` collapses all of that into one
depth-first pass per page plus bucket lookups and memo hits.

This harness builds synthetic pages of increasing size (with the
label-per-control shape that triggers the quadratic path), then runs the
full per-page audit+extraction stage — the pipeline's CPU-bound inner loop —
through both access paths and reports records-per-second.  Results must be
identical; the indexed path must be at least ``TARGET_SPEEDUP`` times faster
on the large page.

Set ``LANGCRUX_BENCH_ASSERT_SPEEDUP=0`` to demote the throughput target to a
report-only line (CI does this: shared runners are too noisy for a
wall-clock gate) — result parity is always asserted.
"""

from __future__ import annotations

import os
import time

from repro.audit.engine import AuditEngine
from repro.core.extraction import extract_page
from repro.html.parser import parse_html

#: (name, element groups) — each group adds a paragraph, an image, a link,
#: a labelled input and a button, so page size scales linearly while the
#: label/control ratio (the quadratic trigger) stays constant.
PAGE_SIZES = (("small", 10), ("medium", 60), ("large", 200))

#: Minimum indexed/naive audit+extraction throughput ratio on the large
#: page (the acceptance floor for this refactor is 3x; measured locally at
#: well above that, the margin absorbs machine noise).
TARGET_SPEEDUP = 3.0


def _page_markup(groups: int) -> str:
    parts = ["<html lang='th'><head><title>benchmark page</title></head><body>"]
    for i in range(groups):
        parts.append(f"<p>ข้อความจำนวน {i} paragraph text with several words</p>")
        parts.append(f"<img src='/i{i}.jpg' alt='คำอธิบายภาพ {i}'>")
        parts.append(f"<a href='/page{i}'>ลิงก์ {i}</a>")
        parts.append(f"<label for='field{i}'>ช่อง {i}</label>"
                     f"<input type='text' id='field{i}' name='field{i}'>")
        parts.append(f"<button aria-labelledby='field{i}'>ปุ่ม</button>")
    parts.append("</body></html>")
    return "".join(parts)


def _run_stage(markup: str, engine: AuditEngine, use_index: bool,
               repeats: int) -> tuple[float, list]:
    """Time ``repeats`` full audit+extraction passes; return (seconds, results)."""
    results = []
    started = time.perf_counter()
    for _ in range(repeats):
        document = parse_html(markup, url="https://bench.example.th/")
        extraction = extract_page(document, use_index=use_index)
        report = engine.audit_document(document, use_index=use_index)
        results.append((extraction, report.to_dict()))
    return time.perf_counter() - started, results


def test_document_index_throughput(reporter) -> None:
    engine = AuditEngine()
    lines = []
    large_speedup = 0.0
    for name, groups in PAGE_SIZES:
        markup = _page_markup(groups)
        # Keep total wall-clock bounded: fewer repeats on bigger pages.
        repeats = max(2, 60 // groups + 1)
        naive_s, naive_results = _run_stage(markup, engine, False, repeats)
        indexed_s, indexed_results = _run_stage(markup, engine, True, repeats)

        # The index is a pure access-path change: identical outputs.
        assert indexed_results == naive_results

        naive_rps = repeats / naive_s
        indexed_rps = repeats / indexed_s
        speedup = indexed_rps / naive_rps
        if name == "large":
            large_speedup = speedup
        lines.append(
            f"{name} ({groups * 6 + 4} elements): naive {naive_rps:.1f} rec/s, "
            f"indexed {indexed_rps:.1f} rec/s (speedup {speedup:.2f}x)")
    lines.append(f"target: >= {TARGET_SPEEDUP:.0f}x audit+extraction records/s "
                 f"on the large page")
    reporter("Scaling — naive vs indexed audit+extraction", lines, data={
        "config": {"page_sizes": [name for name, _ in PAGE_SIZES]},
        "large_page_speedup": large_speedup,
        "target_speedup": TARGET_SPEEDUP,
    })

    if os.environ.get("LANGCRUX_BENCH_ASSERT_SPEEDUP", "1") != "0":
        assert large_speedup >= TARGET_SPEEDUP, (
            f"indexed audit+extraction reached {large_speedup:.2f}x on the "
            f"large page, expected >= {TARGET_SPEEDUP}x")

"""Ablation — script-range detection vs character n-gram classification.

The paper's language validation is script-based.  This ablation compares that
detector against a character n-gram classifier trained on the library's
lexicons, over a labelled sample of generated sentences, to quantify what the
simpler (and much faster) script heuristic gives up — essentially nothing for
non-Latin scripts, which is why the paper's choice is sound.
"""

from __future__ import annotations

import random

from repro.langid.detector import ScriptDetector, dominant_language_code
from repro.langid.languages import LANGCRUX_PAIRS, get_language
from repro.langid.ngram import NGramClassifier
from repro.webgen.lexicon import get_lexicon

SAMPLES_PER_LANGUAGE = 40


def _labelled_samples() -> list[tuple[str, str]]:
    rng = random.Random(11)
    samples: list[tuple[str, str]] = []
    for pair in LANGCRUX_PAIRS:
        lexicon = get_lexicon(pair.language.code)
        for _ in range(SAMPLES_PER_LANGUAGE):
            samples.append((lexicon.sentence(rng, 3, 10), pair.language.code))
    return samples


def _train_classifier() -> NGramClassifier:
    rng = random.Random(99)
    corpus = {}
    for pair in LANGCRUX_PAIRS:
        lexicon = get_lexicon(pair.language.code)
        corpus[pair.language.code] = [lexicon.sentence(rng, 3, 10) for _ in range(60)]
    return NGramClassifier.train(corpus)


def _script_accuracy(samples: list[tuple[str, str]]) -> float:
    candidates = [pair.language for pair in LANGCRUX_PAIRS]
    correct = 0
    for text, label in samples:
        predicted = dominant_language_code(text, candidates)
        # Languages sharing a script (Mandarin/Cantonese on Han, Modern
        # Standard/Egyptian Arabic on Arabic, Japanese text that happens to be
        # all-Han) are indistinguishable by script alone; counting either as
        # correct mirrors the paper, where the per-country prior resolves the
        # ambiguity.
        han = {"zh", "yue"}
        arabic = {"ar", "arz"}
        ja = {"ja", "zh", "yue"}
        if predicted == label \
                or (label in han and predicted in han) \
                or (label in arabic and predicted in arabic) \
                or (label == "ja" and predicted in ja):
            correct += 1
    return correct / len(samples)


def _ngram_accuracy(samples: list[tuple[str, str]], classifier: NGramClassifier) -> float:
    correct = sum(1 for text, label in samples if classifier.classify(text) == label)
    return correct / len(samples)


def test_ablation_script_vs_ngram_detection(benchmark, reporter) -> None:
    samples = _labelled_samples()
    classifier = _train_classifier()

    script_accuracy = benchmark(_script_accuracy, samples)
    ngram_accuracy = _ngram_accuracy(samples, classifier)

    detector = ScriptDetector("th")
    per_char_cost_proxy = sum(len(text) for text, _ in samples)

    lines = [
        f"labelled samples: {len(samples)} ({SAMPLES_PER_LANGUAGE} per language)",
        f"script-range detector accuracy:   {script_accuracy * 100:.1f}% "
        "(script-sharing languages counted as resolved by the country prior)",
        f"character n-gram classifier:      {ngram_accuracy * 100:.1f}%",
        f"characters processed: {per_char_cost_proxy}",
        "conclusion: for non-Latin scripts the paper's script heuristic matches the "
        "statistical classifier while being a single pass over the characters",
    ]
    reporter("Ablation — script-range vs n-gram language detection", lines)

    assert script_accuracy > 0.95
    assert ngram_accuracy > 0.8
    assert detector.share("ข่าว").native == 1.0

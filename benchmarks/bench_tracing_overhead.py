"""Tracing overhead — the cost of running a build with spans enabled.

The observability PR wires :mod:`repro.obs.trace` through every pipeline
stage, transport request and dataset commit.  Its contract is twofold:

* **byte parity** — the dataset JSONL of a traced build is identical to
  an untraced build of the same config (all telemetry is out-of-band);
* **bounded overhead** — with the default 1ms write threshold for
  perf-hook spans, the traced build's wall clock stays within a few
  percent of the untraced one.

This harness runs full (small) builds with and without a trace
directory, interleaved and best-of-N to shed GC pressure and machine
noise, asserts the bytes match unconditionally, and reports the
wall-clock overhead plus the span volume the traced runs produced.

Set ``LANGCRUX_BENCH_ASSERT_SPEEDUP=0`` to demote the overhead gate to a
report-only line (CI does this: shared runners are too noisy for
wall-clock gates) — byte parity is always asserted.
"""

from __future__ import annotations

import gc
import os
import time

from repro.core.pipeline import LangCrUXPipeline, PipelineConfig
from repro.obs import trace as obs_trace
from repro.obs.tree import assemble_trace, load_trace_records

#: Maximum traced/untraced wall-clock overhead, in percent (the PR's
#: acceptance bound; measured locally well below it, the margin absorbs
#: machine noise).
MAX_OVERHEAD_PCT = 5.0

ROUNDS = 3


def _config(trace_dir: str | None = None) -> PipelineConfig:
    return PipelineConfig(countries=("bd", "th"), sites_per_country=16,
                          seed=2025, trace_dir=trace_dir)


def _timed_build(config: PipelineConfig, out_path) -> float:
    gc.collect()
    started = time.perf_counter()
    LangCrUXPipeline(config).run(stream_to=out_path, keep_in_memory=False)
    elapsed = time.perf_counter() - started
    # A traced run closes its own tracer, but be explicit: the next round
    # must never inherit this round's writer.
    obs_trace.disable()
    return elapsed


def test_tracing_overhead_and_byte_parity(reporter, tmp_path) -> None:
    _timed_build(_config(), tmp_path / "warmup.jsonl")  # warm-up

    plain_s = traced_s = float("inf")
    plain_path = tmp_path / "plain.jsonl"
    span_counts = []
    for round_index in range(ROUNDS):
        trace_dir = tmp_path / f"trace-{round_index}"
        traced_path = tmp_path / f"traced-{round_index}.jsonl"
        traced_s = min(traced_s, _timed_build(
            _config(trace_dir=str(trace_dir)), traced_path))
        plain_s = min(plain_s, _timed_build(_config(), plain_path))

        # Byte parity is the invariant, not a perf target: always asserted.
        assert traced_path.read_bytes() == plain_path.read_bytes()
        tree = assemble_trace(load_trace_records(trace_dir))
        assert tree is not None and tree.span_count > 0
        span_counts.append(tree.span_count)

    overhead_pct = (traced_s / plain_s - 1.0) * 100.0
    reporter("Tracing overhead — traced vs untraced full build", [
        f"untraced {plain_s * 1000.0:.1f}ms, traced {traced_s * 1000.0:.1f}ms "
        f"(overhead {overhead_pct:+.1f}%)",
        f"byte parity: OK across {ROUNDS} interleaved rounds",
        f"spans per traced build: {span_counts}",
    ], data={
        "config": {"countries": ["bd", "th"], "sites_per_country": 16,
                   "rounds": ROUNDS},
        "untraced_s": plain_s,
        "traced_s": traced_s,
        "tracing_overhead_pct": overhead_pct,
        "spans_per_build": span_counts,
        "max_overhead_pct": MAX_OVERHEAD_PCT,
    })
    if os.environ.get("LANGCRUX_BENCH_ASSERT_SPEEDUP", "1") != "0":
        assert overhead_pct <= MAX_OVERHEAD_PCT, (
            f"tracing overhead {overhead_pct:+.1f}% exceeds "
            f"{MAX_OVERHEAD_PCT:.1f}%")

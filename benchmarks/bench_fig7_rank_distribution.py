"""E8 — Figure 7 / Appendix C: distribution of website rankings per country.

The paper observes that most countries' LangCrUX sites concentrate within the
top 50,000 CrUX ranks while India's distribution stretches toward the one
million range.  This harness regenerates the per-country rank-bucket
histogram from the synthetic CrUX table.
"""

from __future__ import annotations

from repro.webgen.crux import RANK_BUCKETS


def test_fig7_rank_bucket_distribution(benchmark, pipeline_result, reporter) -> None:
    crux = pipeline_result.crux_table
    histograms = benchmark(lambda: {country: crux.bucket_histogram(country)
                                    for country in crux.countries()})

    header = f"{'country':<8}" + "".join(f"{f'<={bucket // 1000}k':>9}" for bucket in RANK_BUCKETS)
    lines = [header]
    for country in sorted(histograms):
        histogram = histograms[country]
        lines.append(f"{country:<8}" + "".join(f"{histogram.get(bucket, 0):>9}"
                                               for bucket in RANK_BUCKETS))
    lines.append("paper anchor: most countries concentrate below rank 50k; "
                 "India extends toward 1M")
    reporter("Figure 7 — website rank distribution per country", lines)

    def share_within(country: str, bound: int) -> float:
        histogram = histograms[country]
        total = sum(histogram.values())
        within = sum(count for bucket, count in histogram.items() if bucket <= bound)
        return within / total if total else 0.0

    # Most countries sit mostly below 50k.
    non_india = [country for country in histograms if country != "in"]
    assert sum(share_within(country, 50_000) for country in non_india) / len(non_india) > 0.6
    # India reaches much deeper ranks than the others.
    assert share_within("in", 50_000) < min(share_within(c, 50_000) for c in ("jp", "il", "th"))
    india_hist = histograms["in"]
    assert sum(count for bucket, count in india_hist.items() if bucket >= 500_000) > 0

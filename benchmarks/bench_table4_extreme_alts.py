"""E12 — Table 4 / Appendix E: extreme image alt texts.

The paper lists real alt texts exceeding 1,000 characters — cases where whole
articles or metadata blobs were pasted into the attribute, overwhelming
screen readers.  This harness extracts the equivalent outliers from the
synthetic dataset and reports their lengths and source domains.
"""

from __future__ import annotations

from repro.core.analysis import element_statistics, extreme_alt_texts


def test_table4_extreme_alt_texts(benchmark, dataset, reporter) -> None:
    extremes = benchmark(extreme_alt_texts, dataset, min_chars=1000)

    rows = element_statistics(dataset)["image-alt"]
    lines = [
        f"alt texts over 1000 characters: {len(extremes)}",
        f"image-alt text length: median {rows.text_length.median:.0f}, "
        f"mean {rows.text_length.mean:.1f}, max {rows.text_length.maximum:.0f} "
        f"(paper: median 14, mean 22.97, max 261,864)",
    ]
    for item in extremes[:5]:
        preview = item.text[:60].replace("\n", " ")
        lines.append(f"  {item.domain} [{item.country_code}] {item.length} chars, "
                     f"{item.words} words: {preview}...")
    reporter("Table 4 — extreme image alt text outliers", lines)

    # Shape: outliers exist, they are orders of magnitude above the median,
    # and the per-text length distribution is right-skewed (mean > median).
    assert extremes, "the synthetic web must contain extreme alt texts"
    assert rows.text_length.maximum > 1000
    assert rows.text_length.maximum > 20 * rows.text_length.median
    assert rows.text_length.mean > rows.text_length.median

"""Shared fixtures for the benchmark harnesses.

Every benchmark regenerates one of the paper's tables or figures over a
LangCrUX dataset built from the synthetic web.  The dataset is built once per
benchmark session (all twelve countries) and shared across harnesses.

Each harness both *benchmarks* the analysis it exercises (via the
``benchmark`` fixture) and *prints* the regenerated rows/series next to the
values the paper reports, via the ``reporter`` fixture.  The printed output
is also appended to ``benchmarks/results/benchmark_report.txt`` so that the
regenerated numbers survive pytest's output capturing.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable

import pytest

from repro.core.dataset import LangCrUXDataset
from repro.core.pipeline import LangCrUXPipeline, PipelineConfig, PipelineResult

#: Per-country quota used for the benchmark dataset.  Large enough for the
#: per-country distributions to be meaningful, small enough to build in a few
#: seconds.
SITES_PER_COUNTRY = 25

#: Seed of the benchmark web; fixed so reported numbers are reproducible.
BENCHMARK_SEED = 2025

RESULTS_PATH = Path(__file__).parent / "results" / "benchmark_report.txt"


@pytest.fixture(scope="session")
def pipeline_result() -> PipelineResult:
    """A full pipeline run over all twelve countries."""
    config = PipelineConfig(
        sites_per_country=SITES_PER_COUNTRY,
        seed=BENCHMARK_SEED,
        transport_failure_rate=0.02,
    )
    return LangCrUXPipeline(config).run()


@pytest.fixture(scope="session")
def dataset(pipeline_result: PipelineResult) -> LangCrUXDataset:
    return pipeline_result.dataset


@pytest.fixture(scope="session", autouse=True)
def _reset_report_file() -> None:
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text("", encoding="utf-8")


@pytest.fixture()
def reporter() -> Callable[[str, Iterable[str]], None]:
    """Print a titled block of result lines and persist it to the report file."""

    def _report(title: str, lines: Iterable[str]) -> None:
        block = [f"", f"=== {title} ===", *lines]
        text = "\n".join(block)
        print(text)
        with RESULTS_PATH.open("a", encoding="utf-8") as handle:
            handle.write(text + "\n")

    return _report

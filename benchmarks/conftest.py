"""Shared fixtures for the benchmark harnesses.

Every benchmark regenerates one of the paper's tables or figures over a
LangCrUX dataset built from the synthetic web.  The dataset is built once per
benchmark session (all twelve countries) and shared across harnesses.

Each harness both *benchmarks* the analysis it exercises (via the
``benchmark`` fixture) and *prints* the regenerated rows/series next to the
values the paper reports, via the ``reporter`` fixture.  The printed output
is also appended to ``benchmarks/results/benchmark_report.txt`` so that the
regenerated numbers survive pytest's output capturing.

Machine-readable trajectory
---------------------------
Alongside the text report, every benchmark module that ran gets a
``benchmarks/results/BENCH_<name>.json`` file: each ``reporter(...)`` block
is recorded with its title and lines, and harnesses that measure throughput
pass ``data={...}`` (records/s, speedup, config) to make the numbers
parseable without scraping.  The files are what CI uploads as artifacts and
what ``benchmarks/run_all.py`` summarizes, so the performance trajectory of
the repo is comparable across PRs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterable

import pytest

from repro.core.dataset import LangCrUXDataset
from repro.core.pipeline import LangCrUXPipeline, PipelineConfig, PipelineResult

#: Per-country quota used for the benchmark dataset.  Large enough for the
#: per-country distributions to be meaningful, small enough to build in a few
#: seconds.
SITES_PER_COUNTRY = 25

#: Seed of the benchmark web; fixed so reported numbers are reproducible.
BENCHMARK_SEED = 2025

RESULTS_DIR = Path(__file__).parent / "results"
RESULTS_PATH = RESULTS_DIR / "benchmark_report.txt"

#: Reporter blocks accumulated per benchmark module, flushed to
#: ``BENCH_<name>.json`` files at session end.
_JSON_BLOCKS: dict[str, list[dict]] = {}


def _bench_name(module_name: str) -> str:
    short = module_name.rsplit(".", 1)[-1]
    return short[len("bench_"):] if short.startswith("bench_") else short


@pytest.fixture(scope="session")
def pipeline_result() -> PipelineResult:
    """A full pipeline run over all twelve countries."""
    config = PipelineConfig(
        sites_per_country=SITES_PER_COUNTRY,
        seed=BENCHMARK_SEED,
        transport_failure_rate=0.02,
    )
    return LangCrUXPipeline(config).run()


@pytest.fixture(scope="session")
def dataset(pipeline_result: PipelineResult) -> LangCrUXDataset:
    return pipeline_result.dataset


@pytest.fixture(scope="session", autouse=True)
def _reset_report_file() -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text("", encoding="utf-8")
    _JSON_BLOCKS.clear()
    yield
    for name, blocks in sorted(_JSON_BLOCKS.items()):
        payload = {"bench": name, "blocks": blocks}
        path = RESULTS_DIR / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, ensure_ascii=False, indent=2) + "\n",
                        encoding="utf-8")


@pytest.fixture()
def reporter(request) -> Callable[..., None]:
    """Print a titled block of result lines and persist it to the reports.

    ``reporter(title, lines)`` appends the block to the human-readable text
    report; pass ``data={...}`` as well to record machine-readable numbers
    (records/s, speedups, config) in the module's ``BENCH_<name>.json``.
    """
    bench = _bench_name(request.node.module.__name__)

    def _report(title: str, lines: Iterable[str], *,
                data: dict | None = None) -> None:
        lines = list(lines)
        block = ["", f"=== {title} ===", *lines]
        text = "\n".join(block)
        print(text)
        with RESULTS_PATH.open("a", encoding="utf-8") as handle:
            handle.write(text + "\n")
        entry: dict = {"title": title, "lines": lines}
        if data is not None:
            entry["data"] = data
        _JSON_BLOCKS.setdefault(bench, []).append(entry)

    return _report

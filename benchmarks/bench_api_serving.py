"""Serving — the analytics API under concurrent load, cold vs warm cache.

The serving layer's production claim is that a built dataset, loaded once
into :class:`~repro.api.aggregates.DatasetAggregates`, answers analytics
queries at interactive rates — and that the response cache turns repeat
traffic into pure socket + hash work.  This harness benchmarks a real
:class:`~repro.api.server.AnalyticsServer` over loopback HTTP the way the
transport benchmark drives :class:`LocalSiteServer`:

* a **cold wave**: a mixed workload of distinct endpoint+parameter
  combinations, every request a cache miss that aggregates and renders;
* a **warm wave**: the same workload repeated, every request a cache hit —
  verified via ``/stats`` to have triggered **zero** re-aggregation;
* a **revalidation wave**: the same workload with ``If-None-Match``, every
  response a bodyless ``304``.

All three waves run from concurrent keep-alive clients.  Warm bodies must
be byte-identical to cold bodies; the warm wave must not lose to the cold
one.  Set ``LANGCRUX_BENCH_ASSERT_SPEEDUP=0`` to demote the throughput
target to a report-only line (CI does this; parity is always asserted).
"""

from __future__ import annotations

import http.client
import os
import time
from concurrent.futures import ThreadPoolExecutor

from repro.api.server import AnalyticsServer

CLIENT_THREADS = 8
MAX_WORKERS = 8
WARM_ROUNDS = 3

#: The warm cache skips aggregation and rendering entirely, so it must at
#: least match the cold path even on a loopback where both are fast.
TARGET_SPEEDUP = 1.0


def _workload(countries: tuple[str, ...]) -> list[str]:
    """A mixed query set: every URL is a distinct cache entry."""
    urls = ["/health", "/analyze", "/explorer?sites=0", "/explorer/countries",
            "/explorer/sites"]
    urls += [f"/mismatch?examples={examples}" for examples in range(8)]
    urls += [f"/mismatch?threshold={threshold}" for threshold in (5.0, 10.0, 20.0)]
    urls += [f"/kizuki?countries={country}" for country in countries]
    urls += [f"/kizuki?countries={a},{b}"
             for a, b in zip(countries, countries[1:])]
    return urls


def _run_wave(gateway: str, urls: list[str], *, rounds: int = 1,
              etags: dict[str, str] | None = None) -> tuple[float, dict[str, bytes], list[int]]:
    """Fetch ``urls`` (x ``rounds``) from concurrent keep-alive clients.

    Returns (elapsed seconds, body per url, all statuses).  Each client
    walks a stride of the workload so concurrent requests collide on
    overlapping cache entries, like real traffic does.
    """
    host, _, port = gateway.rpartition(":")

    def client_walk(worker: int) -> list[tuple[str, int, bytes]]:
        connection = http.client.HTTPConnection(host, int(port), timeout=30)
        results = []
        try:
            for _ in range(rounds):
                for url in urls[worker::CLIENT_THREADS]:
                    headers = {}
                    if etags is not None:
                        headers["If-None-Match"] = etags[url]
                    connection.request("GET", url, headers=headers)
                    response = connection.getresponse()
                    results.append((url, response.status, response.read()))
        finally:
            connection.close()
        return results

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
        per_client = list(pool.map(client_walk, range(CLIENT_THREADS)))
    elapsed = time.perf_counter() - started

    bodies: dict[str, bytes] = {}
    statuses: list[int] = []
    for results in per_client:
        for url, status, body in results:
            bodies[url] = body
            statuses.append(status)
    return elapsed, bodies, statuses


def _stats(gateway: str) -> dict:
    import json

    host, _, port = gateway.rpartition(":")
    connection = http.client.HTTPConnection(host, int(port), timeout=30)
    try:
        connection.request("GET", "/stats")
        return json.loads(connection.getresponse().read())
    finally:
        connection.close()


def test_api_serving_throughput(reporter, dataset, tmp_path) -> None:
    dataset_path = tmp_path / "langcrux.jsonl"
    dataset.save_jsonl(dataset_path)
    urls = _workload(dataset.countries())

    with AnalyticsServer(dataset_path, max_workers=MAX_WORKERS,
                         cache_size=4 * len(urls)) as server:
        cold_s, cold_bodies, cold_statuses = _run_wave(server.gateway, urls)
        aggregations_after_cold = _stats(server.gateway)["aggregations"]

        warm_s, warm_bodies, warm_statuses = _run_wave(server.gateway, urls,
                                                       rounds=WARM_ROUNDS)
        aggregations_after_warm = _stats(server.gateway)["aggregations"]

        # Revalidation: ask for what we already hold; expect empty 304s.
        service = server.service
        etags = {url: service.handle(url.split("?")[0],
                                     dict(part.split("=") for part in
                                          url.split("?")[1].split("&"))
                                     if "?" in url else {}).etag
                 for url in urls}
        reval_s, reval_bodies, reval_statuses = _run_wave(
            server.gateway, urls, rounds=WARM_ROUNDS, etags=etags)

    cold_requests = len(urls)
    warm_requests = len(urls) * WARM_ROUNDS
    cold_rps = cold_requests / cold_s
    warm_rps = warm_requests / warm_s
    reval_rps = warm_requests / reval_s
    cold_bytes = sum(len(body) for body in cold_bodies.values())

    reporter("Serving — analytics API under concurrent load", [
        f"dataset: {len(dataset)} sites, {len(dataset.countries())} countries; "
        f"workload: {len(urls)} distinct queries, {CLIENT_THREADS} clients, "
        f"{MAX_WORKERS} worker slots",
        f"cold (every request aggregates): {cold_s:.2f}s, {cold_rps:.1f} req/s "
        f"({cold_bytes / 1024:.0f} KiB of JSON)",
        f"warm ({WARM_ROUNDS} rounds, all cache hits): {warm_s:.2f}s, "
        f"{warm_rps:.1f} req/s (speedup {warm_rps / cold_rps:.2f}x, "
        f"{aggregations_after_warm - aggregations_after_cold} re-aggregations)",
        f"revalidation (If-None-Match, empty 304s): {reval_s:.2f}s, "
        f"{reval_rps:.1f} req/s",
    ], data={
        "config": {"sites": len(dataset), "distinct_queries": len(urls),
                   "client_threads": CLIENT_THREADS, "max_workers": MAX_WORKERS,
                   "warm_rounds": WARM_ROUNDS},
        "cold_rps": cold_rps,
        "warm_rps": warm_rps,
        "revalidation_rps": reval_rps,
        "warm_speedup": warm_rps / cold_rps,
        "warm_reaggregations": aggregations_after_warm - aggregations_after_cold,
        "target_speedup": TARGET_SPEEDUP,
    })

    # Correctness under load: every wave answered everything, warm bytes are
    # the cold bytes, revalidation sent no bodies at all.
    assert cold_statuses == [200] * cold_requests
    assert warm_statuses == [200] * warm_requests
    assert warm_bodies == cold_bodies
    assert reval_statuses == [304] * warm_requests
    assert all(body == b"" for body in reval_bodies.values())
    # The warm wave was served from cache alone.
    assert aggregations_after_warm == aggregations_after_cold

    if os.environ.get("LANGCRUX_BENCH_ASSERT_SPEEDUP", "1") != "0":
        assert warm_rps >= TARGET_SPEEDUP * cold_rps, (
            f"warm cache reached {warm_rps / cold_rps:.2f}x of the cold rate, "
            f"expected >= {TARGET_SPEEDUP}x")

#!/usr/bin/env python
"""Run every benchmark harness and summarize the machine-readable results.

Each ``benchmarks/bench_*.py`` run through pytest emits a
``benchmarks/results/BENCH_<name>.json`` (see ``benchmarks/conftest.py``);
this driver runs them all and prints one line per benchmark with the key
throughput numbers, so the repo's performance trajectory can be eyeballed —
or diffed across PRs from the uploaded CI artifacts.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py            # run + summarize
    PYTHONPATH=src python benchmarks/run_all.py --summary  # summarize only
    PYTHONPATH=src python benchmarks/run_all.py bench_async_fetch.py ...

Exit code is pytest's (0 when every harness passed), or 0 with
``--summary``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
RESULTS_DIR = BENCH_DIR / "results"

#: data keys surfaced in the summary table, in display order.
HEADLINE_KEYS = ("sequential_rps", "batched_rps", "thread_rps", "process_rps",
                 "subsharded_rps", "cached_rps", "speedup", "thread_speedup",
                 "process_speedup", "large_page_speedup", "script_speedup",
                 "ngram_speedup", "profile_overhead_pct", "target_speedup")


def run_benchmarks(selected: list[str]) -> int:
    import pytest

    # Pass bench files explicitly: there is no pytest config renaming the
    # collection pattern, so a bare directory target would collect nothing
    # (``bench_*.py`` does not match the default ``test_*.py``).
    targets = [str(BENCH_DIR / name) for name in selected] if selected \
        else sorted(str(path) for path in BENCH_DIR.glob("bench_*.py"))
    return pytest.main(["-q", *targets])


def summarize() -> None:
    payloads = sorted(RESULTS_DIR.glob("BENCH_*.json"))
    if not payloads:
        print("no BENCH_*.json results found; run the benchmarks first")
        return
    print(f"{'benchmark':<28}{'headline numbers'}")
    for path in payloads:
        payload = json.loads(path.read_text(encoding="utf-8"))
        parts: list[str] = []
        for block in payload.get("blocks", []):
            data = block.get("data")
            if not data:
                continue
            for key in HEADLINE_KEYS:
                if key in data and data[key] is not None:
                    value = data[key]
                    parts.append(f"{key}={value:.2f}"
                                 if isinstance(value, float) else f"{key}={value}")
        print(f"{payload.get('bench', path.stem):<28}"
              f"{'  '.join(parts) if parts else '(report-only)'}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("benchmarks", nargs="*",
                        help="bench_*.py files to run (default: all)")
    parser.add_argument("--summary", action="store_true",
                        help="skip running; summarize existing BENCH_*.json")
    args = parser.parse_args(argv)
    exit_code = 0
    if not args.summary:
        exit_code = run_benchmarks(args.benchmarks)
    summarize()
    return exit_code


if __name__ == "__main__":
    sys.exit(main())

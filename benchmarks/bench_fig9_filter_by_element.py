"""E10 — Figure 9 / Appendix G: uninformative accessibility text by element.

The paper reports that generic action labels concentrate in buttons and input
buttons, single-word labels dominate overall (notably labels, image alt text
and selects), and summaries show both patterns.  This harness regenerates the
per-element breakdown.
"""

from __future__ import annotations

from repro.core.analysis import filter_breakdown_by_element
from repro.core.filtering import DiscardCategory


def test_fig9_filter_breakdown_by_element(benchmark, dataset, reporter) -> None:
    breakdown = benchmark(filter_breakdown_by_element, dataset)

    lines = [f"{'element':<20}{'generic action':>16}{'single word':>13}{'placeholder':>13}"
             f"{'file/url':>10}{'total':>8}"]
    for element_id in sorted(breakdown):
        categories = breakdown[element_id]
        if not categories:
            continue
        file_url = categories.get(DiscardCategory.FILE_NAME, 0.0) + \
            categories.get(DiscardCategory.URL_OR_PATH, 0.0)
        lines.append(
            f"{element_id:<20}"
            f"{categories.get(DiscardCategory.GENERIC_ACTION, 0.0):>15.1f}%"
            f"{categories.get(DiscardCategory.SINGLE_WORD, 0.0):>12.1f}%"
            f"{categories.get(DiscardCategory.PLACEHOLDER, 0.0):>12.1f}%"
            f"{file_url:>9.1f}%"
            f"{sum(categories.values()):>7.1f}%"
        )
    lines.append("paper anchors: generic actions concentrate in button/input-button; "
                 "single words dominate labels/selects/image alts")
    reporter("Figure 9 — uninformative accessibility text by HTML element", lines)

    def rate(element_id: str, category: DiscardCategory) -> float:
        return breakdown.get(element_id, {}).get(category, 0.0)

    # Generic actions concentrate in buttons and input buttons relative to images.
    assert rate("button-name", DiscardCategory.GENERIC_ACTION) > \
        rate("image-alt", DiscardCategory.GENERIC_ACTION)
    assert rate("input-button-name", DiscardCategory.GENERIC_ACTION) > \
        rate("image-alt", DiscardCategory.GENERIC_ACTION)
    # Single-word labels are a dominant problem for labels and selects.
    assert rate("label", DiscardCategory.SINGLE_WORD) > 5.0
    assert rate("select-name", DiscardCategory.SINGLE_WORD) > 5.0
    # Summaries show high combined generic/single-word rates.
    summary_combined = rate("summary-name", DiscardCategory.GENERIC_ACTION) + \
        rate("summary-name", DiscardCategory.SINGLE_WORD)
    assert summary_combined > 20.0

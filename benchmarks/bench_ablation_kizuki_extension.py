"""Ablation — extending Kizuki's language check beyond image-alt.

The paper evaluates Kizuki on the ``image-alt`` audit only, but releases the
tool as extensible with custom checks.  This ablation applies the
language-aware wrapper to progressively more of the twelve audits and
measures how the accessibility-score distribution of Bangladeshi and Thai
pages shifts, quantifying how much additional signal each extension adds.
"""

from __future__ import annotations

from repro.audit.engine import AuditEngine
from repro.audit.scoring import lighthouse_score
from repro.core.kizuki import Kizuki, KizukiConfig
from repro.html.parser import parse_html

RULE_SETS: dict[str, tuple[str, ...]] = {
    "image-alt only (paper)": ("image-alt",),
    "+ button/link names": ("image-alt", "button-name", "link-name"),
    "+ frames, titles, selects": ("image-alt", "button-name", "link-name",
                                  "frame-title", "document-title", "select-name"),
}


def _documents(pipeline_result):
    documents = []
    for country in ("bd", "th"):
        outcome = pipeline_result.selection_outcomes.get(country)
        if outcome is None:
            continue
        for selected in outcome.selected:
            homepage = selected.record.homepage
            if homepage is not None and homepage.html:
                documents.append((selected.record.language_code,
                                  parse_html(homepage.html, url=homepage.final_url)))
    return documents


def _mean_scores(documents, config: KizukiConfig | None) -> float:
    scores = []
    kizuki_cache: dict[str, Kizuki] = {}
    for language, document in documents:
        if config is None:
            scores.append(lighthouse_score(AuditEngine().audit_document(document)))
        else:
            kizuki = kizuki_cache.setdefault(language, Kizuki(language, config))
            scores.append(lighthouse_score(kizuki.audit_document(document)))
    return sum(scores) / len(scores) if scores else 0.0


def test_ablation_kizuki_rule_extension(benchmark, pipeline_result, reporter) -> None:
    documents = _documents(pipeline_result)
    assert documents

    baseline = _mean_scores(documents, None)
    means = benchmark(lambda: {
        label: _mean_scores(documents, KizukiConfig(extended_rules=rules))
        for label, rules in RULE_SETS.items()
    })

    lines = [f"pages audited (bd+th homepages): {len(documents)}",
             f"{'configuration':<30}{'mean score':>12}{'drop vs stock':>15}",
             f"{'stock (language-unaware)':<30}{baseline:>12.1f}{0.0:>14.1f}"]
    for label, mean in means.items():
        lines.append(f"{label:<30}{mean:>12.1f}{baseline - mean:>14.1f}")
    lines.append("extending the language check to more audits monotonically lowers scores; "
                 "image-alt already captures most of the drop because images dominate "
                 "the language-sensitive content on these pages")
    reporter("Ablation — extending Kizuki beyond image-alt", lines)

    ordered = list(means.values())
    # Each extension can only lower (or keep) the mean score.
    assert ordered[0] <= baseline + 1e-9
    assert all(later <= earlier + 1e-9 for earlier, later in zip(ordered, ordered[1:]))
    # And the paper's image-alt extension already produces a visible drop.
    assert baseline - ordered[0] > 1.0

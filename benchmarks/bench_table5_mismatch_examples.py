"""E13 — Table 5 / Appendix I: concrete visible/accessibility mismatch examples.

The paper illustrates the mismatch with websites whose visible content is
almost entirely native while their image descriptions are English (e.g. a
Bangladeshi government portal with 98% Bangla content and a single Bangla alt
text out of 79).  This harness extracts equivalent examples from the dataset.
"""

from __future__ import annotations

from repro.core.mismatch import mismatch_examples


def test_table5_mismatch_examples(benchmark, dataset, reporter) -> None:
    examples = benchmark(mismatch_examples, dataset, min_visible_native_pct=80.0,
                         max_accessibility_native_pct=15.0, limit=12)

    lines = [f"examples found: {len(examples)}"]
    for example in examples[:6]:
        alt_preview = example.sample_alt_texts[0][:70] if example.sample_alt_texts else ""
        lines.append(
            f"  {example.domain} [{example.country_code}] visible native "
            f"{example.visible_native_pct:.0f}%, accessibility native "
            f"{example.accessibility_native_pct:.0f}%  alt: {alt_preview!r}")
    lines.append("paper anchor: all six example sites combine native visible content "
                 "with English alt text")
    reporter("Table 5 — visible vs accessibility mismatch examples", lines)

    assert examples, "mismatch examples must exist in the dataset"
    for example in examples:
        assert example.visible_native_pct >= 80.0
        assert example.accessibility_native_pct <= 15.0
        assert example.sample_alt_texts

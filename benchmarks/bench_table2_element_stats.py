"""E2 — Table 2: accessibility element statistics.

Regenerates, for every element, the mean missing / empty percentages and the
mean text length / word count, and compares them against the values the paper
reports.  The absolute numbers come from a synthetic web, so the check is on
the *shape*: which elements are the most neglected, which have the highest
empty rates, and the relative ordering of text richness.
"""

from __future__ import annotations

from repro.core.analysis import element_statistics

#: Mean values reported in Table 2 of the paper (missing %, empty %, text
#: length, word count).  ``document-title`` is not part of Table 2.
PAPER_TABLE2_MEANS = {
    "button-name": (61.92, 0.36, 21.35, 3.83),
    "frame-title": (75.81, 0.21, 17.45, 2.54),
    "image-alt": (17.12, 25.39, 22.97, 3.67),
    "input-button-name": (93.90, 0.19, 14.26, 2.83),
    "input-image-alt": (35.07, 4.85, 5.66, 1.41),
    "label": (98.55, 0.02, 9.28, 1.67),
    "link-name": (95.96, 0.04, 26.64, 4.67),
    "object-alt": (94.19, 0.26, 14.26, 2.49),
    "select-name": (89.84, 0.05, 12.94, 2.30),
    "summary-name": (90.47, 0.17, 5.69, 1.18),
    "svg-img-alt": (96.66, 0.15, 11.98, 1.88),
}


def test_table2_element_statistics(benchmark, dataset, reporter) -> None:
    rows = benchmark(element_statistics, dataset)

    lines = [f"{'element':<20}{'missing% (paper)':>20}{'empty% (paper)':>20}"
             f"{'words (paper)':>18}"]
    for element_id, paper in PAPER_TABLE2_MEANS.items():
        row = rows[element_id]
        lines.append(
            f"{element_id:<20}"
            f"{row.missing_pct.mean:>8.1f} ({paper[0]:>6.1f}) "
            f"{row.empty_pct.mean:>8.1f} ({paper[1]:>6.1f}) "
            f"{row.word_count.mean:>7.2f} ({paper[3]:>5.2f})"
        )
    reporter("Table 2 — accessibility element statistics (means)", lines)

    measured_missing = {eid: rows[eid].missing_pct.mean for eid in PAPER_TABLE2_MEANS}
    # Shape checks: most-neglected elements stay above 80% missing, image-alt
    # stays the least-missing element, and it has the highest empty rate.
    for element_id in ("label", "link-name", "svg-img-alt", "input-button-name", "object-alt"):
        assert measured_missing[element_id] > 80.0, element_id
    assert min(measured_missing, key=measured_missing.get) == "image-alt"
    empty_means = {eid: rows[eid].empty_pct.mean for eid in PAPER_TABLE2_MEANS}
    assert max(empty_means, key=empty_means.get) == "image-alt"
    # Link names are the wordiest element, as in the paper.
    word_means = {eid: rows[eid].word_count.mean for eid in PAPER_TABLE2_MEANS
                  if rows[eid].word_count.count > 0}
    assert word_means["link-name"] >= max(word_means[e] for e in ("summary-name", "label"))

"""Memory — bounded-memory windowed streaming vs whole-country buffering.

ROADMAP item 4: a streaming run should hold O(in-flight windows) of record
state, not O(``sites_per_country``), and should put first bytes on disk
while the first country is still crawling.  This harness builds one large
country twice — at a base quota and at 4x — in two modes:

* **buffered** — the historical shape: records and full selection outcomes
  retained in memory (``keep_in_memory=True``), the stream written per
  country.  Peak heap grows with the quota.
* **windowed** — sub-sharded streaming (``sub_shard_size`` set,
  ``keep_in_memory=False``): records are committed to the
  :class:`~repro.core.dataset.StreamingDatasetWriter` per committed window,
  dropped from memory once on disk, and outcomes are slimmed window by
  window.  Peak heap stays flat as the quota scales.

Peaks are measured with ``tracemalloc`` (resettable per run, unlike
``ru_maxrss``, and it sees the parent's record buffers on every backend —
the process backend ships its records home before they count).  DOM trees
are reference cycles, so a default-threshold run's tracemalloc peak is
dominated by not-yet-collected garbage rather than live state; the harness
tightens the gc thresholds for the duration (both modes equally) so the
peak tracks resident state, which is what the bounded-memory claim is
about.  Both output files are asserted byte-identical to each other run
over run, so the memory win never costs determinism.  The harness asserts
the windowed peak ratio stays <= 1.5x across the 4x quota scale while the
buffered ratio at least doubles; set ``LANGCRUX_BENCH_ASSERT_SPEEDUP=0`` to
demote both to report-only lines (CI does).
"""

from __future__ import annotations

import gc
import os
import tracemalloc

from repro import perf
from repro.core.pipeline import LangCrUXPipeline, PipelineConfig

BENCHMARK_SEED = 2025

#: Base per-country quota and the scale factor of the second build.
BASE_QUOTA = 6
SCALE = 4

#: Window size of the sub-sharded streaming runs: peak record state is
#: proportional to in-flight windows of this size, independent of quota.
SUB_SHARD_SIZE = 3

WORKERS = 3

#: Bounds asserted in strict mode (see module docstring).
MAX_WINDOWED_RATIO = 1.5
MIN_BUFFERED_RATIO = 2.0

EXECUTORS = ("serial", "thread", "process")

#: Executors whose ratios are hard-asserted in strict mode.  Their crawl
#: state lives in this process where tracemalloc can see it; the process
#: backend's lives in its workers (the parent sees only merge-side state),
#: so its rows are report-only.
ASSERTED_EXECUTORS = ("serial", "thread")


def _config(quota: int, **overrides) -> PipelineConfig:
    return PipelineConfig(countries=("bd",), sites_per_country=quota,
                          seed=BENCHMARK_SEED, transport_failure_rate=0.02,
                          **overrides)


def _measured_run(config: PipelineConfig, stream_path, *, keep_in_memory: bool):
    """Run the pipeline; returns (peak_heap_kb, first_record_s, buffer_peak).

    The :class:`PipelineResult` is deliberately not returned: a buffered
    result retains every record and unslimmed outcome, and keeping it alive
    into the next measured run would distort that run's peak.
    """
    gc.collect()
    tracemalloc.reset_peak()
    floor_kb = tracemalloc.get_traced_memory()[0] / 1024.0
    result = LangCrUXPipeline(config).run(stream_to=stream_path,
                                          keep_in_memory=keep_in_memory)
    peak_kb = tracemalloc.get_traced_memory()[1] / 1024.0 - floor_kb
    return peak_kb, result.time_to_first_record_s or 0.0, result.record_buffer_peak


def test_streaming_memory_stays_flat(reporter) -> None:
    thresholds = gc.get_threshold()
    tracemalloc.start()
    gc.set_threshold(50, 5, 5)  # keep cyclic DOM garbage out of the peaks
    # Move the harness environment (pytest, plugins, ...) into the permanent
    # generation: a large long-lived baseline defers full collections
    # (long_lived_pending <= long_lived_total/4), which would let promoted
    # cyclic garbage pile up during long runs and skew the peaks.
    gc.collect()
    gc.freeze()
    try:
        _run_harness(reporter)
    finally:
        gc.unfreeze()
        gc.set_threshold(*thresholds)
        tracemalloc.stop()


def _run_harness(reporter) -> None:
    import tempfile

    lines: list[str] = []
    data: dict = {"config": {"base_quota": BASE_QUOTA, "scale": SCALE,
                             "sub_shard_size": SUB_SHARD_SIZE,
                             "workers": WORKERS, "country": "bd"},
                  "executors": {}}
    ratios: dict[str, dict[str, float]] = {}
    with tempfile.TemporaryDirectory() as tmp:
        for executor in EXECUTORS:
            workers = 1 if executor == "serial" else WORKERS
            peaks: dict[str, dict[int, float]] = {"buffered": {}, "windowed": {}}
            first_record: dict[str, float] = {}
            for quota in (BASE_QUOTA, BASE_QUOTA * SCALE):
                buffered_path = os.path.join(tmp, f"{executor}-{quota}-buf.jsonl")
                windowed_path = os.path.join(tmp, f"{executor}-{quota}-win.jsonl")
                peak_kb, first_s, _ = _measured_run(
                    _config(quota, executor=executor, workers=workers),
                    buffered_path, keep_in_memory=True)
                peaks["buffered"][quota] = peak_kb
                first_record["buffered"] = first_s
                peak_kb, first_s, buffer_peak = _measured_run(
                    _config(quota, executor=executor, workers=workers,
                            sub_shard_size=SUB_SHARD_SIZE),
                    windowed_path, keep_in_memory=False)
                peaks["windowed"][quota] = peak_kb
                first_record["windowed"] = first_s
                assert buffer_peak <= SUB_SHARD_SIZE
                with open(buffered_path, "rb") as handle:
                    reference = handle.read()
                with open(windowed_path, "rb") as handle:
                    assert handle.read() == reference, (
                        f"windowed bytes diverged ({executor}, quota {quota})")
            ratio = {mode: peaks[mode][BASE_QUOTA * SCALE] / peaks[mode][BASE_QUOTA]
                     for mode in peaks}
            ratios[executor] = ratio
            lines.append(f"{executor}:")
            for mode in ("buffered", "windowed"):
                small, large = (peaks[mode][BASE_QUOTA],
                                peaks[mode][BASE_QUOTA * SCALE])
                lines.append(
                    f"  {mode:<9} peak heap {small:8.0f} KiB -> {large:8.0f} KiB "
                    f"({ratio[mode]:.2f}x across {SCALE}x quota), "
                    f"first record after {first_record[mode]:.3f}s")
            data["executors"][executor] = {
                "buffered_peak_kb": peaks["buffered"],
                "windowed_peak_kb": peaks["windowed"],
                "buffered_ratio": ratio["buffered"],
                "windowed_ratio": ratio["windowed"],
                "first_record_s": first_record,
            }
    rss = perf.memory_gauges()
    lines.append(f"process peak RSS (lifetime, all runs): "
                 f"{rss.get('mem.peak_rss_kb', 0) / 1024.0:.0f} MiB")
    lines.append(f"target: windowed ratio <= {MAX_WINDOWED_RATIO}x, "
                 f"buffered ratio >= {MIN_BUFFERED_RATIO}x "
                 f"(asserted on {', '.join(ASSERTED_EXECUTORS)}; the process "
                 f"backend's crawl state lives in its workers, so the "
                 f"parent-heap peaks above are report-only)")
    data["max_windowed_ratio"] = MAX_WINDOWED_RATIO
    data["min_buffered_ratio"] = MIN_BUFFERED_RATIO
    reporter("Memory — windowed streaming vs whole-country buffering", lines,
             data=data)

    strict = os.environ.get("LANGCRUX_BENCH_ASSERT_SPEEDUP", "1") != "0"
    if strict:
        for executor in ASSERTED_EXECUTORS:
            ratio = ratios[executor]
            assert ratio["windowed"] <= MAX_WINDOWED_RATIO, (
                f"{executor}: windowed peak grew {ratio['windowed']:.2f}x "
                f"across a {SCALE}x quota scale, expected <= {MAX_WINDOWED_RATIO}x")
            assert ratio["buffered"] >= MIN_BUFFERED_RATIO, (
                f"{executor}: buffered peak grew only {ratio['buffered']:.2f}x — "
                f"the baseline no longer buffers, rescale the harness")


def test_speculation_stays_window_bounded(reporter) -> None:
    """An absurd ``max_in_flight`` must not regrow an O(ranking) term.

    Distributed workers hand every window a large ``max_in_flight`` (each
    worker owns a whole window's speculation), so the windowed walk must
    materialize only the window itself — pinned by the
    ``sel.window_entries_peak`` gauge, which records the largest entry list
    any window evaluation ever held.  This bound is deterministic, so it is
    asserted regardless of ``LANGCRUX_BENCH_ASSERT_SPEEDUP``.
    """
    import tempfile

    config = _config(BASE_QUOTA, sub_shard_size=SUB_SHARD_SIZE,
                     max_in_flight=100_000, profile=True)
    with tempfile.TemporaryDirectory() as tmp:
        result = LangCrUXPipeline(config).run(
            stream_to=os.path.join(tmp, "speculative.jsonl"),
            keep_in_memory=False)
    peak = result.perf_metrics.gauges.get("sel.window_entries_peak")
    assert peak is not None, "profiled run recorded no window-entries gauge"
    assert peak <= SUB_SHARD_SIZE, (
        f"a window materialized {peak:.0f} entries under deep speculation, "
        f"expected <= sub_shard_size ({SUB_SHARD_SIZE})")
    reporter("Memory — speculation bound under huge max_in_flight",
             [f"max_in_flight 100000, sub_shard_size {SUB_SHARD_SIZE}: "
              f"window entries peak {peak:.0f} (bound {SUB_SHARD_SIZE})"],
             data={"max_in_flight": 100_000, "sub_shard_size": SUB_SHARD_SIZE,
                   "window_entries_peak": peak})

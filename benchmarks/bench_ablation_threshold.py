"""Ablation — the 50% visible-content inclusion threshold.

The paper retains a site when at least half of its visible text is in the
target language.  This ablation sweeps the threshold and reports how the
number of qualifying sites (and the number of replacements needed) changes,
quantifying how sensitive the dataset composition is to that choice.
"""

from __future__ import annotations

import random

from repro.core.site_selection import SiteSelector
from repro.crawler.crawler import LangCruxCrawler
from repro.crawler.fetcher import Fetcher, SimulatedTransport
from repro.crawler.session import CrawlSession
from repro.crawler.vpn import VPNManager
from repro.webgen.crux import build_crux_table
from repro.webgen.profiles import get_profile
from repro.webgen.server import SyntheticWeb
from repro.webgen.sitegen import SiteGenerator

THRESHOLDS = (0.3, 0.5, 0.7, 0.9)


def _sweep() -> dict[float, tuple[int, int]]:
    sites = SiteGenerator(get_profile("in"), seed=77).generate_sites(60)
    web = SyntheticWeb(sites)
    table = build_crux_table(sites)
    results: dict[float, tuple[int, int]] = {}
    for threshold in THRESHOLDS:
        transport = SimulatedTransport(web, rng=random.Random(0))
        session = CrawlSession(fetcher=Fetcher(transport), vantage=VPNManager().vantage_for("in"))
        selector = SiteSelector(LangCruxCrawler(session), "hi", threshold=threshold)
        outcome = selector.select(table.iter_ranked("in"), quota=30)
        results[threshold] = (len(outcome.selected), outcome.rejected_below_threshold)
    return results


def test_ablation_inclusion_threshold(benchmark, reporter) -> None:
    results = benchmark(_sweep)

    lines = [f"{'threshold':>10}{'selected (quota 30)':>22}{'rejected below threshold':>27}"]
    for threshold in THRESHOLDS:
        selected, rejected = results[threshold]
        lines.append(f"{threshold:>10.1f}{selected:>22}{rejected:>27}")
    lines.append("paper choice: 0.5 — strict enough to exclude English-dominant sites, "
                 "loose enough to fill the quota")
    reporter("Ablation — visible-content inclusion threshold", lines)

    # Monotonicity: raising the threshold can only reduce the number of
    # selected sites and can only increase rejections.
    selected_counts = [results[t][0] for t in THRESHOLDS]
    rejected_counts = [results[t][1] for t in THRESHOLDS]
    assert all(a >= b for a, b in zip(selected_counts, selected_counts[1:]))
    assert all(a <= b for a, b in zip(rejected_counts, rejected_counts[1:]))
    # The paper's 0.5 threshold fills the quota on the synthetic web.
    assert results[0.5][0] == 30
    # A 0.9 threshold is markedly more exclusionary.
    assert results[0.9][0] < results[0.5][0]

"""Scaling — intra-country sub-sharded selection vs the sequential walk.

The paper's selection loop is strictly sequential per country, so a run
dominated by one large country (the common case: quotas are uniform but
rankings are not) cannot use more than one worker no matter how many are
configured.  The sub-sharded walk (:meth:`repro.core.site_selection.
SiteSelector.select` with ``sub_shard_size``/``executor``) removes that
ceiling: the rank walk is cut into fixed-size windows that executor workers
evaluate speculatively, while a rank-ordered committer keeps the outcome
byte-identical to the sequential walk.

This harness makes the crawl latency *real*: it wraps the simulated
transport so every send genuinely sleeps its drawn latency (scaled down to
keep the benchmark fast), then selects the same single-country quota
sequentially and sub-sharded over a 4-worker thread pool, reporting
records-per-second for both.  The sub-sharded walk must beat — and in
practice approaches ``WORKERS`` times — the sequential one, while producing
exactly the same :class:`~repro.core.site_selection.SelectionOutcome`; both
properties are asserted.

Set ``LANGCRUX_BENCH_ASSERT_SPEEDUP=0`` to demote the throughput target to a
report-only line (CI does this: shared runners are too noisy for a
wall-clock gate) — outcome parity is always asserted.
"""

from __future__ import annotations

import os
import random
import time

from repro.core.executor import ThreadedExecutor
from repro.core.site_selection import SiteSelector
from repro.crawler.crawler import LangCruxCrawler
from repro.crawler.fetcher import Fetcher, SimulatedTransport
from repro.crawler.http import Request, Response
from repro.crawler.session import CrawlSession
from repro.crawler.vpn import VPNManager
from repro.webgen.crux import build_crux_table
from repro.webgen.profiles import get_profile
from repro.webgen.server import SyntheticWeb
from repro.webgen.sitegen import SiteGenerator, stable_seed

#: The single country's candidate pool and quota — large enough that the
#: walk examines a few dozen origins, small enough to finish in seconds.
CANDIDATES = 60
QUOTA = 24

#: Simulated base latency and how much of it is actually slept.  Each
#: candidate costs two requests (robots.txt + homepage) of ~12ms real sleep,
#: keeping the sequential baseline well under a second.
LATENCY_MS = 120.0
SLEEP_SCALE = 0.1

WORKERS = 4
SUB_SHARD_SIZE = 3

BENCHMARK_SEED = 2025

#: Minimum sub-sharded/sequential throughput ratio on a quiet machine.  The
#: theoretical ceiling is WORKERS; stay far enough below it that speculative
#: over-evaluation near the quota boundary and scheduling jitter cannot
#: flake the gate.
TARGET_SPEEDUP = 2.0


class BlockingLatencyTransport:
    """Simulated transport whose drawn latency is genuinely slept.

    Turns the virtual ``elapsed_ms`` of :class:`SimulatedTransport` into real
    wall-clock (scaled by ``sleep_scale``) — the workload shape of a real
    VPN-exit crawl, and exactly what sub-shard workers overlap.
    """

    def __init__(self, inner: SimulatedTransport, sleep_scale: float = SLEEP_SCALE) -> None:
        self.inner = inner
        self.sleep_scale = sleep_scale

    def send(self, request: Request) -> Response:
        response = self.inner.send(request)
        time.sleep(response.elapsed_ms / 1000.0 * self.sleep_scale)
        return response


def _crawler(web: SyntheticWeb) -> LangCruxCrawler:
    transport = BlockingLatencyTransport(SimulatedTransport(
        web, latency_ms=LATENCY_MS,
        rng_factory=lambda host: random.Random(
            stable_seed(BENCHMARK_SEED, "transport", "bd", host))))
    session = CrawlSession(fetcher=Fetcher(transport),
                           vantage=VPNManager().vantage_for("bd"))
    return LangCruxCrawler(session)


def test_subsharded_selection_throughput(reporter) -> None:
    sites = SiteGenerator(get_profile("bd"), seed=BENCHMARK_SEED).generate_sites(CANDIDATES)
    web = SyntheticWeb(sites)
    table = build_crux_table(sites)

    started = time.perf_counter()
    sequential = SiteSelector(_crawler(web), "bn").select(
        table.iter_ranked("bd"), quota=QUOTA)
    sequential_s = time.perf_counter() - started

    # Each sub-shard evaluates on its own crawler (own session/robots cache);
    # the per-host RNG split keeps every crawl identical regardless.
    started = time.perf_counter()
    subsharded = SiteSelector(_crawler(web), "bn",
                              crawler_factory=lambda: _crawler(web)).select(
        table.iter_ranked("bd"), quota=QUOTA,
        executor=ThreadedExecutor(WORKERS), sub_shard_size=SUB_SHARD_SIZE)
    subsharded_s = time.perf_counter() - started

    sequential_rps = len(sequential.selected) / sequential_s
    subsharded_rps = len(subsharded.selected) / subsharded_s
    reporter("Scaling — sequential vs sub-sharded single-country selection", [
        f"candidates: {CANDIDATES}, quota: {QUOTA}, "
        f"real latency ~{LATENCY_MS * SLEEP_SCALE:.0f}ms/request",
        f"sequential walk: {sequential_s:.2f}s, {sequential_rps:.1f} records/s",
        f"sub-sharded x{WORKERS} workers (size {SUB_SHARD_SIZE}): "
        f"{subsharded_s:.2f}s, {subsharded_rps:.1f} records/s "
        f"(speedup {sequential_s / subsharded_s:.2f}x)",
        f"target: >= {TARGET_SPEEDUP:.0f}x records/s at {WORKERS} workers",
    ], data={
        "config": {"candidates": CANDIDATES, "quota": QUOTA, "workers": WORKERS,
                   "sub_shard_size": SUB_SHARD_SIZE,
                   "latency_ms": LATENCY_MS * SLEEP_SCALE},
        "sequential_rps": sequential_rps,
        "subsharded_rps": subsharded_rps,
        "speedup": sequential_s / subsharded_s,
        "target_speedup": TARGET_SPEEDUP,
    })

    # Determinism: speculative evaluation + rank-ordered commit makes the
    # sub-sharded outcome identical to the sequential walk — selected set,
    # rejection counters and candidates_examined included.
    assert subsharded == sequential

    # Sub-sharded must never be slower; the stronger multiple only gates
    # quiet machines (see module docstring).
    assert subsharded_rps >= sequential_rps
    if os.environ.get("LANGCRUX_BENCH_ASSERT_SPEEDUP", "1") != "0":
        assert subsharded_rps >= TARGET_SPEEDUP * sequential_rps, (
            f"sub-sharded selection reached {subsharded_rps / sequential_rps:.2f}x, "
            f"expected >= {TARGET_SPEEDUP}x")

"""Scaling — batched async fetching vs the sequential fetch walk.

The paper's crawl spends most of its wall-clock waiting on the network: each
of the ~120,000 origins costs a round-trip through a VPN exit.  The async
batched fetch layer (:class:`repro.crawler.fetcher.AsyncFetcher` over a
thread-offloading :class:`~repro.crawler.fetcher.SyncTransportAdapter`)
overlaps those waits by keeping up to ``max_in_flight`` requests in flight.

This harness makes the latency *real*: it wraps the simulated transport so
every send genuinely sleeps its drawn latency (scaled down to keep the
benchmark fast), then fetches the same origins sequentially and batched and
reports records-per-second for both.  The batched walk must beat — and in
practice approaches ``max_in_flight`` times — the sequential one, while
returning exactly the same responses; both properties are asserted.

Set ``LANGCRUX_BENCH_ASSERT_SPEEDUP=0`` to demote the throughput target to a
report-only line (CI does this: shared runners are too noisy for a
wall-clock gate) — response parity is always asserted.
"""

from __future__ import annotations

import asyncio
import os
import random
import time

from repro.crawler.fetcher import (
    AsyncFetcher,
    Fetcher,
    SimulatedTransport,
    SyncTransportAdapter,
)
from repro.crawler.http import Request, Response
from repro.webgen.profiles import get_profile
from repro.webgen.server import SyntheticWeb
from repro.webgen.sitegen import SiteGenerator, stable_seed

#: Origins fetched per run — enough that scheduling overhead amortises.
ORIGINS = 40

#: Simulated base latency and how much of it is actually slept.  40 origins
#: at ~12ms real sleep each keeps the sequential baseline around half a
#: second.
LATENCY_MS = 120.0
SLEEP_SCALE = 0.1

MAX_IN_FLIGHT = 8

BENCHMARK_SEED = 2025

#: Minimum batched/sequential throughput ratio on a quiet machine.  The
#: theoretical ceiling is MAX_IN_FLIGHT; stay far enough below it that
#: scheduling jitter cannot flake the gate.
TARGET_SPEEDUP = 2.0


class BlockingLatencyTransport:
    """Simulated transport whose drawn latency is genuinely slept.

    Turns the virtual ``elapsed_ms`` of :class:`SimulatedTransport` into real
    wall-clock (scaled by ``sleep_scale``), which is the workload shape a
    real-HTTP transport would have — and exactly what the async layer is
    meant to overlap.
    """

    def __init__(self, inner: SimulatedTransport, sleep_scale: float = SLEEP_SCALE) -> None:
        self.inner = inner
        self.sleep_scale = sleep_scale

    def send(self, request: Request) -> Response:
        response = self.inner.send(request)
        time.sleep(response.elapsed_ms / 1000.0 * self.sleep_scale)
        return response


def _transport(web: SyntheticWeb) -> BlockingLatencyTransport:
    return BlockingLatencyTransport(SimulatedTransport(
        web, latency_ms=LATENCY_MS,
        rng_factory=lambda host: random.Random(
            stable_seed(BENCHMARK_SEED, "transport", "bd", host))))


def test_batched_fetch_throughput(reporter) -> None:
    sites = SiteGenerator(get_profile("bd"), seed=BENCHMARK_SEED).generate_sites(ORIGINS)
    web = SyntheticWeb(sites)
    urls = [f"https://{site.domain}/" for site in sites]

    sequential_fetcher = Fetcher(_transport(web))
    started = time.perf_counter()
    sequential = [sequential_fetcher.fetch(url, client_country="bd", via_vpn=True)
                  for url in urls]
    sequential_s = time.perf_counter() - started

    batched_fetcher = AsyncFetcher(SyncTransportAdapter(_transport(web), blocking=True))
    started = time.perf_counter()
    batched = asyncio.run(batched_fetcher.fetch_many(
        urls, client_country="bd", via_vpn=True, max_in_flight=MAX_IN_FLIGHT))
    batched_s = time.perf_counter() - started

    sequential_rps = len(urls) / sequential_s
    batched_rps = len(urls) / batched_s
    reporter("Scaling — sequential vs batched async fetch", [
        f"origins: {len(urls)}, real latency ~{LATENCY_MS * SLEEP_SCALE:.0f}ms/request",
        f"sequential: {sequential_s:.2f}s, {sequential_rps:.1f} records/s",
        f"batched x{MAX_IN_FLIGHT}: {batched_s:.2f}s, {batched_rps:.1f} records/s "
        f"(speedup {sequential_s / batched_s:.2f}x)",
        f"target: >= {TARGET_SPEEDUP:.0f}x records/s at {MAX_IN_FLIGHT} in flight",
    ], data={
        "config": {"origins": len(urls), "max_in_flight": MAX_IN_FLIGHT,
                   "latency_ms": LATENCY_MS * SLEEP_SCALE},
        "sequential_rps": sequential_rps,
        "batched_rps": batched_rps,
        "speedup": sequential_s / batched_s,
        "target_speedup": TARGET_SPEEDUP,
    })

    # Determinism: per-host RNG splits make the batched responses identical
    # to the sequential ones, interleaving notwithstanding.
    assert [(r.url.host, r.status, r.body) for r in batched] == \
        [(r.url.host, r.status, r.body) for r in sequential]

    # Batched must never be slower; the stronger multiple only gates quiet
    # machines (see module docstring).
    assert batched_rps >= sequential_rps
    if os.environ.get("LANGCRUX_BENCH_ASSERT_SPEEDUP", "1") != "0":
        assert batched_rps >= TARGET_SPEEDUP * sequential_rps, (
            f"batched fetch reached {batched_rps / sequential_rps:.2f}x, "
            f"expected >= {TARGET_SPEEDUP}x")

"""Ablation — crawling vantage: country VPN exits vs a generic cloud vantage.

The paper argues that VPN-based localization is essential because many sites
serve global or English-dominant versions to out-of-country clients.  This
ablation crawls the same Thai candidate list twice — once through a Thai VPN
exit and once from a cloud vantage — and compares how many sites qualify and
how native their content looks.
"""

from __future__ import annotations

from repro.core.pipeline import LangCrUXPipeline, PipelineConfig


def _run(use_vpn: bool):
    config = PipelineConfig(countries=("th",), sites_per_country=15, seed=404,
                            candidate_multiplier=2.0, use_vpn=use_vpn,
                            transport_failure_rate=0.0)
    return LangCrUXPipeline(config).run()


def test_ablation_vpn_vs_cloud_vantage(benchmark, reporter) -> None:
    cloud_result = benchmark(_run, False)
    vpn_result = _run(True)

    vpn_selected = len(vpn_result.selection_outcomes["th"].selected)
    cloud_selected = len(cloud_result.selection_outcomes["th"].selected)
    vpn_native = [record.visible_native_share for record in vpn_result.dataset]
    cloud_variants = {record.served_variant for record in cloud_result.dataset}

    lines = [
        f"qualifying sites (quota 15): VPN vantage {vpn_selected}, cloud vantage {cloud_selected}",
        f"VPN-crawled mean visible native share: "
        f"{sum(vpn_native) / len(vpn_native) * 100:.1f}%",
        f"variants seen from the cloud vantage: {sorted(v for v in cloud_variants if v)}",
        "paper anchor: crawling from generic cloud IPs risks receiving global/"
        "English-dominant variants, undercounting native content",
    ]
    reporter("Ablation — VPN vantage vs cloud vantage", lines)

    # The cloud vantage qualifies strictly fewer sites: geo-localizing origins
    # serve it their English-leaning variant, which fails the 50% criterion.
    assert cloud_selected < vpn_selected
    # All sites crawled through the VPN are localized.
    assert {record.served_variant for record in vpn_result.dataset} == {"localized"}

"""E3 — Figure 2: native-language distribution in visible text.

The paper's Figure 2 scatters, for India and Israel, the share of visible
text in the native language (y) against English (x) per website, showing that
every included site sits at or above the 50% native threshold.  This harness
regenerates the per-site points and their summary for both countries.
"""

from __future__ import annotations

from repro.core.analysis import visible_text_script_summary
from repro.core.mismatch import country_scatter


def test_fig2_visible_language_distribution(benchmark, dataset, reporter) -> None:
    summary = benchmark(visible_text_script_summary, dataset)

    lines = []
    for country in ("in", "il"):
        stats = summary[country]
        points = country_scatter(dataset, country)
        english = [100.0 * record.visible_english_share
                   for record in dataset.for_country(country)]
        lines.append(
            f"{country}: sites={stats.count}  native visible %: "
            f"median {stats.median:.1f}, mean {stats.mean:.1f}, min {stats.minimum:.1f}; "
            f"english visible %: mean {sum(english) / len(english):.1f}"
        )
        assert stats.minimum >= 50.0, "every included site meets the 50% criterion"
        assert stats.mean > 60.0
        assert points, "scatter points available for the figure"
    reporter("Figure 2 — native language in visible text (India, Israel)", lines)

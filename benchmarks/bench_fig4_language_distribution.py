"""E5 — Figure 4: language distribution of informative accessibility texts.

Regenerates the native / English / mixed proportions of informative
accessibility texts per country and checks the paper's qualitative findings:
Bangladesh relies on English the most (79% in the paper), Egypt/Thailand/
Greece lean strongly toward English, mixed-language hints are frequent in
Greece, Thailand and Hong Kong, and Japan/Israel use their native language
the most.
"""

from __future__ import annotations

from repro.core.language_mix import classify_texts

PAPER_ENGLISH_SHARE_BD = 0.79
PAPER_MIXED_HOTSPOTS = ("gr", "th", "hk")


def _country_mix(dataset, country: str) -> dict[str, float]:
    texts: list[str] = []
    language = None
    for record in dataset.for_country(country):
        texts.extend(record.informative_texts())
        language = record.language_code
    assert language is not None and texts
    return classify_texts(texts, language).proportions()


def test_fig4_language_distribution(benchmark, dataset, reporter) -> None:
    mixes = benchmark(lambda: {country: _country_mix(dataset, country)
                               for country in dataset.countries()})

    lines = [f"{'country':<8}{'native':>9}{'english':>10}{'mixed':>8}"]
    for country, mix in sorted(mixes.items()):
        lines.append(f"{country:<8}{mix['native'] * 100:>8.1f}%{mix['english'] * 100:>9.1f}%"
                     f"{mix['mixed'] * 100:>7.1f}%")
    lines.append(f"paper anchors: bd english 79%, mixed >=30% in gr/th/hk, "
                 f">=20% in cn/ru/jp/in")
    reporter("Figure 4 — language distribution of informative accessibility texts", lines)

    english = {country: mix["english"] for country, mix in mixes.items()}
    mixed = {country: mix["mixed"] for country, mix in mixes.items()}
    native = {country: mix["native"] for country, mix in mixes.items()}

    # Bangladesh relies on English the most.
    assert max(english, key=english.get) == "bd"
    assert english["bd"] > 0.6
    # Mixed-language hotspots.
    for country in PAPER_MIXED_HOTSPOTS:
        assert mixed[country] > 0.2, country
    # Japan and Israel use the native language far more than Bangladesh.
    assert native["jp"] > native["bd"]
    assert native["il"] > native["bd"]

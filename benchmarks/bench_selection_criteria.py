"""E14 — Section 2 selection numbers.

Re-runs the language/country selection procedure in two modes:

* the published selection (nominal qualifying-site counts), checking the
  twelve selected pairs and the aggregate speaker statistics the paper quotes
  (3.19 billion speakers, ~39.5% of the global population);
* the synthetic-web selection, where the qualifying-site counts come from the
  pipeline's own selection outcomes with a scaled-down threshold.
"""

from __future__ import annotations

from repro.core.selection import SelectionCriteria, paper_selection_report, select_pairs
from repro.langid.languages import LANGCRUX_PAIRS


def test_selection_criteria(benchmark, pipeline_result, reporter) -> None:
    report = benchmark(paper_selection_report)

    selected = {pair.country_code for pair in report.selected_pairs}
    speakers = report.total_speakers_millions()
    share = report.global_population_share()

    counts = pipeline_result.qualifying_site_counts()
    scaled = select_pairs(counts, SelectionCriteria(min_qualifying_websites=20))
    scaled_selected = {pair.country_code for pair in scaled.selected_pairs}

    lines = [
        f"published criteria: {len(selected)} pairs selected "
        f"(paper: 12) -> {sorted(selected)}",
        f"total speakers: {speakers / 1000:.2f} billion (paper: >3.19 billion)",
        f"global population share: {share * 100:.1f}% (paper: ~39.5%)",
        f"synthetic web, scaled threshold (>=20 qualifying sites): "
        f"{len(scaled_selected)} of 12 pairs qualify",
    ]
    reporter("Section 2 — language/country selection", lines)

    assert selected == {pair.country_code for pair in LANGCRUX_PAIRS}
    assert speakers >= 3100
    assert 0.36 <= share <= 0.43
    # Every configured country fills its quota on the synthetic web.
    assert scaled_selected == {pair.country_code for pair in LANGCRUX_PAIRS}

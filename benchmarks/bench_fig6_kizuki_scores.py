"""E7 — Figure 6: accessibility scores before and after Kizuki.

The paper evaluates Kizuki on sites from Bangladesh and Thailand that pass
the original Lighthouse image-alt audit: without language awareness, 43% of
those sites score above 90 and 5.6% score a perfect 100; with Kizuki's
language-aware check the figures drop to 15.8% and 1.8%.  This harness
re-scores the benchmark dataset's Bangladeshi and Thai sites and checks that
the distribution shifts the same way.
"""

from __future__ import annotations

from repro.core.kizuki import rescore_dataset
from repro.stats.histogram import histogram

PAPER_OLD_ABOVE_90 = 0.43
PAPER_NEW_ABOVE_90 = 0.158
PAPER_OLD_PERFECT = 0.056
PAPER_NEW_PERFECT = 0.018

SCORE_BINS = (30, 40, 50, 60, 70, 80, 90, 100.0001)


def test_fig6_kizuki_score_shift(benchmark, dataset, reporter) -> None:
    summary = benchmark(rescore_dataset, dataset, ("bd", "th"))

    assert summary.sites > 0, "some bd/th sites must pass the original image-alt audit"

    old_hist = histogram(summary.old_scores, SCORE_BINS)
    new_hist = histogram(summary.new_scores, SCORE_BINS)
    lines = [
        f"sites re-scored (pass original image-alt audit): {summary.sites}",
        f"{'metric':<22}{'original':>12}{'kizuki':>10}{'paper orig':>12}{'paper kizuki':>14}",
        (f"{'score > 90':<22}{summary.fraction_above(90, new=False) * 100:>11.1f}%"
         f"{summary.fraction_above(90, new=True) * 100:>9.1f}%"
         f"{PAPER_OLD_ABOVE_90 * 100:>11.1f}%{PAPER_NEW_ABOVE_90 * 100:>13.1f}%"),
        (f"{'score = 100':<22}{summary.fraction_perfect(new=False) * 100:>11.1f}%"
         f"{summary.fraction_perfect(new=True) * 100:>9.1f}%"
         f"{PAPER_OLD_PERFECT * 100:>11.1f}%{PAPER_NEW_PERFECT * 100:>13.1f}%"),
        f"score histogram bins {SCORE_BINS[:-1]} + [90,100]:",
        f"  original: {old_hist.counts}",
        f"  kizuki:   {new_hist.counts}",
    ]
    reporter("Figure 6 — accessibility score distribution before/after Kizuki (bd+th)", lines)

    old_above_90 = summary.fraction_above(90, new=False)
    new_above_90 = summary.fraction_above(90, new=True)
    # Shape: a substantial share of sites scores "good" before Kizuki, and the
    # language-aware check cuts that share down sharply (the paper sees
    # 43% -> 15.8%); perfect scores all but disappear.
    assert old_above_90 > 0.2
    assert new_above_90 < old_above_90 * 0.75
    assert summary.fraction_perfect(new=True) <= summary.fraction_perfect(new=False)
    # Mean score must drop.
    assert sum(summary.new_scores) < sum(summary.old_scores)

"""E11 — Table 3 / Appendix D: audit behaviour on isolated single-element pages.

The paper builds isolated test pages per element and records whether the
Lighthouse audit passes when the accessibility text is missing, empty, or in
a different language than the page.  This harness regenerates the full table
from the audit engine and asserts an exact match — including the
"incorrect language always passes" column that motivates Kizuki.
"""

from __future__ import annotations

from repro.audit.rules import get_rule
from repro.html.parser import parse_html

# The isolated pages mirror the ones used in tests/test_audit_table3_conditions.py.
PAGES: dict[str, dict[str, str]] = {
    "button-name": {
        "missing": "<body><button></button></body>",
        "empty": "<body><button aria-label=''></button></body>",
        "incorrect": "<body><p>ข่าววันนี้</p><button aria-label='search'></button></body>",
    },
    "document-title": {
        "missing": "<html><head></head><body><p>ข่าว</p></body></html>",
        "empty": "<html><head><title></title></head><body><p>ข่าว</p></body></html>",
        "incorrect": "<html><head><title>Daily news</title></head><body><p>ข่าว</p></body></html>",
    },
    "frame-title": {
        "missing": "<body><iframe src='/w'></iframe></body>",
        "empty": "<body><iframe src='/w' title=''></iframe></body>",
        "incorrect": "<body><p>ข่าว</p><iframe src='/w' title='Weather'></iframe></body>",
    },
    "image-alt": {
        "missing": "<body><img src='/a.jpg'></body>",
        "empty": "<body><img src='/a.jpg' alt=''></body>",
        "incorrect": "<body><p>ข่าว</p><img src='/a.jpg' alt='Market photo'></body>",
    },
    "input-button-name": {
        "missing": "<body><input type='submit'></body>",
        "empty": "<body><input type='submit' value=''></body>",
        "incorrect": "<body><p>ข่าว</p><input type='submit' value='Send'></body>",
    },
    "input-image-alt": {
        "missing": "<body><input type='image' src='/go.png'></body>",
        "empty": "<body><input type='image' src='/go.png' alt=''></body>",
        "incorrect": "<body><p>ข่าว</p><input type='image' src='/go.png' alt='go'></body>",
    },
    "label": {
        "missing": "<body><input type='text'></body>",
        "empty": "<body><label for='f'></label><input id='f' type='text'></body>",
        "incorrect": "<body><p>ข่าว</p><label for='f'>Name</label><input id='f' type='text'></body>",
    },
    "link-name": {
        "missing": "<body><a href='/x'></a></body>",
        "empty": "<body><a href='/x' aria-label=''></a></body>",
        "incorrect": "<body><p>ข่าว</p><a href='/x'>read more</a></body>",
    },
    "object-alt": {
        "missing": "<body><object data='/d.pdf'></object></body>",
        "empty": "<body><object data='/d.pdf' aria-label=''></object></body>",
        "incorrect": "<body><p>ข่าว</p><object data='/d.pdf'>annual report</object></body>",
    },
    "select-name": {
        "missing": "<body><select></select></body>",
        "empty": "<body><select aria-label=''></select></body>",
        "incorrect": "<body><p>ข่าว</p><select aria-label='City'></select></body>",
    },
    "summary-name": {
        "missing": "<body><details><summary></summary></details></body>",
        "empty": "<body><details><summary aria-label=''></summary></details></body>",
        "incorrect": "<body><p>ข่าว</p><details><summary>Details</summary></details></body>",
    },
    "svg-img-alt": {
        "missing": "<body><svg role='img'><path d='M0 0'/></svg></body>",
        "empty": "<body><svg role='img' aria-label=''><path d='M0 0'/></svg></body>",
        "incorrect": "<body><p>ข่าว</p><svg role='img' aria-label='Logo'><path d='M0 0'/></svg></body>",
    },
}

# Table 3 of the paper: (missing, empty, incorrect language) -> passes?
PAPER_TABLE3: dict[str, tuple[bool, bool, bool]] = {
    "button-name": (False, True, True),
    "document-title": (True, False, True),
    "frame-title": (False, False, True),
    "image-alt": (False, True, True),
    "input-button-name": (True, False, True),
    "input-image-alt": (False, False, True),
    "label": (True, True, True),
    "link-name": (False, False, True),
    "object-alt": (False, False, True),
    "select-name": (False, False, True),
    "summary-name": (True, True, True),
    "svg-img-alt": (True, True, True),
}


def _evaluate_all() -> dict[str, tuple[bool, bool, bool]]:
    results = {}
    for rule_id, pages in PAGES.items():
        rule = get_rule(rule_id)
        outcome = []
        for condition in ("missing", "empty", "incorrect"):
            result = rule.evaluate(parse_html(pages[condition]))
            outcome.append(result.passed if result.applicable else True)
        results[rule_id] = tuple(outcome)
    return results


def test_table3_lighthouse_conditions(benchmark, reporter) -> None:
    measured = benchmark(_evaluate_all)

    def mark(value: bool) -> str:
        return "pass" if value else "FAIL"

    lines = [f"{'rule':<20}{'missing':>10}{'empty':>8}{'incorrect lang':>16}   paper match"]
    for rule_id in sorted(PAPER_TABLE3):
        m = measured[rule_id]
        match = "yes" if m == PAPER_TABLE3[rule_id] else "NO"
        lines.append(f"{rule_id:<20}{mark(m[0]):>10}{mark(m[1]):>8}{mark(m[2]):>16}   {match}")
    reporter("Table 3 — audit outcomes on isolated single-element pages", lines)

    assert measured == PAPER_TABLE3

"""HTML and DOM substrate.

The paper crawls pages with Puppeteer and reads two things from the rendered
DOM: the *visible text* of the page and the *accessibility metadata* attached
to elements (``alt``, ``aria-label``, ``<label>``, titles...).  This
subpackage provides a static equivalent:

* :mod:`repro.html.dom` — a lightweight DOM: :class:`Element`, :class:`TextNode`
  and :class:`Document` with traversal and query helpers.
* :mod:`repro.html.parser` — an error-tolerant HTML parser built on the
  standard library's ``html.parser`` that produces that DOM.
* :mod:`repro.html.visibility` — visible-text extraction honouring
  ``<script>``/``<style>``, ``hidden``, ``aria-hidden`` and inline
  ``display:none`` / ``visibility:hidden`` styles.
* :mod:`repro.html.accessibility` — accessible-name computation following the
  precedence rules screen readers use (``aria-labelledby``, ``aria-label``,
  native markup such as ``alt`` or ``<label>``, then visible text).
* :mod:`repro.html.index` — :class:`~repro.html.index.DocumentIndex`, a
  one-pass index (tag/role/id/label buckets, memoized visibility, cached
  visible-text and accessible-name results) that the audit and extraction
  layers consult instead of re-traversing the tree, plus the
  :class:`~repro.html.index.NaiveDocumentAccessor` reference path.
* :mod:`repro.html.selectors` — a small CSS-like selector engine used by the
  audit rules.
"""

from repro.html.dom import Document, Element, Node, TextNode
from repro.html.parser import parse_html
from repro.html.visibility import extract_visible_text, is_visible
from repro.html.accessibility import accessible_name, AccessibleNameResult
from repro.html.index import DocumentIndex, NaiveDocumentAccessor, ensure_index

__all__ = [
    "Document",
    "DocumentIndex",
    "Element",
    "NaiveDocumentAccessor",
    "Node",
    "TextNode",
    "parse_html",
    "ensure_index",
    "extract_visible_text",
    "is_visible",
    "accessible_name",
    "AccessibleNameResult",
]

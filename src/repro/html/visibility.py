"""Visible-text extraction.

The paper's 50% inclusion criterion and the visible-vs-accessibility mismatch
analysis both operate on the *visible* text of a page: what a sighted user
sees rendered.  Since this reproduction does not run a browser, visibility is
approximated with static rules that cover the cases that actually occur in
the synthetic corpus and the overwhelming majority of real pages:

* content of non-rendered elements (``<script>``, ``<style>``, ``<head>``,
  ``<template>``, ``<noscript>``) is invisible;
* elements carrying the ``hidden`` attribute or ``aria-hidden="true"`` are
  invisible, along with their subtree;
* inline styles containing ``display:none`` or ``visibility:hidden`` hide the
  subtree;
* ``<input type=hidden>`` is invisible;
* attribute values (``alt``, ``aria-label``, ``title`` ...) are *not* visible
  text — they are accessibility metadata and are handled separately by
  :mod:`repro.core.extraction`.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING

from repro.html.dom import Document, Element, Node, NON_RENDERED_TAGS, TextNode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.html.index import DocumentIndex

_WHITESPACE_RE = re.compile(r"\s+")
_DISPLAY_NONE_RE = re.compile(r"display\s*:\s*none", re.IGNORECASE)
_VISIBILITY_HIDDEN_RE = re.compile(r"visibility\s*:\s*hidden", re.IGNORECASE)

#: Elements rendered as blocks: their text does not run together with the
#: text of adjacent elements, so extraction inserts a separator around them.
_BLOCK_TAGS = frozenset({
    "p", "div", "section", "article", "aside", "header", "footer", "main",
    "nav", "h1", "h2", "h3", "h4", "h5", "h6", "ul", "ol", "li", "table",
    "tr", "td", "th", "form", "fieldset", "figure", "figcaption", "details",
    "summary", "blockquote", "pre", "br", "hr", "option", "select", "button",
    "label",
})


def _style_hides(element: Element) -> bool:
    style = element.get("style")
    if not style:
        return False
    return bool(_DISPLAY_NONE_RE.search(style) or _VISIBILITY_HIDDEN_RE.search(style))


def _element_hidden(element: Element) -> bool:
    """Whether this element (ignoring ancestors) hides its subtree."""
    if element.tag in NON_RENDERED_TAGS:
        return True
    if element.has_attr("hidden"):
        return True
    if (element.get("aria-hidden") or "").strip().lower() == "true":
        return True
    if element.tag == "input" and (element.get("type") or "").lower() == "hidden":
        return True
    return _style_hides(element)


def is_visible(node: Node, index: "DocumentIndex | None" = None) -> bool:
    """Whether ``node`` (an element or text node) is rendered.

    A node is visible when neither it nor any of its ancestors hides its
    subtree.  The document root is always considered visible.

    Args:
        node: The node to test.
        index: An optional :class:`~repro.html.index.DocumentIndex`; when
            given, the answer comes from its top-down memoized visibility
            map instead of re-walking the ancestor chain.
    """
    if index is not None:
        return index.is_visible(node)
    element = node if isinstance(node, Element) else node.parent
    while element is not None:
        if _element_hidden(element):
            return False
        element = element.parent
    return True


def _collect_visible_text(element: Element, parts: list[str]) -> None:
    if _element_hidden(element):
        return
    for child in element.children:
        if isinstance(child, TextNode):
            parts.append(child.text)
        elif isinstance(child, Element):
            is_block = child.tag in _BLOCK_TAGS
            if is_block:
                parts.append(" ")
            _collect_visible_text(child, parts)
            if is_block:
                parts.append(" ")


def extract_visible_text(document: Document | Element, *, normalize: bool = True,
                         index: "DocumentIndex | None" = None) -> str:
    """Extract the visible text of a document or subtree.

    Args:
        document: A :class:`Document` or an :class:`Element` subtree root.
        normalize: When true (default), runs of whitespace collapse to single
            spaces and the result is stripped, mirroring how rendered text is
            perceived.
        index: An optional :class:`~repro.html.index.DocumentIndex`; when
            given, the (normalized) result comes from its per-element memo,
            so repeated extraction of the same subtree costs one traversal.

    Returns:
        The visible text.  Empty string when nothing is visible.
    """
    root = document.root if isinstance(document, Document) else document
    if index is not None:
        return index.visible_text(root, normalize=normalize)
    parts: list[str] = []
    _collect_visible_text(root, parts)
    text = "".join(parts)
    if normalize:
        text = _WHITESPACE_RE.sub(" ", text).strip()
    return text


def visible_text_of(element: Element, *, normalize: bool = True) -> str:
    """Visible text of a single element's subtree (alias used by audit rules)."""
    return extract_visible_text(element, normalize=normalize)


def visible_text_length(document: Document | Element) -> int:
    """Length in characters of the (normalised) visible text."""
    return len(extract_visible_text(document))

"""A lightweight DOM for crawled pages.

The model intentionally covers only what the measurement pipeline needs:
elements with attributes, text nodes, parent/child links, traversal, and a
handful of query helpers.  It does not attempt CSS cascade, layout or
JavaScript execution — the visible-text rules in
:mod:`repro.html.visibility` approximate the rendering decisions that matter
for this study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.html.index import DocumentIndex


#: Elements that never contribute rendered text.
NON_RENDERED_TAGS = frozenset({
    "script", "style", "template", "noscript", "head", "meta", "link", "title",
})

#: Void (self-closing) HTML elements, needed by the parser and serializer.
VOID_TAGS = frozenset({
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link",
    "meta", "param", "source", "track", "wbr",
})


class Node:
    """Base class for DOM nodes."""

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: "Element | None" = None

    def ancestors(self) -> Iterator["Element"]:
        """Yield ancestors from the immediate parent up to the root."""
        current = self.parent
        while current is not None:
            yield current
            current = current.parent


class TextNode(Node):
    """A run of character data."""

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        super().__init__()
        self.text = text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = self.text if len(self.text) <= 30 else self.text[:27] + "..."
        return f"TextNode({preview!r})"


class Element(Node):
    """An HTML element with attributes and children."""

    __slots__ = ("tag", "attributes", "children", "tree_version")

    def __init__(self, tag: str, attributes: Mapping[str, str] | None = None) -> None:
        super().__init__()
        self.tag = tag.lower()
        # Attribute-less elements dominate parsed trees; skip the lowercasing
        # comprehension (and the intermediate mapping) for them.
        self.attributes: dict[str, str] = (
            {k.lower(): v for k, v in attributes.items()} if attributes else {})
        self.children: list[Node] = []
        #: Mutation counter of the tree rooted here.  Every :meth:`set` /
        #: :meth:`append` anywhere in a tree bumps the counter on that tree's
        #: root, so document-level caches (the id index, the
        #: :class:`~repro.html.index.DocumentIndex`) can detect staleness
        #: without being told explicitly (generators mutate trees they later
        #: serve).
        self.tree_version: int = 0

    def _mark_mutated(self) -> None:
        # Tight parent-chain walk (self is always an Element): O(depth) per
        # mutation, which stays cheap because HTML trees are shallow even
        # when they are wide.
        node = self
        while node.parent is not None:
            node = node.parent
        node.tree_version += 1

    # -- tree construction -------------------------------------------------

    def append(self, node: Node) -> Node:
        """Append ``node`` as the last child and return it."""
        node.parent = self
        self.children.append(node)
        self._mark_mutated()
        return node

    def _append_raw(self, node: Node) -> Node:
        """Append without bumping ``tree_version``.

        Tree-construction fast path for the parser: while a tree is first
        being built no :class:`Document` (and therefore no cache that could
        go stale) exists yet, so the per-mutation parent-chain walk would be
        pure overhead on the parse hot path.  Never use this on a tree that
        a document may already be serving.
        """
        node.parent = self
        self.children.append(node)
        return node

    def append_text(self, text: str) -> TextNode:
        """Append a text node (convenience for generators and tests)."""
        text_node = TextNode(text)
        return self.append(text_node)  # type: ignore[return-value]

    # -- attributes --------------------------------------------------------

    def get(self, name: str, default: str | None = None) -> str | None:
        """Attribute value by (case-insensitive) name."""
        return self.attributes.get(name.lower(), default)

    def has_attr(self, name: str) -> bool:
        return name.lower() in self.attributes

    def set(self, name: str, value: str) -> None:
        self.attributes[name.lower()] = value
        self._mark_mutated()

    @property
    def id(self) -> str | None:
        return self.get("id")

    @property
    def classes(self) -> tuple[str, ...]:
        return tuple(self.get("class", "").split())

    @property
    def role(self) -> str | None:
        """Explicit ARIA role, lowercased, or ``None``."""
        role = self.get("role")
        return role.strip().lower() if role else None

    # -- traversal ---------------------------------------------------------

    def iter(self) -> Iterator["Element"]:
        """Depth-first pre-order iteration over this element and descendants."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter()

    def iter_nodes(self) -> Iterator[Node]:
        """Depth-first pre-order iteration over all nodes, including text."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter_nodes()
            else:
                yield child

    def find_all(self, tag: str | None = None, *,
                 predicate: Callable[["Element"], bool] | None = None) -> list["Element"]:
        """All descendant elements (excluding self) matching tag/predicate."""
        results = []
        for element in self.iter():
            if element is self:
                continue
            if tag is not None and element.tag != tag.lower():
                continue
            if predicate is not None and not predicate(element):
                continue
            results.append(element)
        return results

    def find(self, tag: str | None = None, *,
             predicate: Callable[["Element"], bool] | None = None) -> "Element | None":
        """First matching descendant, or ``None``."""
        matches = self.find_all(tag, predicate=predicate)
        return matches[0] if matches else None

    def child_elements(self) -> list["Element"]:
        return [child for child in self.children if isinstance(child, Element)]

    # -- text --------------------------------------------------------------

    def text_content(self) -> str:
        """Concatenated character data of all descendant text nodes.

        Unlike visible-text extraction this includes text inside hidden
        elements; it corresponds to the DOM ``textContent`` property.
        """
        parts: list[str] = []
        self._collect_text(parts)
        return "".join(parts)

    def _collect_text(self, parts: list[str]) -> None:
        for child in self.children:
            if isinstance(child, TextNode):
                parts.append(child.text)
            elif isinstance(child, Element):
                child._collect_text(parts)

    def own_text(self) -> str:
        """Character data of direct text-node children only."""
        return "".join(child.text for child in self.children if isinstance(child, TextNode))

    # -- serialization -----------------------------------------------------

    def to_html(self) -> str:
        """Serialize the subtree back to HTML (used by the page generator)."""
        attrs = "".join(
            f' {name}' if value == "" and name in _BOOLEAN_ATTRS else f' {name}="{_escape(value)}"'
            for name, value in self.attributes.items()
        )
        if self.tag in VOID_TAGS:
            return f"<{self.tag}{attrs}>"
        inner = "".join(
            child.to_html() if isinstance(child, Element) else _escape_text(child.text)
            for child in self.children
        )
        return f"<{self.tag}{attrs}>{inner}</{self.tag}>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ident = f"#{self.id}" if self.id else ""
        return f"<Element {self.tag}{ident} children={len(self.children)}>"


_BOOLEAN_ATTRS = frozenset({"hidden", "disabled", "checked", "required", "multiple", "selected"})


def _escape(value: str) -> str:
    return value.replace("&", "&amp;").replace('"', "&quot;").replace("<", "&lt;").replace(">", "&gt;")


def _escape_text(value: str) -> str:
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


@dataclass
class Document:
    """A parsed HTML document.

    Attributes:
        root: The root ``<html>`` element (synthesised if the source lacked
            one).
        url: The URL the document was fetched from, when known.
    """

    root: Element
    url: str | None = None
    _id_index: dict[str, Element] | None = field(default=None, repr=False, compare=False)
    _id_index_version: int = field(default=-1, repr=False, compare=False)
    _document_index: "DocumentIndex | None" = field(default=None, repr=False, compare=False)
    _document_index_version: int = field(default=-1, repr=False, compare=False)

    # -- document-level accessors -------------------------------------------

    @property
    def html_lang(self) -> str | None:
        """The declared document language (the ``lang`` attribute on ``<html>``)."""
        lang = self.root.get("lang")
        return lang.strip() if lang else None

    @property
    def head(self) -> Element | None:
        return next((el for el in self.root.child_elements() if el.tag == "head"), None)

    @property
    def body(self) -> Element | None:
        return next((el for el in self.root.child_elements() if el.tag == "body"), None)

    @property
    def title(self) -> str | None:
        """Text of the ``<title>`` element, stripped, or ``None`` when absent."""
        head = self.head
        scope = head if head is not None else self.root
        title = scope.find("title")
        if title is None:
            title = self.root.find("title")
        if title is None:
            return None
        return title.text_content().strip()

    # -- queries -------------------------------------------------------------

    def iter_elements(self) -> Iterator[Element]:
        yield from self.root.iter()

    def find_all(self, tag: str | None = None, *,
                 predicate: Callable[[Element], bool] | None = None) -> list[Element]:
        results = self.root.find_all(tag, predicate=predicate)
        # Include the root itself when it matches; find_all excludes self.
        if tag is not None and self.root.tag == tag.lower():
            if predicate is None or predicate(self.root):
                results.insert(0, self.root)
        return results

    def get_element_by_id(self, element_id: str) -> Element | None:
        """Look up an element by its ``id`` attribute (index built lazily).

        The lazily built map invalidates itself when the tree mutates
        (``Element.set``/``append`` bump the root's ``tree_version``), so
        callers never observe stale lookups after a mutation.
        """
        if self._id_index is None or self._id_index_version != self.root.tree_version:
            version = self.root.tree_version
            index: dict[str, Element] = {}
            for element in self.root.iter():
                identifier = element.id
                if identifier and identifier not in index:
                    index[identifier] = element
            # Record the version only once the rebuild succeeded, so an
            # interrupted build can never leave a stale map marked fresh.
            self._id_index = index
            self._id_index_version = version
        return self._id_index.get(element_id)

    def labels_for(self, element_id: str) -> list[Element]:
        """All ``<label for=element_id>`` elements, in document order.

        This is the naive reference lookup (one traversal per call); the
        :class:`~repro.html.index.DocumentIndex` answers the same query from
        a prebuilt map.  An empty ``element_id`` matches nothing, mirroring
        ``get_element_by_id`` (which never indexes empty ids).
        """
        if not element_id:
            return []
        return self.root.find_all(
            "label", predicate=lambda label: label.get("for") == element_id)

    def index(self) -> "DocumentIndex":
        """The document's :class:`~repro.html.index.DocumentIndex`.

        Built on first use in a single traversal and cached; rebuilt
        automatically when the tree mutates.  Every consumer that asks the
        same document for its index shares one instance, which is how the
        pipeline's extraction and audit stages (and Kizuki's base-vs-extended
        double audit) end up traversing each page only once.
        """
        from repro.html.index import DocumentIndex

        if (self._document_index is None
                or self._document_index_version != self.root.tree_version):
            from repro import perf

            version = self.root.tree_version
            with perf.stage("index"):
                self._document_index = DocumentIndex(self)
            self._document_index_version = version
        return self._document_index

    def invalidate_indexes(self) -> None:
        """Drop cached indexes explicitly.

        Mutations through ``Element.set``/``append`` invalidate automatically;
        this remains for callers that mutate ``children``/``attributes``
        containers directly.
        """
        self._id_index = None
        self._id_index_version = -1
        self._document_index = None
        self._document_index_version = -1

    def to_html(self) -> str:
        """Serialize the whole document, including a doctype."""
        return "<!DOCTYPE html>" + self.root.to_html()


def new_document(lang: str | None = None, title: str | None = None,
                 url: str | None = None) -> Document:
    """Create an empty document with ``<head>`` and ``<body>`` scaffolding.

    Used by the synthetic page generator and by tests that build isolated
    single-element pages (the Appendix D experiment).
    """
    root = Element("html", {"lang": lang} if lang else None)
    head = Element("head")
    body = Element("body")
    root.append(head)
    root.append(body)
    if title is not None:
        title_el = Element("title")
        title_el.append_text(title)
        head.append(title_el)
    return Document(root=root, url=url)

"""Error-tolerant HTML parsing into the :mod:`repro.html.dom` model.

Built on the standard library's ``html.parser.HTMLParser``.  Real-world pages
are messy — unclosed tags, stray end tags, implicit ``<html>``/``<body>`` —
so the builder follows a small subset of the HTML5 tree-construction rules:

* missing ``<html>``, ``<head>`` and ``<body>`` elements are synthesised;
* an end tag closes the nearest matching open element, implicitly closing
  anything opened after it;
* an end tag with no matching open element is ignored;
* ``<p>`` and ``<li>`` elements are implicitly closed by a new sibling of the
  same kind, the most common source of mis-nesting on the pages this study
  crawls;
* void elements (``<img>``, ``<br>``, ...) never stay on the open stack.

This is not a full HTML5 parser, but it is deterministic, dependency-free and
robust enough for both the synthetic corpus and hand-written fixtures.
"""

from __future__ import annotations

from html.parser import HTMLParser

from repro import perf
from repro.html.dom import Document, Element, TextNode, VOID_TAGS


#: Tags that implicitly close a previous unclosed sibling of the same tag.
_SELF_CLOSING_SIBLINGS = frozenset({"p", "li", "option", "tr", "td", "th", "dt", "dd"})

#: Raw-text elements whose content must not be interpreted as markup.
_RAW_TEXT_TAGS = frozenset({"script", "style"})


class _TreeBuilder(HTMLParser):
    """Internal ``HTMLParser`` subclass that builds an Element tree."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.root = Element("html")
        self._stack: list[Element] = [self.root]
        self._saw_explicit_html = False

    # -- helpers -----------------------------------------------------------

    @property
    def _current(self) -> Element:
        return self._stack[-1]

    def _open(self, element: Element) -> None:
        # _append_raw throughout the builder: no Document exists while the
        # tree is under construction, so version bumps would be pure cost.
        self._current._append_raw(element)
        if element.tag not in VOID_TAGS:
            self._stack.append(element)

    def _close_until(self, tag: str) -> bool:
        """Close open elements up to and including ``tag``.

        Returns ``False`` (and closes nothing) when ``tag`` is not open.
        """
        for index in range(len(self._stack) - 1, 0, -1):
            if self._stack[index].tag == tag:
                del self._stack[index:]
                return True
        return False

    # -- HTMLParser callbacks ------------------------------------------------

    def handle_starttag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        tag = tag.lower()
        # Attribute-less tags (the common case on text-heavy pages) skip the
        # dict build entirely; Element treats ``None`` as "no attributes".
        attributes = ({name: (value if value is not None else "") for name, value in attrs}
                      if attrs else None)

        if tag == "html":
            # Merge attributes (notably ``lang``) onto the synthesised root
            # instead of nesting a second <html> element.
            self._saw_explicit_html = True
            if attributes:
                for name, value in attributes.items():
                    self.root.set(name, value)
            return

        if tag in _SELF_CLOSING_SIBLINGS and self._current.tag == tag:
            self._stack.pop()

        self._open(Element(tag, attributes))

    def handle_startendtag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        tag = tag.lower()
        if tag == "html":
            return
        attributes = ({name: (value if value is not None else "") for name, value in attrs}
                      if attrs else None)
        element = Element(tag, attributes)
        self._current._append_raw(element)

    def handle_endtag(self, tag: str) -> None:
        tag = tag.lower()
        if tag == "html":
            return
        if tag in VOID_TAGS:
            return
        self._close_until(tag)

    def handle_data(self, data: str) -> None:
        if not data:
            return
        # Inside <script>/<style>, keep the text attached (so that the
        # visibility rules can skip it) but never interpret it as markup;
        # HTMLParser already handles CDATA content modes for these tags.
        #
        # Adjacent character-data runs (e.g. text split around a dropped
        # comment or an unconverted entity) coalesce into the previous text
        # node: all text consumers concatenate sibling text nodes without a
        # separator, so merging is byte-identical while keeping the tree (and
        # the per-node bookkeeping downstream) smaller.
        children = self._current.children
        if children:
            last = children[-1]
            if type(last) is TextNode:
                last.text += data
                return
        self._current._append_raw(TextNode(data))

    def handle_comment(self, data: str) -> None:
        # Comments carry no accessibility signal; drop them.
        return

    def handle_decl(self, decl: str) -> None:
        return


def _ensure_head_and_body(root: Element) -> None:
    """Normalise the tree so that ``<head>`` and ``<body>`` exist and wrap content.

    Content parsed directly under ``<html>`` is moved into ``<body>`` unless
    it is head-only metadata (``<title>``, ``<meta>``, ``<link>``, ...), which
    goes into ``<head>``.
    """
    head_only = {"title", "meta", "link", "base", "style"}
    head = next((el for el in root.child_elements() if el.tag == "head"), None)
    body = next((el for el in root.child_elements() if el.tag == "body"), None)

    if head is None:
        head = Element("head")
        head.parent = root
    if body is None:
        body = Element("body")
        body.parent = root

    reassigned: list = []
    for child in root.children:
        if child is head or child is body:
            continue
        if isinstance(child, Element) and child.tag in head_only:
            head._append_raw(child)
        else:
            body._append_raw(child)
        reassigned.append(child)

    root.children = [head, body]


def parse_html(markup: str, url: str | None = None) -> Document:
    """Parse ``markup`` into a :class:`~repro.html.dom.Document`.

    Args:
        markup: The HTML source.  Malformed input never raises; the parser
            recovers using the rules described in the module docstring.
        url: Optional source URL recorded on the document.

    Returns:
        The parsed document with guaranteed ``<head>`` and ``<body>``.
    """
    with perf.stage("parse"):
        perf.count("parse.documents")
        perf.count("parse.chars", len(markup))
        builder = _TreeBuilder()
        builder.feed(markup)
        builder.close()
        _ensure_head_and_body(builder.root)
        return Document(root=builder.root, url=url)

"""Accessible-name computation.

Screen readers announce interface elements by their *accessible name*, which
the browser computes from a precedence list of sources (the ARIA
"accname" algorithm).  The audit rules and the accessibility-text extraction
both need this computation, so it lives in the HTML substrate.

The implementation follows the precedence order that matters for the twelve
elements studied by the paper:

1. ``aria-labelledby`` — text content of the referenced elements;
2. ``aria-label``;
3. element-specific native markup:
   * ``alt`` for ``<img>``, ``<area>`` and ``<input type=image>``;
   * associated ``<label>`` (``for``/id or wrapping) for form controls;
   * ``value`` for ``<input type=button|submit|reset>``;
   * ``<title>``/``<desc>`` children for inline ``<svg>``;
   * ``title`` attribute for ``<frame>``/``<iframe>`` and as a general
     fallback;
4. visible subtree text (buttons, links, summaries);
5. ``title`` attribute as last resort.

The result records both the name and the *source* that produced it, because
the paper distinguishes explicit accessibility metadata from the fallback to
visible text (Section 3 discusses developers relying on that fallback).

The ``document`` argument of :func:`accessible_name` accepts either a plain
:class:`~repro.html.dom.Document` (the naive reference path: id lookups and
``label[for]`` associations walk the tree) or a
:class:`~repro.html.index.DocumentIndex` (all lookups come from the one-pass
index, and visible-text fallbacks hit its memo).  The functions only rely on
the shared ``get_element_by_id``/``labels_for`` surface, so they stay
ignorant of which access path is in use.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.html.dom import Document, Element
from repro.html.visibility import visible_text_of

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.html.index import DocumentIndex

    NameContext = Document | DocumentIndex | None


class NameSource(str, enum.Enum):
    """Where an accessible name came from, in precedence order."""

    ARIA_LABELLEDBY = "aria-labelledby"
    ARIA_LABEL = "aria-label"
    NATIVE_MARKUP = "native-markup"
    VISIBLE_TEXT = "visible-text"
    TITLE_ATTR = "title"
    NONE = "none"


@dataclass(frozen=True)
class AccessibleNameResult:
    """Outcome of accessible-name computation for one element.

    Attributes:
        name: The computed accessible name ("" when none).
        source: Which source produced the name.
        explicit: True when the name comes from dedicated accessibility
            markup (ARIA attributes, ``alt``, ``<label>``) rather than from
            the visible-text fallback.  The paper's measurements of "missing"
            accessibility text are measurements of explicit metadata.
    """

    name: str
    source: NameSource

    @property
    def explicit(self) -> bool:
        return self.source in (
            NameSource.ARIA_LABELLEDBY,
            NameSource.ARIA_LABEL,
            NameSource.NATIVE_MARKUP,
        )

    @property
    def is_empty(self) -> bool:
        return not self.name.strip()


_FORM_CONTROL_TAGS = frozenset({"input", "select", "textarea"})
_BUTTON_VALUE_TYPES = frozenset({"button", "submit", "reset"})


def _labelledby_name(element: Element, document: "NameContext") -> str | None:
    ids = (element.get("aria-labelledby") or "").split()
    if not ids or document is None:
        return None
    parts = []
    for ref in ids:
        target = document.get_element_by_id(ref)
        if target is not None:
            parts.append(target.text_content().strip())
    name = " ".join(part for part in parts if part)
    return name or None


def _associated_label_text(element: Element, document: "NameContext") -> str | None:
    """Text of a ``<label>`` associated with a form control."""
    # Wrapping label.
    for ancestor in element.ancestors():
        if ancestor.tag == "label":
            return ancestor.text_content().strip() or None
    # label[for=id] — an O(1) map lookup on the index, a scan on a Document.
    element_id = element.id
    if element_id and document is not None:
        labels = document.labels_for(element_id)
        if labels:
            return labels[0].text_content().strip() or None
    return None


def _svg_title(element: Element) -> str | None:
    title = next((child for child in element.child_elements() if child.tag == "title"), None)
    if title is not None:
        text = title.text_content().strip()
        if text:
            return text
    desc = next((child for child in element.child_elements() if child.tag == "desc"), None)
    if desc is not None:
        text = desc.text_content().strip()
        if text:
            return text
    return None


def _native_markup_name(element: Element, document: "NameContext") -> str | None:
    """Element-specific native naming markup, step 3 of the precedence list."""
    tag = element.tag
    if tag in ("img", "area"):
        alt = element.get("alt")
        return alt if alt is not None else None
    if tag == "input":
        input_type = (element.get("type") or "text").lower()
        if input_type == "image":
            alt = element.get("alt")
            if alt is not None:
                return alt
            return None
        if input_type in _BUTTON_VALUE_TYPES:
            value = element.get("value")
            if value is not None:
                return value
            return None
        return _associated_label_text(element, document)
    if tag in ("select", "textarea"):
        return _associated_label_text(element, document)
    if tag == "svg":
        return _svg_title(element)
    if tag == "object":
        # <object> has no dedicated text alternative attribute; its fallback
        # content (children) acts as the alternative.
        fallback = element.text_content().strip()
        return fallback or None
    if tag in ("frame", "iframe"):
        title = element.get("title")
        return title if title is not None else None
    return None


def _visible_text_name(element: Element, document: "NameContext") -> str | None:
    if element.tag in ("button", "a", "summary", "label", "option", "legend", "caption", "th", "td"):
        # An accessor memoizes subtree text; a plain Document (or no context)
        # computes fresh.  Dispatch on the Document type rather than
        # importing the accessor union, which would be a circular import.
        if document is None or isinstance(document, Document):
            text = visible_text_of(element)
        else:
            text = document.visible_text(element)
        return text or None
    return None


def accessible_name(element: Element, document: "NameContext" = None) -> AccessibleNameResult:
    """Compute the accessible name of ``element``.

    Args:
        element: The element to name.
        document: The containing document (or its
            :class:`~repro.html.index.DocumentIndex`); needed to resolve
            ``aria-labelledby`` references and ``label[for]`` associations.
            When omitted, those sources are skipped.

    Returns:
        An :class:`AccessibleNameResult`.  Note that an *empty but present*
        source (e.g. ``alt=""``) is reported with that source and an empty
        name: the distinction between "missing" and "empty" is central to
        Table 2 of the paper.
    """
    labelledby = _labelledby_name(element, document)
    if labelledby is not None:
        return AccessibleNameResult(labelledby, NameSource.ARIA_LABELLEDBY)

    aria_label = element.get("aria-label")
    if aria_label is not None:
        return AccessibleNameResult(aria_label, NameSource.ARIA_LABEL)

    native = _native_markup_name(element, document)
    if native is not None:
        return AccessibleNameResult(native, NameSource.NATIVE_MARKUP)

    visible = _visible_text_name(element, document)
    if visible is not None:
        return AccessibleNameResult(visible, NameSource.VISIBLE_TEXT)

    title = element.get("title")
    if title is not None and title.strip():
        return AccessibleNameResult(title, NameSource.TITLE_ATTR)

    return AccessibleNameResult("", NameSource.NONE)


def has_explicit_accessibility_text(element: Element, document: "NameContext" = None) -> bool:
    """Whether the element carries explicit (non-fallback) accessibility text."""
    return accessible_name(element, document).explicit

"""A small CSS-like selector engine.

The audit rules and the extraction pipeline select elements by tag, id,
class, attribute presence/value and simple combinations thereof.  A full CSS
selector implementation is unnecessary; this engine supports the grammar the
library actually uses:

* ``tag`` — element type, e.g. ``img``;
* ``#id`` — id match;
* ``.class`` — class match;
* ``[attr]`` / ``[attr=value]`` — attribute presence / exact value;
* compound simple selectors, e.g. ``input[type=image]``;
* comma-separated selector lists, e.g. ``button, [role=button]``;
* descendant combinator with a single space, e.g. ``form input``.

Anything else raises :class:`SelectorError` at parse time so that typos in
rule definitions fail loudly rather than silently matching nothing.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.html.dom import Document, Element


class SelectorError(ValueError):
    """Raised for selector syntax this engine does not support."""


_SIMPLE_PART_RE = re.compile(
    r"""
    (?P<tag>[a-zA-Z][\w-]*)            |
    \#(?P<id>[\w-]+)                   |
    \.(?P<cls>[\w-]+)                  |
    \[(?P<attr>[\w-]+)(=(?P<quote>["']?)(?P<value>[^\]"']*)(?P=quote))?\]
    """,
    re.VERBOSE,
)


@dataclass
class SimpleSelector:
    """A compound simple selector: tag + id + classes + attribute tests."""

    tag: str | None = None
    element_id: str | None = None
    classes: tuple[str, ...] = ()
    attributes: tuple[tuple[str, str | None], ...] = ()

    def matches(self, element: Element) -> bool:
        if self.tag is not None and element.tag != self.tag:
            return False
        if self.element_id is not None and element.id != self.element_id:
            return False
        if self.classes and not set(self.classes).issubset(element.classes):
            return False
        for name, expected in self.attributes:
            if not element.has_attr(name):
                return False
            if expected is not None and (element.get(name) or "") != expected:
                return False
        return True


@dataclass
class CompoundSelector:
    """A descendant chain of simple selectors (``form input`` has two parts)."""

    parts: tuple[SimpleSelector, ...] = field(default_factory=tuple)

    def matches(self, element: Element) -> bool:
        if not self.parts:
            return False
        if not self.parts[-1].matches(element):
            return False
        # Walk ancestors for the remaining parts, right to left.
        remaining = list(self.parts[:-1])
        current = element.parent
        while remaining and current is not None:
            if remaining[-1].matches(current):
                remaining.pop()
            current = current.parent
        return not remaining


def _parse_simple(token: str) -> SimpleSelector:
    position = 0
    tag: str | None = None
    element_id: str | None = None
    classes: list[str] = []
    attributes: list[tuple[str, str | None]] = []
    while position < len(token):
        match = _SIMPLE_PART_RE.match(token, position)
        if match is None:
            raise SelectorError(f"unsupported selector syntax at {token[position:]!r}")
        if match.group("tag"):
            if tag is not None:
                raise SelectorError(f"two element types in selector {token!r}")
            tag = match.group("tag").lower()
        elif match.group("id"):
            element_id = match.group("id")
        elif match.group("cls"):
            classes.append(match.group("cls"))
        elif match.group("attr"):
            value = match.group("value")
            attributes.append((match.group("attr").lower(), value if value is not None else None))
        position = match.end()
    return SimpleSelector(
        tag=tag,
        element_id=element_id,
        classes=tuple(classes),
        attributes=tuple(attributes),
    )


def parse_selector(selector: str) -> list[CompoundSelector]:
    """Parse a selector list into compound selectors.

    Raises:
        SelectorError: On empty input or unsupported syntax.
    """
    selector = selector.strip()
    if not selector:
        raise SelectorError("empty selector")
    compounds: list[CompoundSelector] = []
    for alternative in selector.split(","):
        alternative = alternative.strip()
        if not alternative:
            raise SelectorError(f"empty alternative in selector list {selector!r}")
        parts = tuple(_parse_simple(token) for token in alternative.split())
        compounds.append(CompoundSelector(parts=parts))
    return compounds


def matches(element: Element, selector: str) -> bool:
    """Whether ``element`` matches ``selector`` (any alternative)."""
    return any(compound.matches(element) for compound in parse_selector(selector))


def select(root: Document | Element, selector: str) -> list[Element]:
    """All elements under ``root`` (inclusive) matching ``selector``.

    Results are returned in document order without duplicates, even when an
    element matches several alternatives of a selector list.
    """
    compounds = parse_selector(selector)
    scope = root.root if isinstance(root, Document) else root
    results: list[Element] = []
    for element in scope.iter():
        if any(compound.matches(element) for compound in compounds):
            results.append(element)
    return results

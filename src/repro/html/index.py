"""Single-pass document indexing.

The audit and extraction layers ask the same document the same families of
questions over and over: *all elements of tag X* (once per rule, once per
extraction group), *the element with id Y* (``aria-labelledby``), *the
``<label>`` for control Z* (previously a full-document scan per form
control — O(n²) worst case), *is this node visible*, *what is the visible
text / accessible name of this element*.  Answered naively, auditing and
extracting one page costs ~25 full DOM traversals.

:class:`DocumentIndex` answers all of them from **one** depth-first pass:

* ``tag → elements`` and ``role → elements`` buckets, document order
  preserved (and mergeable across tags via recorded positions);
* ``id → element`` (first occurrence wins, like
  :meth:`~repro.html.dom.Document.get_element_by_id`);
* ``label[for] → labels`` association map;
* top-down memoized visibility (an element is hidden iff its parent is or it
  hides itself — computed once per element during the pass);
* lazily cached visible-text and accessible-name results per element.

The index is a pure *access-path* optimisation: every answer is identical to
the naive traversal APIs on :class:`~repro.html.dom.Document`, which remain
in place as the reference implementation (``tests/
test_property_document_index.py`` generates random DOMs and asserts
equivalence).  :class:`NaiveDocumentAccessor` wraps those reference APIs
behind the same interface so consumers can be switched between the two paths
(``use_index=``) for parity tests and benchmarks.

Consumers obtain the index via :meth:`repro.html.dom.Document.index`, which
caches it on the document and rebuilds it when the tree mutates — so the
pipeline's extraction and audit stages, and Kizuki's base-vs-extended double
audit, all share one traversal per page.
"""

from __future__ import annotations

from typing import Callable

from repro.html.accessibility import AccessibleNameResult, accessible_name
from repro.html.dom import Document, Element, Node
from repro.html.visibility import _element_hidden, extract_visible_text, is_visible

_UNSET = object()


class DocumentIndex:
    """One-pass index over a parsed :class:`~repro.html.dom.Document`.

    Exposes the query surface the audit rules and the extraction layer need;
    see the module docstring for what is precomputed versus lazily cached.
    """

    def __init__(self, document: Document) -> None:
        self.document = document
        by_tag: dict[str, list[Element]] = {}
        by_role: dict[str, list[Element]] = {}
        by_id: dict[str, Element] = {}
        labels_by_for: dict[str, list[Element]] = {}
        position: dict[Element, int] = {}
        hidden: dict[Element, bool] = {}
        order: list[Element] = []

        # Iterative depth-first pre-order walk carrying the inherited
        # hidden flag, so visibility memoization is purely top-down.
        stack: list[tuple[Element, bool]] = [(document.root, False)]
        while stack:
            element, parent_hidden = stack.pop()
            element_hidden = parent_hidden or _element_hidden(element)
            position[element] = len(order)
            order.append(element)
            hidden[element] = element_hidden
            by_tag.setdefault(element.tag, []).append(element)
            role = element.role
            if role:
                by_role.setdefault(role, []).append(element)
            identifier = element.id
            if identifier and identifier not in by_id:
                by_id[identifier] = element
            if element.tag == "label":
                target = element.get("for")
                if target:
                    labels_by_for.setdefault(target, []).append(element)
            for child in reversed(element.children):
                if isinstance(child, Element):
                    stack.append((child, element_hidden))

        self._by_tag = by_tag
        self._by_role = by_role
        self._by_id = by_id
        self._labels_by_for = labels_by_for
        self._position = position
        self._hidden = hidden
        self._order = order
        self._visible_text: dict[Element, str] = {}
        self._accessible_names: dict[Element, AccessibleNameResult] = {}
        self._title: object = _UNSET

    # -- document-level accessors -----------------------------------------

    @property
    def root(self) -> Element:
        return self.document.root

    @property
    def url(self) -> str | None:
        return self.document.url

    @property
    def html_lang(self) -> str | None:
        return self.document.html_lang

    @property
    def title(self) -> str | None:
        """The document title, computed once and cached."""
        if self._title is _UNSET:
            self._title = self.document.title
        return self._title  # type: ignore[return-value]

    # -- element selection -------------------------------------------------

    def elements(self, tag: str | None = None, *,
                 predicate: Callable[[Element], bool] | None = None) -> list[Element]:
        """Elements matching ``tag``/``predicate``, in document order.

        Matches :meth:`repro.html.dom.Document.find_all` exactly, including
        the root element when its tag matches (and its exclusion for
        ``tag=None``).
        """
        if tag is None:
            candidates = self._order[1:]
        else:
            candidates = self._by_tag.get(tag.lower(), [])
        if predicate is None:
            return list(candidates)
        return [element for element in candidates if predicate(element)]

    def elements_of(self, *tags: str) -> list[Element]:
        """Elements of any of ``tags``, merged into one document-ordered list.

        This is what makes multi-tag audit targets (``iframe``/``frame``,
        ``input``/``textarea``) document-ordered instead of
        grouped-by-lookup-order.
        """
        merged: list[Element] = []
        seen: set[str] = set()
        for tag in tags:
            tag = tag.lower()
            if tag not in seen:
                seen.add(tag)
                merged.extend(self._by_tag.get(tag, []))
        merged.sort(key=self._position.__getitem__)
        return merged

    def elements_with_role(self, role: str) -> list[Element]:
        """Elements carrying an explicit ARIA ``role``, in document order."""
        return list(self._by_role.get(role.strip().lower(), []))

    def get_element_by_id(self, element_id: str) -> Element | None:
        return self._by_id.get(element_id)

    def labels_for(self, element_id: str) -> list[Element]:
        """``<label for=element_id>`` elements, in document order."""
        return list(self._labels_by_for.get(element_id, ()))

    # -- visibility ---------------------------------------------------------

    def is_visible(self, node: Node) -> bool:
        """Memoized equivalent of :func:`repro.html.visibility.is_visible`."""
        element = node if isinstance(node, Element) else node.parent
        if element is None:
            return True
        hidden = self._hidden.get(element)
        if hidden is None:
            # Node outside the indexed tree (detached or foreign): fall back
            # to the naive ancestor walk rather than guessing.
            return is_visible(node)
        return not hidden

    def visible_text(self, element: Element | None = None, *,
                     normalize: bool = True) -> str:
        """Visible text of ``element`` (default: the whole document), cached.

        Only the normalized form — the one every consumer uses — is
        memoized; a non-normalized request computes fresh.
        """
        if element is None:
            element = self.document.root
        if not normalize:
            return extract_visible_text(element, normalize=False)
        cached = self._visible_text.get(element)
        if cached is None:
            cached = extract_visible_text(element)
            self._visible_text[element] = cached
        return cached

    def document_text(self) -> str:
        """Visible text of the whole document (cached)."""
        return self.visible_text()

    # -- accessible names ---------------------------------------------------

    def accessible_name(self, element: Element) -> AccessibleNameResult:
        """Memoized accessible-name computation.

        Resolution of ``aria-labelledby`` references, ``label[for]``
        associations and visible-text fallbacks all go through this index,
        so no full-document scans happen per element.
        """
        cached = self._accessible_names.get(element)
        if cached is None:
            cached = accessible_name(element, self)
            self._accessible_names[element] = cached
        return cached


class NaiveDocumentAccessor:
    """The reference access path: same interface, no index, no caching.

    Every query delegates to the naive traversal APIs on
    :class:`~repro.html.dom.Document` (and the module-level visibility /
    accessibility functions).  Property tests compare this accessor against
    :class:`DocumentIndex` on random DOMs, and the benchmark measures the
    throughput gap between the two.
    """

    def __init__(self, document: Document) -> None:
        self.document = document

    @property
    def root(self) -> Element:
        return self.document.root

    @property
    def url(self) -> str | None:
        return self.document.url

    @property
    def html_lang(self) -> str | None:
        return self.document.html_lang

    @property
    def title(self) -> str | None:
        return self.document.title

    def elements(self, tag: str | None = None, *,
                 predicate: Callable[[Element], bool] | None = None) -> list[Element]:
        return self.document.find_all(tag, predicate=predicate)

    def elements_of(self, *tags: str) -> list[Element]:
        wanted = frozenset(tag.lower() for tag in tags)
        return [element for element in self.document.iter_elements()
                if element.tag in wanted]

    def elements_with_role(self, role: str) -> list[Element]:
        wanted = role.strip().lower()
        return [element for element in self.document.iter_elements()
                if element.role == wanted]

    def get_element_by_id(self, element_id: str) -> Element | None:
        if not element_id:
            # Empty ids are never indexed; keep the scan consistent.
            return None
        for element in self.document.iter_elements():
            if element.id == element_id:
                return element
        return None

    def labels_for(self, element_id: str) -> list[Element]:
        return self.document.labels_for(element_id)

    def is_visible(self, node: Node) -> bool:
        return is_visible(node)

    def visible_text(self, element: Element | None = None, *,
                     normalize: bool = True) -> str:
        if element is None:
            element = self.document.root
        return extract_visible_text(element, normalize=normalize)

    def document_text(self) -> str:
        return self.visible_text()

    def accessible_name(self, element: Element) -> AccessibleNameResult:
        return accessible_name(element, self.document)


#: Either access path; consumers are written against this shape.
DocumentAccessor = DocumentIndex | NaiveDocumentAccessor


def ensure_index(source: Document | DocumentIndex | NaiveDocumentAccessor,
                 ) -> DocumentAccessor:
    """Coerce a document (or an accessor) to an accessor.

    A plain :class:`~repro.html.dom.Document` resolves to its cached
    :class:`DocumentIndex`, which is what makes index sharing between
    consumers automatic; an accessor passes through untouched.
    """
    if isinstance(source, (DocumentIndex, NaiveDocumentAccessor)):
        return source
    return source.index()

"""Empirical cumulative distribution functions.

Figure 5 of the paper plots, per country, the CDFs of native-language usage
in visible and accessibility text.  :class:`EmpiricalCDF` provides the two
operations those plots (and the mismatch analysis) need: evaluating
``F(x) = P(X <= x)`` and extracting quantiles, plus a fixed-grid tabulation
used by the benchmark harnesses to print comparable series.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Sequence


class EmpiricalCDF:
    """The empirical CDF of a one-dimensional sample."""

    def __init__(self, values: Iterable[float]) -> None:
        self._values: list[float] = sorted(float(value) for value in values)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> Sequence[float]:
        return tuple(self._values)

    def evaluate(self, x: float) -> float:
        """``P(X <= x)``; 0.0 for an empty sample."""
        if not self._values:
            return 0.0
        return bisect_right(self._values, x) / len(self._values)

    def __call__(self, x: float) -> float:
        return self.evaluate(x)

    def quantile(self, q: float) -> float:
        """The smallest value ``v`` with ``F(v) >= q``.

        Raises:
            ValueError: When ``q`` is outside (0, 1] or the sample is empty.
        """
        if not self._values:
            raise ValueError("cannot compute a quantile of an empty sample")
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile level must be in (0, 1], got {q}")
        index = max(0, min(len(self._values) - 1, int(q * len(self._values) + 0.999999) - 1))
        return self._values[index]

    def tabulate(self, grid: Iterable[float]) -> list[tuple[float, float]]:
        """``(x, F(x))`` pairs over ``grid`` (used to print Figure 5 series)."""
        return [(float(x), self.evaluate(float(x))) for x in grid]

    def fraction_below(self, x: float) -> float:
        """``P(X < x)`` — the metric behind "less than 10% native accessibility text"."""
        if not self._values:
            return 0.0
        # Strict inequality: subtract ties at x.
        upper = bisect_right(self._values, x)
        ties = upper - bisect_right(self._values, x - 1e-12)
        return (upper - ties) / len(self._values)

"""Binned histograms.

Used by two harnesses: the rank-bucket heatmap of Appendix C (Figure 7) and
the score histograms of Figure 6 (accessibility scores before/after Kizuki).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence


@dataclass(frozen=True)
class Histogram:
    """A histogram over explicit bin edges.

    Attributes:
        edges: Bin edges, ascending; bin ``i`` covers ``[edges[i], edges[i+1])``
            except the last bin which is closed on both sides.
        counts: Number of observations per bin.
    """

    edges: tuple[float, ...]
    counts: tuple[int, ...]

    @property
    def total(self) -> int:
        return sum(self.counts)

    def normalized(self) -> tuple[float, ...]:
        """Counts as fractions of the total (all zeros when empty)."""
        total = self.total
        if total == 0:
            return tuple(0.0 for _ in self.counts)
        return tuple(count / total for count in self.counts)

    def bin_labels(self) -> tuple[str, ...]:
        return tuple(
            f"[{self.edges[i]:g}, {self.edges[i + 1]:g})" if i < len(self.counts) - 1
            else f"[{self.edges[i]:g}, {self.edges[i + 1]:g}]"
            for i in range(len(self.counts))
        )


def histogram(values: Iterable[float], edges: Sequence[float]) -> Histogram:
    """Bin ``values`` into ``edges``.

    Values below the first edge or above the last are clamped into the first
    and last bin respectively, so nothing is silently dropped.

    Raises:
        ValueError: When fewer than two edges are given or edges are not
            strictly increasing.
    """
    if len(edges) < 2:
        raise ValueError("histogram needs at least two bin edges")
    if any(edges[i] >= edges[i + 1] for i in range(len(edges) - 1)):
        raise ValueError("histogram edges must be strictly increasing")
    counts = [0] * (len(edges) - 1)
    for value in values:
        value = float(value)
        if value <= edges[0]:
            counts[0] += 1
            continue
        if value >= edges[-1]:
            counts[-1] += 1
            continue
        for index in range(len(edges) - 1):
            if edges[index] <= value < edges[index + 1]:
                counts[index] += 1
                break
    return Histogram(edges=tuple(float(edge) for edge in edges), counts=tuple(counts))


def bucket_counts(values: Iterable[float], buckets: Sequence[float]) -> dict[float, int]:
    """Count values into cumulative buckets: each value lands in the smallest
    bucket bound that is >= value (the CrUX rank-bucket convention).

    Values larger than every bucket bound land in an overflow bucket keyed by
    ``buckets[-1] * 10``.
    """
    if not buckets:
        raise ValueError("bucket_counts needs at least one bucket bound")
    bounds = sorted(float(bound) for bound in buckets)
    counts: dict[float, int] = {bound: 0 for bound in bounds}
    overflow_key = bounds[-1] * 10
    for value in values:
        value = float(value)
        for bound in bounds:
            if value <= bound:
                counts[bound] += 1
                break
        else:
            counts.setdefault(overflow_key, 0)
            counts[overflow_key] += 1
    return counts

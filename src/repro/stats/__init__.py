"""Statistics helpers shared by the analyses and benchmark harnesses."""

from repro.stats.summary import SummaryStats, summarize
from repro.stats.cdf import EmpiricalCDF
from repro.stats.histogram import Histogram, bucket_counts

__all__ = [
    "SummaryStats",
    "summarize",
    "EmpiricalCDF",
    "Histogram",
    "bucket_counts",
]

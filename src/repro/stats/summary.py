"""Summary statistics (median / standard deviation / mean / extremes).

Table 2 of the paper reports, for every accessibility element, the median,
standard deviation and mean of several per-website quantities.  This module
provides exactly that summary, implemented without external dependencies so
the core library stays dependency-free (NumPy is only used by benchmarks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class SummaryStats:
    """Median, standard deviation, mean and extremes of a sample.

    The standard deviation is the population standard deviation (``ddof=0``),
    which is the appropriate choice when the sample *is* the studied
    population (all websites of a country list).
    """

    count: int
    median: float
    std_dev: float
    mean: float
    minimum: float
    maximum: float

    @classmethod
    def empty(cls) -> "SummaryStats":
        return cls(count=0, median=0.0, std_dev=0.0, mean=0.0, minimum=0.0, maximum=0.0)

    def as_row(self) -> dict[str, float]:
        """The (median, std, mean) triple used by the Table 2 harness."""
        return {"median": self.median, "std": self.std_dev, "mean": self.mean}


def _median(sorted_values: Sequence[float]) -> float:
    count = len(sorted_values)
    middle = count // 2
    if count % 2 == 1:
        return float(sorted_values[middle])
    return (sorted_values[middle - 1] + sorted_values[middle]) / 2.0


def summarize(values: Iterable[float]) -> SummaryStats:
    """Compute :class:`SummaryStats` over ``values`` (empty input allowed)."""
    data = sorted(float(value) for value in values)
    if not data:
        return SummaryStats.empty()
    count = len(data)
    mean = sum(data) / count
    variance = sum((value - mean) ** 2 for value in data) / count
    return SummaryStats(
        count=count,
        median=_median(data),
        std_dev=math.sqrt(variance),
        mean=mean,
        minimum=data[0],
        maximum=data[-1],
    )


def percentile(values: Iterable[float], q: float) -> float:
    """The ``q``-th percentile (0–100) using linear interpolation.

    Raises:
        ValueError: When ``q`` is outside [0, 100] or ``values`` is empty.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    data = sorted(float(value) for value in values)
    if not data:
        raise ValueError("cannot compute a percentile of an empty sample")
    if len(data) == 1:
        return data[0]
    position = (q / 100.0) * (len(data) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return data[lower]
    fraction = position - lower
    return data[lower] * (1 - fraction) + data[upper] * fraction

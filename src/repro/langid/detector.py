"""Script-proportion language detection.

This is the paper's detection mechanism: a text is attributed to languages by
the proportion of its textual characters drawn from each language's script,
with language-specific characters used to disambiguate languages that share a
script (Urdu vs. Modern Standard Arabic, Hindi vs. Marathi, Mandarin vs.
Cantonese vs. Japanese).  English is attributed from Latin-script characters,
optionally refined by the n-gram classifier in :mod:`repro.langid.ngram`.

The main entry points are:

* :class:`ScriptDetector` — configured with a target language, computes the
  share of a text written in that language, in English and in other
  languages; used for the 50% site-inclusion criterion and for the
  visible-vs-accessibility mismatch analyses.
* :func:`detect_language_mix` — convenience wrapper returning a
  :class:`LanguageShare` for a text and target language.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import perf
from repro.langid.languages import Language, get_language
from repro.langid.scripts import (
    Script,
    script_histogram,
    script_shares,
)


@dataclass(frozen=True)
class LanguageShare:
    """Share of a text attributed to the target language and to English.

    Attributes:
        native: Fraction (0..1) of textual characters in the target language.
        english: Fraction of textual characters attributed to English
            (Latin-script text).
        other: Fraction attributed to any other language/script.
        textual_chars: Number of textual characters considered.  When zero,
            all fractions are zero and the text carries no language signal.
    """

    native: float
    english: float
    other: float
    textual_chars: int

    @property
    def is_empty(self) -> bool:
        """True when the text contained no textual characters at all."""
        return self.textual_chars == 0

    def dominant(self) -> str:
        """Return ``"native"``, ``"english"`` or ``"other"``.

        Ties resolve in the order native, english, other, which makes the
        classification stable and biases toward the target language only when
        shares are exactly equal (a rare event on real text).
        """
        if self.is_empty:
            return "other"
        best = max(self.native, self.english, self.other)
        if self.native == best:
            return "native"
        if self.english == best:
            return "english"
        return "other"


class ScriptDetector:
    """Detects how much of a text is written in a given target language.

    Args:
        language: The target language, by :class:`Language` or code.
        latin_is_english: When true (the default), Latin-script characters are
            attributed to English.  The paper treats Latin text on the studied
            pages as English; the ablation benchmark switches this off to
            quantify the assumption's impact.

    The detector is stateless and cheap to construct; one per
    language–country pair is typical.
    """

    def __init__(self, language: Language | str, *, latin_is_english: bool = True) -> None:
        self.language = get_language(language) if isinstance(language, str) else language
        self.latin_is_english = latin_is_english
        self._native_scripts = set(self.language.scripts)
        self._specific = self.language.specific_chars

    def share(self, text: str) -> LanguageShare:
        """Compute the :class:`LanguageShare` of ``text``.

        Script-sharing refinement: when the target language defines
        ``specific_chars`` (e.g. Urdu), text in the shared script counts as
        native only if at least one language-specific character is present;
        conversely, when another language owns the shared script via its own
        specific characters (e.g. Urdu characters on an Arabic-target page),
        that portion is attributed to ``other``.
        """
        with perf.stage("langid"):
            perf.count("langid.texts")
            perf.count("langid.chars", len(text))
            counts = script_histogram(text, textual_only=True)
            total = sum(counts.values())
            if total == 0:
                return LanguageShare(0.0, 0.0, 0.0, 0)

            native_chars = sum(counts.get(script, 0) for script in self._native_scripts)

            if self._specific and native_chars:
                # The target shares its script with a sibling language; require
                # evidence of the target's specific characters, otherwise split
                # the shared-script mass off to "other".  frozenset.isdisjoint
                # iterates the text in C, replacing the per-char membership
                # generator the naive version used.
                if self._specific.isdisjoint(text):
                    native_chars = 0

            english_chars = counts.get(Script.LATIN, 0) if self.latin_is_english else 0
            other_chars = total - native_chars - english_chars
            return LanguageShare(
                native=native_chars / total,
                english=english_chars / total,
                other=max(other_chars, 0) / total,
                textual_chars=total,
            )

    def native_share(self, text: str) -> float:
        """Shortcut for ``share(text).native``."""
        return self.share(text).native

    def meets_threshold(self, text: str, threshold: float = 0.5) -> bool:
        """Apply the paper's site-inclusion criterion to ``text``.

        A site qualifies when at least ``threshold`` (default 50%) of its
        visible textual content is in the target language.  Empty text never
        qualifies.
        """
        share = self.share(text)
        if share.is_empty:
            return False
        return share.native >= threshold


# Detectors are stateless and cheap, but not free: construction resolves the
# language and builds the native-script set.  The per-string classification
# helpers below run once per accessibility text, so they share one detector
# per (language, latin_is_english) instead of constructing a fresh one.
_DETECTOR_CACHE: dict[tuple[Language | str, bool], ScriptDetector] = {}


def cached_detector(language: Language | str, *, latin_is_english: bool = True) -> ScriptDetector:
    """A shared :class:`ScriptDetector` for ``language`` (stateless, reusable)."""
    key = (language, latin_is_english)
    detector = _DETECTOR_CACHE.get(key)
    if detector is None:
        detector = ScriptDetector(language, latin_is_english=latin_is_english)
        _DETECTOR_CACHE[key] = detector
    return detector


def detect_language_mix(text: str, language: Language | str) -> LanguageShare:
    """Convenience wrapper: language share of ``text`` for ``language``."""
    return cached_detector(language).share(text)


def dominant_language_code(text: str, candidates: list[Language]) -> str | None:
    """Pick the candidate language with the highest native share in ``text``.

    Returns ``None`` when no candidate reaches a non-zero share.  Used by the
    synthetic-web validation tests and by the selection ablation; the paper's
    pipeline itself always knows the target language of a country a priori.
    """
    best_code: str | None = None
    best_share = 0.0
    for language in candidates:
        share = ScriptDetector(language).native_share(text)
        if share > best_share:
            best_share = share
            best_code = language.code
    return best_code


def visible_script_profile(text: str) -> dict[str, float]:
    """Expose raw script shares keyed by script value, for reports and tests."""
    return {script.value: share for script, share in script_shares(text).items()}

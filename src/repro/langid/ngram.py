"""Character n-gram language models.

Script ranges cannot distinguish languages that share the Latin alphabet
(English vs. romanised Hindi vs. French boilerplate), nor can they separate
Japanese from Chinese when a snippet happens to contain only Han characters.
For those cases the library provides a small character n-gram classifier in
the style of Cavnar & Trenkle's rank-order profiles, trained on the built-in
lexicons of :mod:`repro.webgen.lexicon`.

The classifier is deliberately compact: the paper relies primarily on script
detection, and the n-gram model is only consulted for Latin-script
disambiguation and for the ablation benchmark comparing detection approaches.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping


# Per-token gram memo.  UI/accessibility text repeats a small vocabulary
# ("home", "menu", brand names), so the padded-slice walk for a given
# (token, n_values) pair is computed once and its gram dict re-used.  The
# cached dicts are treated as immutable by all readers.  Bounded so
# adversarial input (e.g. property-test fuzzing) cannot grow it without
# limit; clearing wholesale keeps the common case branch-free.
_TOKEN_CACHE: dict[tuple[str, tuple[int, ...]], dict[str, int]] = {}
_TOKEN_CACHE_MAX = 65536


def _token_grams(token: str, n_values: tuple[int, ...]) -> dict[str, int]:
    """Gram counts of one whitespace token (memoised; insertion order is the
    naive first-encounter order, which downstream float sums rely on)."""
    key = (token, n_values)
    cached = _TOKEN_CACHE.get(key)
    if cached is not None:
        return cached
    grams: dict[str, int] = {}
    padded = f"_{token}_"
    length = len(padded)
    for n in n_values:
        if length < n:
            continue
        for i in range(length - n + 1):
            gram = padded[i:i + n]
            grams[gram] = grams.get(gram, 0) + 1
    if len(_TOKEN_CACHE) >= _TOKEN_CACHE_MAX:
        _TOKEN_CACHE.clear()
    _TOKEN_CACHE[key] = grams
    return grams


def extract_ngrams(text: str, n_values: tuple[int, ...] = (1, 2, 3)) -> Counter[str]:
    """Extract padded character n-grams from ``text``.

    The text is lowercased and tokenised on whitespace; each token is padded
    with underscores so that word-initial and word-final n-grams are distinct
    from word-internal ones, which substantially improves short-string
    classification.

    Fast path: per-token gram dicts are accumulated locally and memoised
    instead of incrementing a ``Counter`` once per gram.  Gram insertion
    order matches :func:`extract_ngrams_naive` exactly (token by token,
    first encounter), so scoring sums that iterate the result add floats in
    the same order as the naive reference.
    """
    n_values = tuple(n_values)
    tokens = text.lower().split()
    if len(tokens) == 1:
        return Counter(_token_grams(tokens[0], n_values))
    grams: Counter[str] = Counter()
    for token in tokens:
        grams.update(_token_grams(token, n_values))
    return grams


def extract_ngrams_naive(text: str, n_values: tuple[int, ...] = (1, 2, 3)) -> Counter[str]:
    """Reference implementation of :func:`extract_ngrams` (per-gram Counter)."""
    grams: Counter[str] = Counter()
    for token in text.lower().split():
        padded = f"_{token}_"
        for n in n_values:
            if len(padded) < n:
                continue
            for i in range(len(padded) - n + 1):
                grams[padded[i:i + n]] += 1
    return grams


@dataclass
class NGramModel:
    """A per-language n-gram frequency model with add-one smoothing.

    Attributes:
        language_code: Code of the language this model represents.
        counts: Raw n-gram counts accumulated from training text.
        total: Total number of n-grams observed (kept in sync with counts).
    """

    language_code: str
    counts: Counter[str] = field(default_factory=Counter)
    total: int = 0
    n_values: tuple[int, ...] = (1, 2, 3)

    def __post_init__(self) -> None:
        # Lazily-built {gram: smoothed log-probability} table plus the
        # unseen-gram log-probability, invalidated by update().  Excluded
        # from dataclass comparison/pickling semantics by being assigned
        # here rather than declared as a field.
        self._log_table: dict[str, float] | None = None
        self._log_unseen: float = 0.0

    def __getstate__(self) -> dict:
        return {"language_code": self.language_code, "counts": self.counts,
                "total": self.total, "n_values": self.n_values}

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._log_table = None
        self._log_unseen = 0.0

    def update(self, text: str) -> None:
        """Accumulate the n-grams of ``text`` into the model."""
        grams = extract_ngrams(text, self.n_values)
        self.counts.update(grams)
        self.total += sum(grams.values())
        self._log_table = None

    def log_probability(self, gram: str) -> float:
        """Smoothed log-probability of a single n-gram under this model."""
        vocabulary = max(len(self.counts), 1)
        return math.log((self.counts.get(gram, 0) + 1) / (self.total + vocabulary))

    def _ensure_log_table(self) -> dict[str, float]:
        """Precompute log-probabilities of every known gram.

        Each entry evaluates the exact expression :meth:`log_probability`
        uses, so fast scores are float-identical to the naive reference.
        """
        table = self._log_table
        if table is None:
            denominator = self.total + max(len(self.counts), 1)
            table = {gram: math.log((count + 1) / denominator)
                     for gram, count in self.counts.items()}
            self._log_unseen = math.log(1 / denominator)
            self._log_table = table
        return table

    def score(self, text: str) -> float:
        """Average per-gram log-likelihood of ``text`` under this model.

        Averaging (rather than summing) makes scores comparable across texts
        of different lengths, which matters because accessibility strings are
        often very short.

        Fast path over :meth:`score_naive`: grams are looked up in the
        precomputed log-probability table instead of re-deriving the smoothed
        probability per call.  Results are float-identical (same expressions,
        same summation order); the parity suite pins this.
        """
        return self.score_grams(extract_ngrams(text, self.n_values))

    def score_grams(self, grams: Mapping[str, int]) -> float:
        """Score pre-extracted gram counts (lets callers share extraction)."""
        if not grams:
            return float("-inf")
        table = self._ensure_log_table()
        unseen = self._log_unseen
        total = 0
        log_likelihood = 0.0
        for gram, count in grams.items():
            total += count
            log_likelihood += count * table.get(gram, unseen)
        return log_likelihood / total

    def score_naive(self, text: str) -> float:
        """Reference implementation of :meth:`score` (no precomputed table)."""
        grams = extract_ngrams_naive(text, self.n_values)
        if not grams:
            return float("-inf")
        total = sum(grams.values())
        log_likelihood = sum(count * self.log_probability(gram) for gram, count in grams.items())
        return log_likelihood / total


class NGramClassifier:
    """Maximum-likelihood classifier over a set of :class:`NGramModel`.

    Typical use::

        classifier = NGramClassifier.train({
            "en": ["the quick brown fox", ...],
            "vi": ["xin chào thế giới", ...],
        })
        classifier.classify("hello world")   # -> "en"
    """

    def __init__(self, models: Mapping[str, NGramModel]) -> None:
        if not models:
            raise ValueError("NGramClassifier requires at least one model")
        self._models = dict(models)

    @classmethod
    def train(cls, corpus: Mapping[str, Iterable[str]],
              n_values: tuple[int, ...] = (1, 2, 3)) -> "NGramClassifier":
        """Train one model per language from an in-memory corpus."""
        models: dict[str, NGramModel] = {}
        for code, texts in corpus.items():
            model = NGramModel(language_code=code, n_values=n_values)
            for text in texts:
                model.update(text)
            models[code] = model
        return cls(models)

    @property
    def languages(self) -> tuple[str, ...]:
        return tuple(sorted(self._models))

    def scores(self, text: str) -> dict[str, float]:
        """Per-language average log-likelihood of ``text``.

        Grams are extracted once per distinct ``n_values`` configuration and
        shared across models via :meth:`NGramModel.score_grams`, instead of
        re-tokenising the text once per language.
        """
        by_n_values: dict[tuple[int, ...], Counter[str]] = {}
        scored: dict[str, float] = {}
        for code, model in self._models.items():
            grams = by_n_values.get(model.n_values)
            if grams is None:
                grams = by_n_values[model.n_values] = extract_ngrams(text, model.n_values)
            scored[code] = model.score_grams(grams)
        return scored

    def classify(self, text: str) -> str | None:
        """Return the best-scoring language code, or ``None`` for empty input.

        Ties break lexicographically by language code for determinism.
        """
        if not text.strip():
            return None
        scored = self.scores(text)
        best = max(sorted(scored), key=lambda code: scored[code])
        if scored[best] == float("-inf"):
            return None
        return best

    def confidence(self, text: str) -> tuple[str | None, float]:
        """Return ``(language, margin)`` where margin is the log-likelihood gap.

        The margin is the difference between the best and the second-best
        score; 0.0 when fewer than two models are available or the input is
        empty.  Callers can threshold on the margin to avoid committing to a
        language for highly ambiguous strings.
        """
        if not text.strip():
            return None, 0.0
        scored = self.scores(text)
        best = max(sorted(scored), key=lambda code: scored[code])
        if scored[best] == float("-inf"):
            return None, 0.0
        others = [score for code, score in scored.items() if code != best and score != float("-inf")]
        if not others:
            return best, 0.0
        return best, scored[best] - max(others)


# A tiny built-in English seed corpus.  The web generator's English lexicon is
# richer, but a standalone seed keeps this module import-safe and usable
# without the webgen subpackage (e.g. in the filtering rules, which only need
# to recognise common English UI words).
ENGLISH_SEED_TEXTS: tuple[str, ...] = (
    "the quick brown fox jumps over the lazy dog",
    "home about contact news sports business entertainment technology",
    "sign in register subscribe search menu close next previous read more",
    "privacy policy terms of service copyright all rights reserved",
    "breaking news weather forecast today latest updates photo gallery video",
    "add to cart checkout payment shipping delivery order track returns",
    "login logout password username email address phone number submit cancel",
    "download upload share like comment follow unfollow profile settings help",
)


def default_english_model() -> NGramModel:
    """An English n-gram model trained on the built-in seed corpus."""
    model = NGramModel(language_code="en")
    for text in ENGLISH_SEED_TEXTS:
        model.update(text)
    return model

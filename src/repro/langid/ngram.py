"""Character n-gram language models.

Script ranges cannot distinguish languages that share the Latin alphabet
(English vs. romanised Hindi vs. French boilerplate), nor can they separate
Japanese from Chinese when a snippet happens to contain only Han characters.
For those cases the library provides a small character n-gram classifier in
the style of Cavnar & Trenkle's rank-order profiles, trained on the built-in
lexicons of :mod:`repro.webgen.lexicon`.

The classifier is deliberately compact: the paper relies primarily on script
detection, and the n-gram model is only consulted for Latin-script
disambiguation and for the ablation benchmark comparing detection approaches.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping


def extract_ngrams(text: str, n_values: tuple[int, ...] = (1, 2, 3)) -> Counter[str]:
    """Extract padded character n-grams from ``text``.

    The text is lowercased and tokenised on whitespace; each token is padded
    with underscores so that word-initial and word-final n-grams are distinct
    from word-internal ones, which substantially improves short-string
    classification.
    """
    grams: Counter[str] = Counter()
    for token in text.lower().split():
        padded = f"_{token}_"
        for n in n_values:
            if len(padded) < n:
                continue
            for i in range(len(padded) - n + 1):
                grams[padded[i:i + n]] += 1
    return grams


@dataclass
class NGramModel:
    """A per-language n-gram frequency model with add-one smoothing.

    Attributes:
        language_code: Code of the language this model represents.
        counts: Raw n-gram counts accumulated from training text.
        total: Total number of n-grams observed (kept in sync with counts).
    """

    language_code: str
    counts: Counter[str] = field(default_factory=Counter)
    total: int = 0
    n_values: tuple[int, ...] = (1, 2, 3)

    def update(self, text: str) -> None:
        """Accumulate the n-grams of ``text`` into the model."""
        grams = extract_ngrams(text, self.n_values)
        self.counts.update(grams)
        self.total += sum(grams.values())

    def log_probability(self, gram: str) -> float:
        """Smoothed log-probability of a single n-gram under this model."""
        vocabulary = max(len(self.counts), 1)
        return math.log((self.counts.get(gram, 0) + 1) / (self.total + vocabulary))

    def score(self, text: str) -> float:
        """Average per-gram log-likelihood of ``text`` under this model.

        Averaging (rather than summing) makes scores comparable across texts
        of different lengths, which matters because accessibility strings are
        often very short.
        """
        grams = extract_ngrams(text, self.n_values)
        if not grams:
            return float("-inf")
        total = sum(grams.values())
        log_likelihood = sum(count * self.log_probability(gram) for gram, count in grams.items())
        return log_likelihood / total


class NGramClassifier:
    """Maximum-likelihood classifier over a set of :class:`NGramModel`.

    Typical use::

        classifier = NGramClassifier.train({
            "en": ["the quick brown fox", ...],
            "vi": ["xin chào thế giới", ...],
        })
        classifier.classify("hello world")   # -> "en"
    """

    def __init__(self, models: Mapping[str, NGramModel]) -> None:
        if not models:
            raise ValueError("NGramClassifier requires at least one model")
        self._models = dict(models)

    @classmethod
    def train(cls, corpus: Mapping[str, Iterable[str]],
              n_values: tuple[int, ...] = (1, 2, 3)) -> "NGramClassifier":
        """Train one model per language from an in-memory corpus."""
        models: dict[str, NGramModel] = {}
        for code, texts in corpus.items():
            model = NGramModel(language_code=code, n_values=n_values)
            for text in texts:
                model.update(text)
            models[code] = model
        return cls(models)

    @property
    def languages(self) -> tuple[str, ...]:
        return tuple(sorted(self._models))

    def scores(self, text: str) -> dict[str, float]:
        """Per-language average log-likelihood of ``text``."""
        return {code: model.score(text) for code, model in self._models.items()}

    def classify(self, text: str) -> str | None:
        """Return the best-scoring language code, or ``None`` for empty input.

        Ties break lexicographically by language code for determinism.
        """
        if not text.strip():
            return None
        scored = self.scores(text)
        best = max(sorted(scored), key=lambda code: scored[code])
        if scored[best] == float("-inf"):
            return None
        return best

    def confidence(self, text: str) -> tuple[str | None, float]:
        """Return ``(language, margin)`` where margin is the log-likelihood gap.

        The margin is the difference between the best and the second-best
        score; 0.0 when fewer than two models are available or the input is
        empty.  Callers can threshold on the margin to avoid committing to a
        language for highly ambiguous strings.
        """
        best = self.classify(text)
        if best is None:
            return None, 0.0
        scored = self.scores(text)
        others = [score for code, score in scored.items() if code != best and score != float("-inf")]
        if not others:
            return best, 0.0
        return best, scored[best] - max(others)


# A tiny built-in English seed corpus.  The web generator's English lexicon is
# richer, but a standalone seed keeps this module import-safe and usable
# without the webgen subpackage (e.g. in the filtering rules, which only need
# to recognise common English UI words).
ENGLISH_SEED_TEXTS: tuple[str, ...] = (
    "the quick brown fox jumps over the lazy dog",
    "home about contact news sports business entertainment technology",
    "sign in register subscribe search menu close next previous read more",
    "privacy policy terms of service copyright all rights reserved",
    "breaking news weather forecast today latest updates photo gallery video",
    "add to cart checkout payment shipping delivery order track returns",
    "login logout password username email address phone number submit cancel",
    "download upload share like comment follow unfollow profile settings help",
)


def default_english_model() -> NGramModel:
    """An English n-gram model trained on the built-in seed corpus."""
    model = NGramModel(language_code="en")
    for text in ENGLISH_SEED_TEXTS:
        model.update(text)
    return model

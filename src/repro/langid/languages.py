"""Language and country registry.

The paper starts from "a pool of 26 widely spoken non-Latin-script languages"
and narrows it to twelve language–country pairs using two inclusion criteria:

1. at least 10,000 websites with 50% or more visible textual content in the
   target language, and
2. inclusion in the CrUX dataset with sufficient traffic.

This module records the candidate pool, the final pairs (with the speaker
populations the paper cites) and the script mapping used by the detector.
The registry is consumed by :mod:`repro.core.selection`, which re-runs the
selection procedure over the synthetic web, and by the report generators that
label countries with their ISO-3166 alpha-2 code (``bd``, ``cn``, ...), the
identifiers the paper uses on its figure axes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.langid.scripts import Script


@dataclass(frozen=True)
class Language:
    """A natural language considered by the study.

    Attributes:
        code: BCP-47-ish lowercase identifier (``hi``, ``bn``, ``ar`` ...).
        name: English display name.
        scripts: Scripts in which the language is commonly written.  The
            first entry is the primary script used for detection.
        speakers_millions: Approximate global speaker population in millions,
            as cited by the paper (Section 2) or, for pool-only languages,
            by its reference [6].
        specific_chars: Characters that discriminate this language from other
            languages sharing the same primary script (the paper's
            Urdu-vs-Arabic refinement).
    """

    code: str
    name: str
    scripts: tuple[Script, ...]
    speakers_millions: float
    specific_chars: frozenset[str] = field(default_factory=frozenset)

    @property
    def primary_script(self) -> Script:
        return self.scripts[0]

    def is_cjk(self) -> bool:
        """True when the language is written in a space-less CJK script."""
        return self.primary_script.is_cjk()


@dataclass(frozen=True)
class LanguageCountryPair:
    """A (language, country) pair as used throughout the paper's figures.

    Attributes:
        country_code: ISO-3166 alpha-2 lowercase country code; this is the
            identifier the paper uses on figure axes (``bd``, ``cn``, ``dz``,
            ``eg``, ``gr``, ``hk``, ``il``, ``in``, ``jp``, ``kr``, ``ru``,
            ``th``).
        country_name: English country name.
        language: The target :class:`Language`.
        in_langcrux: Whether the pair survives the paper's inclusion criteria
            and is part of the final 12-pair LangCrUX dataset.
    """

    country_code: str
    country_name: str
    language: Language
    in_langcrux: bool = True


def _lang(code: str, name: str, scripts: tuple[Script, ...], speakers: float,
          specific: str = "") -> Language:
    return Language(
        code=code,
        name=name,
        scripts=scripts,
        speakers_millions=speakers,
        specific_chars=frozenset(specific),
    )


# The candidate pool.  Speaker counts for the twelve selected languages are
# the numbers quoted in Section 2 of the paper; the remaining pool members use
# commonly cited totals (they only matter for ordering in the selection step).
MANDARIN = _lang("zh", "Mandarin Chinese", (Script.HAN, Script.BOPOMOFO), 1200.0)
HINDI = _lang("hi", "Hindi", (Script.DEVANAGARI,), 609.0)
MSA = _lang("ar", "Modern Standard Arabic", (Script.ARABIC,), 335.0)
BANGLA = _lang("bn", "Bangla", (Script.BENGALI,), 284.0)
RUSSIAN = _lang("ru", "Russian", (Script.CYRILLIC,), 253.0)
JAPANESE = _lang("ja", "Japanese", (Script.HIRAGANA, Script.KATAKANA, Script.HAN), 126.0)
EGYPTIAN_ARABIC = _lang("arz", "Egyptian Arabic", (Script.ARABIC,), 119.0)
CANTONESE = _lang("yue", "Cantonese", (Script.HAN,), 85.5)
KOREAN = _lang("ko", "Korean", (Script.HANGUL,), 82.0)
THAI = _lang("th", "Thai", (Script.THAI,), 71.0)
GREEK = _lang("el", "Greek", (Script.GREEK,), 13.5)
HEBREW = _lang("he", "Hebrew", (Script.HEBREW,), 9.0)

URDU = _lang("ur", "Urdu", (Script.ARABIC,), 232.0, "ٹڈڑںھہۂۃےۓ")
TAMIL = _lang("ta", "Tamil", (Script.TAMIL,), 87.0)
TELUGU = _lang("te", "Telugu", (Script.TELUGU,), 96.0)
MARATHI = _lang("mr", "Marathi", (Script.DEVANAGARI,), 99.0)
AMHARIC = _lang("am", "Amharic", (Script.ETHIOPIC,), 60.0)
BURMESE = _lang("my", "Burmese", (Script.MYANMAR,), 43.0)
SINHALA = _lang("si", "Sinhala", (Script.SINHALA,), 17.0)
GEORGIAN = _lang("ka", "Georgian", (Script.GEORGIAN,), 3.7)
PUNJABI = _lang("pa", "Punjabi", (Script.GURMUKHI,), 113.0)
GUJARATI = _lang("gu", "Gujarati", (Script.GUJARATI,), 62.0)
KANNADA = _lang("kn", "Kannada", (Script.KANNADA,), 59.0)
MALAYALAM = _lang("ml", "Malayalam", (Script.MALAYALAM,), 37.0)
PERSIAN = _lang("fa", "Persian", (Script.ARABIC,), 79.0, "پچژگ")
VIETNAMESE_LATIN = _lang("vi", "Vietnamese", (Script.LATIN,), 86.0)
ENGLISH = _lang("en", "English", (Script.LATIN,), 1500.0)

#: The candidate pool of non-Latin-script languages (the paper's "pool of 26",
#: here the members that matter for the selection procedure plus the later
#: additions Hebrew, Sinhala, Greek and Burmese).
LANGUAGE_POOL: tuple[Language, ...] = (
    MANDARIN, HINDI, MSA, BANGLA, RUSSIAN, JAPANESE, EGYPTIAN_ARABIC,
    CANTONESE, KOREAN, THAI, GREEK, HEBREW, URDU, TAMIL, TELUGU, MARATHI,
    AMHARIC, BURMESE, SINHALA, GEORGIAN, PUNJABI, GUJARATI, KANNADA,
    MALAYALAM, PERSIAN,
)

#: All languages known to the library, including English which is needed for
#: the native/English/mixed classification.
LANGUAGES: dict[str, Language] = {lang.code: lang for lang in LANGUAGE_POOL + (ENGLISH, VIETNAMESE_LATIN)}


#: The twelve language–country pairs forming LangCrUX (Section 2).
LANGCRUX_PAIRS: tuple[LanguageCountryPair, ...] = (
    LanguageCountryPair("cn", "China", MANDARIN),
    LanguageCountryPair("in", "India", HINDI),
    LanguageCountryPair("dz", "Algeria", MSA),
    LanguageCountryPair("bd", "Bangladesh", BANGLA),
    LanguageCountryPair("ru", "Russia", RUSSIAN),
    LanguageCountryPair("jp", "Japan", JAPANESE),
    LanguageCountryPair("eg", "Egypt", EGYPTIAN_ARABIC),
    LanguageCountryPair("hk", "Hong Kong", CANTONESE),
    LanguageCountryPair("kr", "South Korea", KOREAN),
    LanguageCountryPair("th", "Thailand", THAI),
    LanguageCountryPair("gr", "Greece", GREEK),
    LanguageCountryPair("il", "Israel", HEBREW),
)

#: Candidate pairs that were considered but excluded because they fall short
#: of the 10,000-website threshold (Section 2 mentions Tamil, Telugu, Sinhala
#: and Georgian explicitly).
EXCLUDED_PAIRS: tuple[LanguageCountryPair, ...] = (
    LanguageCountryPair("in-ta", "India (Tamil)", TAMIL, in_langcrux=False),
    LanguageCountryPair("in-te", "India (Telugu)", TELUGU, in_langcrux=False),
    LanguageCountryPair("lk", "Sri Lanka", SINHALA, in_langcrux=False),
    LanguageCountryPair("ge", "Georgia", GEORGIAN, in_langcrux=False),
    LanguageCountryPair("pk", "Pakistan", URDU, in_langcrux=False),
    LanguageCountryPair("et", "Ethiopia", AMHARIC, in_langcrux=False),
    LanguageCountryPair("mm", "Myanmar", BURMESE, in_langcrux=False),
)

_PAIR_INDEX: dict[str, LanguageCountryPair] = {
    pair.country_code: pair for pair in LANGCRUX_PAIRS + EXCLUDED_PAIRS
}


def get_language(code: str) -> Language:
    """Look up a language by its code, raising ``KeyError`` when unknown."""
    return LANGUAGES[code]


def get_pair(country_code: str) -> LanguageCountryPair:
    """Look up a language–country pair by its country code."""
    return _PAIR_INDEX[country_code]


def langcrux_country_codes() -> tuple[str, ...]:
    """Country codes of the final 12 LangCrUX pairs, in paper order."""
    return tuple(pair.country_code for pair in LANGCRUX_PAIRS)


def total_speakers_millions(pairs: Iterable[LanguageCountryPair] = LANGCRUX_PAIRS) -> float:
    """Total speaker population of the selected languages, in millions.

    The paper reports roughly 3.19 billion speakers representing about 39.5%
    of the global population for the 12 selected languages.
    """
    return sum(pair.language.speakers_millions for pair in pairs)


def languages_for_script(script: Script) -> tuple[Language, ...]:
    """All registered languages whose primary script is ``script``."""
    return tuple(lang for lang in LANGUAGES.values() if lang.primary_script is script)

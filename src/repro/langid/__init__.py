"""Language identification substrate.

The paper validates language presence with "a Unicode-based heuristic that
matches visible text content against script-specific character ranges"
(Section 2, *Website Selection*).  This subpackage implements that heuristic
from scratch:

* :mod:`repro.langid.scripts` — Unicode script ranges and per-character
  script classification.
* :mod:`repro.langid.languages` — the registry of candidate languages (the
  pool of 26 plus the final 12 language–country pairs), their scripts and
  speaker populations.
* :mod:`repro.langid.detector` — script-proportion detection over a text,
  with the language-specific refinements the paper mentions (e.g. separating
  Urdu from Arabic via additional characters).
* :mod:`repro.langid.ngram` — a character n-gram classifier used to
  disambiguate Latin-script text (English vs. romanised content).
* :mod:`repro.langid.classify` — the native / English / mixed classification
  used for accessibility texts (Figure 4).
"""

from repro.langid.scripts import Script, script_of, script_histogram
from repro.langid.languages import Language, LANGUAGES, LANGCRUX_PAIRS, LanguageCountryPair
from repro.langid.detector import ScriptDetector, LanguageShare, detect_language_mix
from repro.langid.ngram import NGramModel, NGramClassifier
from repro.langid.classify import TextLanguageClass, classify_text_language

__all__ = [
    "Script",
    "script_of",
    "script_histogram",
    "Language",
    "LANGUAGES",
    "LANGCRUX_PAIRS",
    "LanguageCountryPair",
    "ScriptDetector",
    "LanguageShare",
    "detect_language_mix",
    "NGramModel",
    "NGramClassifier",
    "TextLanguageClass",
    "classify_text_language",
]

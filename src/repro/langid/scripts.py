"""Unicode script classification.

The paper's primary language-detection mechanism is a "Unicode-based heuristic
that matches visible text content against script-specific character ranges
(e.g., Devanagari for Hindi, Hangul for Korean, and Cyrillic for Russian)".
This module implements that heuristic: it assigns a :class:`Script` to every
character and provides aggregate script histograms over strings.

The ranges below cover the scripts of the paper's candidate-language pool
(26 languages) plus Latin and a handful of auxiliary scripts so that noisy
real-world text (emoji, symbols, digits) is classified consistently rather
than being silently dropped.

Only the code-point ranges relevant to script identity are listed; the goal is
not full Unicode property coverage but a faithful re-implementation of the
paper's detection heuristic.
"""

from __future__ import annotations

import enum
import unicodedata
from bisect import bisect_right
from collections import Counter
from typing import Iterable, Mapping


class Script(str, enum.Enum):
    """Writing systems recognised by the detector.

    The string values are stable identifiers used in serialized datasets and
    reports, so they must not be renamed once a dataset has been written.
    """

    LATIN = "latin"
    CYRILLIC = "cyrillic"
    GREEK = "greek"
    ARABIC = "arabic"
    HEBREW = "hebrew"
    DEVANAGARI = "devanagari"
    BENGALI = "bengali"
    GURMUKHI = "gurmukhi"
    GUJARATI = "gujarati"
    ORIYA = "oriya"
    TAMIL = "tamil"
    TELUGU = "telugu"
    KANNADA = "kannada"
    MALAYALAM = "malayalam"
    SINHALA = "sinhala"
    THAI = "thai"
    LAO = "lao"
    MYANMAR = "myanmar"
    KHMER = "khmer"
    GEORGIAN = "georgian"
    ARMENIAN = "armenian"
    ETHIOPIC = "ethiopic"
    HAN = "han"
    HIRAGANA = "hiragana"
    KATAKANA = "katakana"
    HANGUL = "hangul"
    BOPOMOFO = "bopomofo"
    DIGIT = "digit"
    PUNCTUATION = "punctuation"
    SYMBOL = "symbol"
    EMOJI = "emoji"
    WHITESPACE = "whitespace"
    OTHER = "other"

    def is_textual(self) -> bool:
        """Return ``True`` when the script carries linguistic content.

        Digits, punctuation, symbols, emoji and whitespace are "common"
        characters: they appear in text of any language and therefore do not
        count toward the share of any particular language.
        """
        return self not in _NON_TEXTUAL

    def is_cjk(self) -> bool:
        """Return ``True`` for scripts written without inter-word spaces.

        The paper's filtering rules (Appendix H) use a different
        "too short" threshold for CJK scripts (1 character instead of 3),
        which is why the distinction matters beyond detection.
        """
        return self in _CJK_SCRIPTS


_NON_TEXTUAL = {
    Script.DIGIT,
    Script.PUNCTUATION,
    Script.SYMBOL,
    Script.EMOJI,
    Script.WHITESPACE,
    Script.OTHER,
}

_CJK_SCRIPTS = {Script.HAN, Script.HIRAGANA, Script.KATAKANA, Script.HANGUL, Script.BOPOMOFO}


# Each entry is (start, end_inclusive, Script).  Ranges are kept sorted by
# start so that lookup can binary-search.  Emoji ranges are listed before the
# generic symbol fall-through so they win.
_RANGES: list[tuple[int, int, Script]] = [
    # Basic Latin letters.
    (0x0041, 0x005A, Script.LATIN),
    (0x0061, 0x007A, Script.LATIN),
    # Latin-1 supplement letters and Latin extended blocks.
    (0x00C0, 0x024F, Script.LATIN),
    (0x1E00, 0x1EFF, Script.LATIN),
    (0x2C60, 0x2C7F, Script.LATIN),
    (0xA720, 0xA7FF, Script.LATIN),
    # Greek and Coptic, Greek extended.
    (0x0370, 0x03FF, Script.GREEK),
    (0x1F00, 0x1FFF, Script.GREEK),
    # Cyrillic and supplements.
    (0x0400, 0x04FF, Script.CYRILLIC),
    (0x0500, 0x052F, Script.CYRILLIC),
    (0x2DE0, 0x2DFF, Script.CYRILLIC),
    (0xA640, 0xA69F, Script.CYRILLIC),
    # Armenian.
    (0x0530, 0x058F, Script.ARMENIAN),
    # Hebrew.
    (0x0590, 0x05FF, Script.HEBREW),
    (0xFB1D, 0xFB4F, Script.HEBREW),
    # Arabic (plus presentation forms and supplement).
    (0x0600, 0x06FF, Script.ARABIC),
    (0x0750, 0x077F, Script.ARABIC),
    (0x08A0, 0x08FF, Script.ARABIC),
    (0xFB50, 0xFDFF, Script.ARABIC),
    (0xFE70, 0xFEFF, Script.ARABIC),
    # Indic scripts.
    (0x0900, 0x097F, Script.DEVANAGARI),
    (0x0980, 0x09FF, Script.BENGALI),
    (0x0A00, 0x0A7F, Script.GURMUKHI),
    (0x0A80, 0x0AFF, Script.GUJARATI),
    (0x0B00, 0x0B7F, Script.ORIYA),
    (0x0B80, 0x0BFF, Script.TAMIL),
    (0x0C00, 0x0C7F, Script.TELUGU),
    (0x0C80, 0x0CFF, Script.KANNADA),
    (0x0D00, 0x0D7F, Script.MALAYALAM),
    (0x0D80, 0x0DFF, Script.SINHALA),
    # Devanagari extended.
    (0xA8E0, 0xA8FF, Script.DEVANAGARI),
    # South-east Asian scripts.
    (0x0E00, 0x0E7F, Script.THAI),
    (0x0E80, 0x0EFF, Script.LAO),
    (0x1000, 0x109F, Script.MYANMAR),
    (0xAA60, 0xAA7F, Script.MYANMAR),
    (0x1780, 0x17FF, Script.KHMER),
    # Georgian.
    (0x10A0, 0x10FF, Script.GEORGIAN),
    (0x2D00, 0x2D2F, Script.GEORGIAN),
    # Ethiopic (Amharic).
    (0x1200, 0x137F, Script.ETHIOPIC),
    (0x1380, 0x139F, Script.ETHIOPIC),
    (0x2D80, 0x2DDF, Script.ETHIOPIC),
    # Hangul.
    (0x1100, 0x11FF, Script.HANGUL),
    (0x3130, 0x318F, Script.HANGUL),
    (0xA960, 0xA97F, Script.HANGUL),
    (0xAC00, 0xD7A3, Script.HANGUL),
    (0xD7B0, 0xD7FF, Script.HANGUL),
    # Japanese kana.
    (0x3040, 0x309F, Script.HIRAGANA),
    (0x30A0, 0x30FF, Script.KATAKANA),
    (0x31F0, 0x31FF, Script.KATAKANA),
    (0xFF66, 0xFF9D, Script.KATAKANA),
    # Bopomofo.
    (0x3100, 0x312F, Script.BOPOMOFO),
    # Han (CJK ideographs) — unified, extension A, compatibility.
    (0x3400, 0x4DBF, Script.HAN),
    (0x4E00, 0x9FFF, Script.HAN),
    (0xF900, 0xFAFF, Script.HAN),
    (0x20000, 0x2A6DF, Script.HAN),
    (0x2A700, 0x2EBEF, Script.HAN),
    # Emoji and pictographs.
    (0x1F300, 0x1F5FF, Script.EMOJI),
    (0x1F600, 0x1F64F, Script.EMOJI),
    (0x1F680, 0x1F6FF, Script.EMOJI),
    (0x1F900, 0x1F9FF, Script.EMOJI),
    (0x1FA70, 0x1FAFF, Script.EMOJI),
    (0x2600, 0x26FF, Script.EMOJI),
    (0x2700, 0x27BF, Script.EMOJI),
    (0xFE0F, 0xFE0F, Script.EMOJI),
    (0x1F1E6, 0x1F1FF, Script.EMOJI),
]

_RANGES.sort(key=lambda entry: entry[0])
_STARTS = [entry[0] for entry in _RANGES]

# Characters that are shared across Arabic-script languages but that, when
# present, indicate a specific language.  The paper notes: "For overlapping
# scripts, such as Arabic and Urdu, we include additional language-specific
# characters to improve precision."
URDU_SPECIFIC_CHARS = frozenset("ٹڈڑںھہۂۃےۓڻ")
PERSIAN_SPECIFIC_CHARS = frozenset("پچژگ")
# Characters specific to the Arabic language presentation of Modern Standard
# Arabic text (i.e. frequently used in MSA but absent from Urdu orthography).
ARABIC_TATWEEL = "ـ"


def _classify(char: str) -> Script:
    """Range/category classification of one character (no memoisation)."""
    codepoint = ord(char)
    index = bisect_right(_STARTS, codepoint) - 1
    if index >= 0:
        start, end, script = _RANGES[index]
        if start <= codepoint <= end:
            return script
    if char.isspace():
        return Script.WHITESPACE
    category = unicodedata.category(char)
    if category == "Nd":
        return Script.DIGIT
    if category.startswith("P"):
        return Script.PUNCTUATION
    if category.startswith("S"):
        return Script.SYMBOL
    if category.startswith("N"):
        return Script.DIGIT
    return Script.OTHER


# Memoised codepoint→script lookup.  Real text draws from a small set of
# distinct characters, so after warm-up every classification is one dict get
# (the bisect + unicodedata fallback runs once per distinct character for the
# lifetime of the process).  Plain dict get/set is GIL-atomic and the cached
# value is deterministic, so concurrent shard threads can share the cache; a
# racing fill at worst recomputes the same value.  Bounded to keep adversarial
# input (e.g. fuzzing across the whole codepoint space) from growing it
# without limit.
_SCRIPT_CACHE: dict[str, Script] = {}
_SCRIPT_CACHE_MAX = 0x20000


def script_of(char: str) -> Script:
    """Classify a single character into a :class:`Script`.

    ``char`` must be a one-character string.  Characters outside every known
    range fall back to Unicode categories: decimal digits map to
    :attr:`Script.DIGIT`, whitespace to :attr:`Script.WHITESPACE`,
    punctuation/symbol categories to their respective scripts and anything
    else to :attr:`Script.OTHER`.
    """
    if len(char) != 1:
        raise ValueError(f"script_of expects a single character, got {char!r}")
    script = _SCRIPT_CACHE.get(char)
    if script is None:
        if len(_SCRIPT_CACHE) >= _SCRIPT_CACHE_MAX:
            _SCRIPT_CACHE.clear()
        script = _SCRIPT_CACHE[char] = _classify(char)
    return script


def _fill_cache(text: str) -> dict[str, Script]:
    """Ensure every distinct character of ``text`` is in the memo; return it."""
    cache = _SCRIPT_CACHE
    missing = [char for char in set(text) if char not in cache]
    if missing:
        if len(cache) + len(missing) > _SCRIPT_CACHE_MAX:
            cache.clear()
        for char in missing:
            cache[char] = _classify(char)
    return cache


def script_histogram(text: str, *, textual_only: bool = False) -> Counter[Script]:
    """Count characters of ``text`` per script.

    When ``textual_only`` is true, common characters (digits, punctuation,
    symbols, emoji, whitespace) are excluded, which is the denominator used
    for the paper's "50% or more visible textual content in the target
    language" inclusion criterion.

    Fast path: the per-character pass runs entirely in C —
    ``Counter(map(cache.__getitem__, text))`` — instead of one Python-level
    bisect per character.  A ``KeyError`` (some character not memoised yet)
    falls back to pre-filling the memo for the distinct characters and
    retrying, so warm calls do zero Python-level per-character work.
    Pinned equal to :func:`script_histogram_naive` by the parity suite.
    """
    try:
        counts = Counter(map(_SCRIPT_CACHE.__getitem__, text))
    except KeyError:
        counts = Counter(map(_fill_cache(text).__getitem__, text))
    if textual_only:
        for script in _NON_TEXTUAL:
            counts.pop(script, None)
    return counts


def script_histogram_naive(text: str, *, textual_only: bool = False) -> Counter[Script]:
    """Reference implementation of :func:`script_histogram`.

    One range classification per character, as the function was originally
    written.  Deliberately bypasses the memo so the parity suite would catch
    a corrupted cache entry, not just a wrong counting pass.
    """
    counts: Counter[Script] = Counter()
    for char in text:
        script = _classify(char)
        if textual_only and not script.is_textual():
            continue
        counts[script] += 1
    return counts


def textual_length(text: str) -> int:
    """Number of characters in ``text`` that belong to a textual script."""
    try:
        counts = Counter(map(_SCRIPT_CACHE.__getitem__, text))
    except KeyError:
        counts = Counter(map(_fill_cache(text).__getitem__, text))
    return len(text) - sum(counts[script] for script in _NON_TEXTUAL)


def textual_length_naive(text: str) -> int:
    """Reference implementation of :func:`textual_length` (per-char loop,
    memo bypassed — see :func:`script_histogram_naive`)."""
    return sum(1 for char in text if _classify(char).is_textual())


def script_shares(text: str) -> dict[Script, float]:
    """Return the proportion of textual characters per script.

    The proportions sum to 1.0 over textual characters; an empty or fully
    non-textual string yields an empty mapping.
    """
    counts = script_histogram(text, textual_only=True)
    total = sum(counts.values())
    if total == 0:
        return {}
    return {script: count / total for script, count in counts.items()}


def dominant_script(text: str) -> Script | None:
    """Return the textual script with the largest share, or ``None``.

    Ties are broken deterministically by script identifier so that detection
    results are reproducible across runs.
    """
    shares = script_shares(text)
    if not shares:
        return None
    return max(sorted(shares, key=lambda s: s.value), key=lambda s: shares[s])


def contains_script(text: str, script: Script) -> bool:
    """Return ``True`` when at least one character of ``text`` uses ``script``."""
    return any(script_of(char) is script for char in text)


def is_emoji_only(text: str) -> bool:
    """Return ``True`` when the non-whitespace content of ``text`` is only emoji.

    Used by the filtering pipeline's *Emoji* discard rule (Appendix H): emoji
    are discarded because screen readers often fail to interpret them.
    Variation selectors and zero-width joiners are tolerated because they are
    part of emoji sequences.
    """
    stripped = [char for char in text if not char.isspace()]
    if not stripped:
        return False
    tolerated = {"‍", "︎", "️"}
    sawemoji = False
    for index, char in enumerate(stripped):
        if char in tolerated:
            continue
        script = script_of(char)
        if script is Script.EMOJI:
            sawemoji = True
            continue
        # Symbols rendered with an emoji variation selector (e.g. "▶️") are
        # emoji presentations of base symbols.
        next_char = stripped[index + 1] if index + 1 < len(stripped) else ""
        if script is Script.SYMBOL and next_char == "️":
            sawemoji = True
            continue
        return False
    return sawemoji


def share_of_scripts(text: str, scripts: Iterable[Script]) -> float:
    """Fraction of textual characters of ``text`` drawn from ``scripts``."""
    wanted = set(scripts)
    counts = script_histogram(text, textual_only=True)
    total = sum(counts.values())
    if total == 0:
        return 0.0
    return sum(count for script, count in counts.items() if script in wanted) / total


def merge_histograms(histograms: Iterable[Mapping[Script, int]]) -> Counter[Script]:
    """Sum several script histograms into one, e.g. across pages of a site."""
    merged: Counter[Script] = Counter()
    for histogram in histograms:
        merged.update(histogram)
    return merged

"""Native / English / mixed classification of accessibility texts.

Figure 4 of the paper reports, per country, the proportion of informative
accessibility texts written in the native language, in English, or in a mix
of both.  This module implements that three-way classification for short
strings such as ``alt`` attributes, ``aria-label`` values and form labels.

The classification is deliberately simple and mirrors the paper's character
based methodology: a text is *native* when essentially all of its textual
characters are in the target language's script, *english* when essentially
all are Latin, and *mixed* when both contribute a non-trivial share.  Texts
whose characters belong predominantly to a third script are reported as
*other*, and texts with no textual characters at all as *empty*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.langid.detector import LanguageShare, cached_detector
from repro.langid.languages import Language


class TextLanguageClass(str, enum.Enum):
    """Outcome of the native/English/mixed classification."""

    NATIVE = "native"
    ENGLISH = "english"
    MIXED = "mixed"
    OTHER = "other"
    EMPTY = "empty"


@dataclass(frozen=True)
class ClassificationThresholds:
    """Tunable thresholds of the classifier.

    Attributes:
        dominance: Minimum share for a single language to claim the text
            outright (default 0.9, i.e. "essentially all").
        mix_floor: Minimum share each of native and English must reach for
            the text to count as mixed (default 0.1); below this the minority
            script is treated as incidental (e.g. a single Latin brand name
            inside an otherwise native label).
    """

    dominance: float = 0.90
    mix_floor: float = 0.10


DEFAULT_THRESHOLDS = ClassificationThresholds()


def classify_share(share: LanguageShare,
                   thresholds: ClassificationThresholds = DEFAULT_THRESHOLDS) -> TextLanguageClass:
    """Classify a precomputed :class:`LanguageShare`."""
    if share.is_empty:
        return TextLanguageClass.EMPTY
    if share.native >= thresholds.dominance:
        return TextLanguageClass.NATIVE
    if share.english >= thresholds.dominance:
        return TextLanguageClass.ENGLISH
    if share.other > max(share.native, share.english):
        return TextLanguageClass.OTHER
    if share.native >= thresholds.mix_floor and share.english >= thresholds.mix_floor:
        return TextLanguageClass.MIXED
    # Neither language dominates and the minority share is incidental:
    # attribute the text to whichever of native/English is larger.
    if share.native >= share.english:
        return TextLanguageClass.NATIVE
    return TextLanguageClass.ENGLISH


def classify_text_language(text: str, language: Language | str,
                           thresholds: ClassificationThresholds = DEFAULT_THRESHOLDS
                           ) -> TextLanguageClass:
    """Classify ``text`` as native / english / mixed for the target ``language``.

    This is the per-string primitive behind Figure 4 (language distribution
    of informative accessibility texts) and behind the Kizuki audit check.
    """
    share = cached_detector(language).share(text)
    return classify_share(share, thresholds)


def is_language_consistent(accessibility_text: str, page_language: Language | str,
                           page_native_share: float,
                           thresholds: ClassificationThresholds = DEFAULT_THRESHOLDS) -> bool:
    """Decide whether an accessibility text matches the page's visible language.

    Kizuki's rule: when the page's visible content is predominantly in the
    native language (``page_native_share`` at or above 50%), accessibility
    text should contain the native language too — either fully native or
    mixed.  For pages whose visible content is not predominantly native, any
    non-empty text is considered consistent (the base Lighthouse behaviour).

    Args:
        accessibility_text: The candidate ``alt``/label text.
        page_language: The country's target language.
        page_native_share: Fraction of the page's visible text in the native
            language.
        thresholds: Classification thresholds.

    Returns:
        ``True`` when the text is consistent with the visible language.
    """
    if page_native_share < 0.5:
        return bool(accessibility_text.strip())
    outcome = classify_text_language(accessibility_text, page_language, thresholds)
    return outcome in (TextLanguageClass.NATIVE, TextLanguageClass.MIXED)

"""Synthetic website generation.

A :class:`SyntheticSite` models one origin of the synthetic web: a domain
with a CrUX-style popularity rank, a behaviour profile sampled from its
country's :class:`~repro.webgen.profiles.CountryProfile`, and one or more
pages in up to two variants:

``localized``
    The version served to clients whose vantage point is inside the country
    (what the paper crawls through country VPNs).
``global``
    An English-leaning version served to out-of-country clients, when the
    site localizes by IP at all.  The existence of this variant is what makes
    VPN-based crawling matter (Section 2, *Data Collection*), and the
    vantage-point ablation benchmark quantifies it.

Page HTML is generated lazily and deterministically: the content of a page
depends only on the site's seed, the page path and the variant, so repeated
crawls observe identical content regardless of request order.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, replace

from repro.webgen.pagegen import PageGenerator, PageSpec
from repro.webgen.profiles import CountryProfile, ELEMENT_PROFILES, ElementProfile, get_profile


def sample_site_rate(mean: float, rng: random.Random, *, concentration: float = 0.5) -> float:
    """Draw a per-site rate whose population mean is ``mean``.

    Table 2 of the paper shows strongly bimodal per-site statistics (e.g.
    ``image-alt`` missing: median 1.89% but mean 17.12% with a 28.9% standard
    deviation): most sites are consistently good or consistently bad rather
    than uniformly mediocre.  A low-concentration Beta distribution with the
    target mean reproduces that U-shape, so per-site rates cluster near 0 and
    1 while the across-site average stays calibrated to the paper's mean.
    """
    mean = min(max(mean, 1e-4), 1 - 1e-4)
    alpha = mean * concentration
    beta = (1.0 - mean) * concentration
    return rng.betavariate(alpha, beta)


def stable_seed(*parts: object) -> int:
    """Derive a deterministic 32-bit seed from arbitrary parts.

    Python's builtin ``hash`` is randomized per process for strings, so the
    generator derives its per-site and per-page seeds from a SHA-256 digest
    instead; the same inputs always yield the same synthetic web.
    """
    digest = hashlib.sha256("\x1f".join(str(part) for part in parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


#: Fraction of candidate sites whose visible content falls below the paper's
#: 50% native-language threshold; these exercise the replacement step of the
#: website-selection procedure.
BELOW_THRESHOLD_RATE = 0.12

#: Variant identifiers.
LOCALIZED = "localized"
GLOBAL = "global"


@dataclass
class SyntheticSite:
    """One synthetic website.

    Attributes:
        domain: Fully qualified domain name, unique across the synthetic web.
        country_code: The country whose CrUX list ranks this site.
        language_code: The country's target language.
        rank: Global CrUX-style popularity rank (1 = most popular).
        visible_native_share: Fraction of visible text in the native language
            for the localized variant.
        a11y_language_weights: Site-level language mix of informative
            accessibility text (keys ``native`` / ``english`` / ``mixed``).
        uninformative_rate: Site-level probability of uninformative text.
        declare_lang: Value of the ``<html lang>`` attribute on the localized
            variant (often ``en`` or missing even on native-language pages —
            part of the metadata-neglect phenomenon).
        localizes_by_ip: Whether out-of-country clients receive the global
            (English-leaning) variant.
        blocks_vpn: Whether the site detects and refuses VPN/proxy traffic,
            triggering replacement during dataset construction.
        page_paths: Paths of the site's pages ("/" is always present).
        seed: Deterministic per-site seed used for lazy page generation.
        element_rates: Per-site (missing, empty) rates per element type; the
            across-site means follow Table 2 while individual sites are
            either consistently annotated or consistently not (see
            :func:`sample_site_rate`).
        fallback_text_rate: Probability that the site's interactive elements
            carry visible inner text for screen readers to fall back to.
        robots_txt: Content of the site's ``/robots.txt`` (``None`` when the
            site serves none, which is the common case); lets the crawler's
            robots handling and crawl-delay politeness be exercised end to
            end.
    """

    domain: str
    country_code: str
    language_code: str
    rank: int
    visible_native_share: float
    a11y_language_weights: dict[str, float]
    uninformative_rate: float
    declare_lang: str | None
    localizes_by_ip: bool
    blocks_vpn: bool
    page_paths: tuple[str, ...]
    seed: int
    element_rates: dict[str, tuple[float, float]] = field(default_factory=dict)
    fallback_text_rate: float = 0.9
    robots_txt: str | None = None
    _page_cache: dict[tuple[str, str], str] = field(default_factory=dict, repr=False)

    @property
    def url(self) -> str:
        return f"https://{self.domain}/"

    def meets_language_threshold(self) -> bool:
        """Whether the site was generated to satisfy the 50% criterion.

        The pipeline re-measures this from the crawled HTML; the flag exists
        for tests that validate the generator itself.
        """
        return self.visible_native_share >= 0.5

    # -- page generation -----------------------------------------------------

    def _site_element_profiles(self) -> dict[str, ElementProfile]:
        """Element profiles with this site's own missing/empty rates."""
        profiles: dict[str, ElementProfile] = {}
        for element_id, profile in ELEMENT_PROFILES.items():
            rates = self.element_rates.get(element_id)
            if rates is None:
                profiles[element_id] = profile
            else:
                missing, empty = rates
                profiles[element_id] = replace(profile, missing_rate=missing, empty_rate=empty)
        return profiles

    def _spec_for_variant(self, variant: str, profile: CountryProfile) -> PageSpec:
        element_profiles = self._site_element_profiles()
        if variant == GLOBAL:
            return PageSpec(
                language_code=self.language_code,
                visible_native_share=min(0.15, self.visible_native_share),
                a11y_language_weights={"native": 0.02, "english": 0.93, "mixed": 0.05},
                uninformative_rate=self.uninformative_rate,
                discard_mix=dict(profile.discard_mix),
                declare_lang="en",
                fallback_text_rate=self.fallback_text_rate,
                element_profiles=element_profiles,
            )
        return PageSpec(
            language_code=self.language_code,
            visible_native_share=self.visible_native_share,
            a11y_language_weights=dict(self.a11y_language_weights),
            uninformative_rate=self.uninformative_rate,
            discard_mix=dict(profile.discard_mix),
            declare_lang=self.declare_lang,
            fallback_text_rate=self.fallback_text_rate,
            element_profiles=element_profiles,
        )

    def page_html(self, path: str = "/", variant: str = LOCALIZED) -> str:
        """HTML of the page at ``path`` for the given ``variant``.

        Raises:
            KeyError: When ``path`` is not one of the site's pages.
            ValueError: For an unknown variant.
        """
        if path not in self.page_paths:
            raise KeyError(f"{self.domain} has no page {path!r}")
        if variant not in (LOCALIZED, GLOBAL):
            raise ValueError(f"unknown variant {variant!r}")
        cache_key = (path, variant)
        if cache_key not in self._page_cache:
            profile = get_profile(self.country_code)
            spec = self._spec_for_variant(variant, profile)
            page_seed = stable_seed(self.seed, path, variant)
            generator = PageGenerator(spec, random.Random(page_seed))
            url = f"https://{self.domain}{path}"
            self._page_cache[cache_key] = generator.generate_html(url=url)
        return self._page_cache[cache_key]

    def clear_page_cache(self) -> None:
        """Drop the cached page HTML; pages regenerate on demand.

        Generation is seeded per ``(path, variant)``, so a regenerated page
        is byte-identical to the evicted one — eviction is purely a memory
        release.  The pipeline calls this once a site's crawl window is
        merged: a crawled site is never fetched again, so keeping its pages
        would grow the web's resident size with every origin visited.
        """
        self._page_cache.clear()


class SiteGenerator:
    """Generates the sites of one country according to its profile."""

    def __init__(self, profile: CountryProfile, *, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed
        self._rng = random.Random(stable_seed(seed, profile.country_code))

    # -- sampling helpers ------------------------------------------------------

    def _sample_rank(self) -> int:
        rank = 10 ** self._rng.gauss(self.profile.rank_log10_mean, self.profile.rank_log10_std)
        return max(1, min(int(rank), 2_000_000))

    def _sample_visible_share(self, below_threshold: bool) -> float:
        if below_threshold:
            return self._rng.uniform(0.05, 0.45)
        share = self._rng.gauss(self.profile.visible_native_mean, self.profile.visible_native_std)
        return max(0.5, min(share, 0.99))

    def _sample_a11y_weights(self, low_native_site: bool) -> dict[str, float]:
        if low_native_site:
            return {"native": 0.02, "english": 0.90, "mixed": 0.08}
        profile = self.profile
        low_rate = profile.low_native_a11y_site_rate
        # Remove the low-native sites' contribution from the country-level
        # aggregate so that the mixture of both site kinds lands near the
        # Figure 4 targets.
        remaining = max(1.0 - low_rate, 1e-6)
        native = max((profile.a11y_native_rate - low_rate * 0.02) / remaining, 0.02)
        english = max((profile.a11y_english_rate - low_rate * 0.90) / remaining, 0.02)
        mixed = max((profile.a11y_mixed_rate - low_rate * 0.08) / remaining, 0.02)
        # Per-site jitter so that sites differ from one another.
        native *= self._rng.uniform(0.6, 1.4)
        english *= self._rng.uniform(0.6, 1.4)
        mixed *= self._rng.uniform(0.6, 1.4)
        total = native + english + mixed
        return {"native": native / total, "english": english / total, "mixed": mixed / total}

    def _sample_declared_lang(self) -> str | None:
        # Declared language metadata is itself frequently wrong or missing on
        # multilingual pages: many sites declare "en" or nothing at all.
        roll = self._rng.random()
        if roll < 0.35:
            return None
        if roll < 0.65:
            return "en"
        return self.profile.language_code

    def _sample_robots_txt(self) -> str | None:
        """Most sites serve no robots.txt; some publish standard rules."""
        roll = self._rng.random()
        if roll < 0.75:
            return None
        if roll < 0.95:
            return ("User-agent: *\n"
                    "Disallow: /admin/\n"
                    "Disallow: /private/\n"
                    f"Crawl-delay: {self._rng.choice([1, 2, 5])}\n")
        # A small minority disallow everything for unknown agents; the
        # selection procedure treats them like unreachable sites and replaces
        # them with the next candidate.
        return "User-agent: *\nDisallow: /\n"

    def _domain(self, index: int) -> str:
        tld_by_country = {
            "bd": "com.bd", "cn": "com.cn", "dz": "dz", "eg": "com.eg", "gr": "gr",
            "hk": "com.hk", "il": "co.il", "in": "co.in", "jp": "co.jp", "kr": "co.kr",
            "ru": "ru", "th": "co.th",
        }
        tld = tld_by_country.get(self.profile.country_code, "com")
        roll = self._rng.random()
        if roll < 0.7:
            return f"site{index:05d}.{self.profile.country_code}.{tld}"
        if roll < 0.9:
            return f"news{index:05d}.{tld}"
        return f"portal{index:05d}.gov.{tld}"

    # -- public API --------------------------------------------------------------

    def generate_site(self, index: int) -> SyntheticSite:
        """Generate the ``index``-th candidate site of this country."""
        rng = self._rng
        below_threshold = rng.random() < BELOW_THRESHOLD_RATE
        low_native_site = (not below_threshold) and rng.random() < self.profile.low_native_a11y_site_rate
        page_count = rng.randint(1, 3)
        page_paths = ("/",) + tuple(f"/page/{i}" for i in range(1, page_count))
        element_rates = {
            element_id: (
                sample_site_rate(element_profile.missing_rate, rng),
                sample_site_rate(element_profile.empty_rate, rng),
            )
            for element_id, element_profile in ELEMENT_PROFILES.items()
        }
        return SyntheticSite(
            domain=self._domain(index),
            country_code=self.profile.country_code,
            language_code=self.profile.language_code,
            rank=self._sample_rank(),
            visible_native_share=self._sample_visible_share(below_threshold),
            a11y_language_weights=self._sample_a11y_weights(low_native_site),
            uninformative_rate=max(0.02, min(rng.gauss(self.profile.uninformative_rate, 0.08), 0.9)),
            declare_lang=self._sample_declared_lang(),
            localizes_by_ip=rng.random() < self.profile.global_variant_rate,
            blocks_vpn=rng.random() < self.profile.vpn_block_rate,
            page_paths=page_paths,
            seed=stable_seed(self.seed, self.profile.country_code, index),
            element_rates=element_rates,
            # Most sites are template-driven and consistently give interactive
            # elements visible text (the screen-reader fallback); a minority
            # use icon-only controls throughout.
            fallback_text_rate=1.0 if rng.random() < 0.88 else rng.uniform(0.5, 0.9),
            robots_txt=self._sample_robots_txt(),
        )

    def generate_sites(self, count: int) -> list[SyntheticSite]:
        """Generate ``count`` candidate sites, ordered by ascending rank."""
        sites = [self.generate_site(index) for index in range(count)]
        sites.sort(key=lambda site: site.rank)
        return sites


def generate_country_sites(country_code: str, count: int, *, seed: int = 0) -> list[SyntheticSite]:
    """Convenience wrapper: candidate sites for one country."""
    return SiteGenerator(get_profile(country_code), seed=seed).generate_sites(count)

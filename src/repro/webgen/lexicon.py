"""Word and phrase lexicons for the synthetic web.

Each studied language gets a small lexicon written in its native script:
content words (used to build visible paragraphs and headings), UI terms
(used for buttons, links and labels), and descriptive phrases (used for
informative image alt text).  English gets a larger lexicon plus the
boilerplate categories needed to generate *uninformative* accessibility text
(placeholders, developer labels, file names, generic actions, ordinal
phrases) that the paper's filtering pipeline must catch.

The words are real words of the respective languages (spot-checkable), but
the generated sentences are word salads — grammaticality is irrelevant to the
measurement pipeline, which only looks at scripts, lengths and word counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Lexicon:
    """Vocabulary of one language used by the page generator.

    Attributes:
        language_code: The language this lexicon belongs to.
        words: Content words (nouns/adjectives) in the native script.
        ui_terms: Short UI strings (menu items, button captions).
        phrases: Longer descriptive phrases suitable for alt text and titles.
        generic_actions: Native translations of generic UI actions ("close",
            "search"), which the filtering pipeline discards when they appear
            alone.
        placeholders: Native translations of generic placeholders ("image",
            "icon", "button").
        space_separated: Whether words are joined with spaces (False for CJK
            and Thai-style scripts).
    """

    language_code: str
    words: tuple[str, ...]
    ui_terms: tuple[str, ...]
    phrases: tuple[str, ...]
    generic_actions: tuple[str, ...] = ()
    placeholders: tuple[str, ...] = ()
    space_separated: bool = True

    def word(self, rng: random.Random) -> str:
        return rng.choice(self.words)

    def ui_term(self, rng: random.Random) -> str:
        return rng.choice(self.ui_terms)

    def phrase(self, rng: random.Random) -> str:
        return rng.choice(self.phrases)

    def sentence(self, rng: random.Random, min_words: int = 4, max_words: int = 12) -> str:
        """A pseudo-sentence of random content words."""
        count = rng.randint(min_words, max_words)
        words = [self.word(rng) for _ in range(count)]
        joiner = " " if self.space_separated else ""
        return joiner.join(words)

    def paragraph(self, rng: random.Random, min_sentences: int = 2, max_sentences: int = 5) -> str:
        count = rng.randint(min_sentences, max_sentences)
        separator = " " if self.space_separated else ""
        if self.space_separated:
            return " ".join(self.sentence(rng) + "." for _ in range(count))
        return separator.join(self.sentence(rng) + "。" for _ in range(count))


HINDI = Lexicon(
    language_code="hi",
    words=(
        "समाचार", "सरकार", "शिक्षा", "विद्यालय", "पुस्तक", "जानकारी", "सेवा", "योजना",
        "भारत", "राज्य", "जिला", "आवेदन", "प्रमाणपत्र", "परीक्षा", "परिणाम", "छात्र",
        "स्वास्थ्य", "अस्पताल", "किसान", "बाजार", "मूल्य", "रोजगार", "समय", "आज",
        "नवीनतम", "मुख्य", "विभाग", "मंत्रालय", "अधिकारी", "सूचना", "रिपोर्ट", "खबर",
        "क्रिकेट", "खेल", "मनोरंजन", "फिल्म", "संगीत", "मौसम", "तापमान", "वर्षा",
    ),
    ui_terms=(
        "मुखपृष्ठ", "संपर्क करें", "हमारे बारे में", "खोजें", "लॉगिन", "पंजीकरण",
        "और पढ़ें", "डाउनलोड", "सबमिट करें", "अगला", "पिछला", "सहायता",
    ),
    phrases=(
        "मुख्यमंत्री ने नई योजना की घोषणा की",
        "विद्यालय के छात्रों का वार्षिक समारोह",
        "किसानों के लिए नई कृषि योजना की जानकारी",
        "अस्पताल में मरीजों की जांच करते डॉक्टर",
        "बाजार में सब्जियों की ताजा कीमतें",
        "परीक्षा परिणाम की घोषणा करते अधिकारी",
    ),
    generic_actions=("खोजें", "बंद करें", "भेजें"),
    placeholders=("चित्र", "बटन", "छवि"),
)

BANGLA = Lexicon(
    language_code="bn",
    words=(
        "সংবাদ", "সরকার", "শিক্ষা", "বিদ্যালয়", "বই", "তথ্য", "সেবা", "প্রকল্প",
        "বাংলাদেশ", "জেলা", "উপজেলা", "আবেদন", "সনদ", "পরীক্ষা", "ফলাফল", "শিক্ষার্থী",
        "স্বাস্থ্য", "হাসপাতাল", "কৃষক", "বাজার", "দাম", "চাকরি", "সময়", "আজ",
        "সর্বশেষ", "প্রধান", "অধিদপ্তর", "মন্ত্রণালয়", "কর্মকর্তা", "বিজ্ঞপ্তি", "প্রতিবেদন", "খবর",
        "ক্রিকেট", "খেলা", "বিনোদন", "চলচ্চিত্র", "সংগীত", "আবহাওয়া", "তাপমাত্রা", "বৃষ্টি",
    ),
    ui_terms=(
        "প্রচ্ছদ", "যোগাযোগ", "আমাদের সম্পর্কে", "অনুসন্ধান", "লগইন", "নিবন্ধন",
        "আরও পড়ুন", "ডাউনলোড", "জমা দিন", "পরবর্তী", "পূর্ববর্তী", "সাহায্য",
    ),
    phrases=(
        "প্রধানমন্ত্রী নতুন প্রকল্পের উদ্বোধন করেছেন",
        "বিদ্যালয়ের শিক্ষার্থীদের বার্ষিক ক্রীড়া প্রতিযোগিতা",
        "কৃষকদের জন্য নতুন কৃষি প্রণোদনার ঘোষণা",
        "হাসপাতালে রোগীদের চিকিৎসা দিচ্ছেন চিকিৎসকরা",
        "বাজারে সবজির সর্বশেষ দামের তালিকা",
        "পরীক্ষার ফলাফল প্রকাশ করছেন কর্মকর্তারা",
    ),
    generic_actions=("অনুসন্ধান", "বন্ধ করুন", "পাঠান"),
    placeholders=("ছবি", "বোতাম", "আইকন"),
)

ARABIC = Lexicon(
    language_code="ar",
    words=(
        "أخبار", "حكومة", "تعليم", "مدرسة", "كتاب", "معلومات", "خدمة", "مشروع",
        "الجزائر", "ولاية", "بلدية", "طلب", "شهادة", "امتحان", "نتيجة", "طالب",
        "صحة", "مستشفى", "فلاح", "سوق", "سعر", "عمل", "وقت", "اليوم",
        "أحدث", "رئيسي", "مديرية", "وزارة", "مسؤول", "إعلان", "تقرير", "خبر",
        "رياضة", "كرة", "ترفيه", "فيلم", "موسيقى", "طقس", "حرارة", "مطر",
    ),
    ui_terms=(
        "الرئيسية", "اتصل بنا", "من نحن", "بحث", "تسجيل الدخول", "تسجيل",
        "اقرأ المزيد", "تحميل", "إرسال", "التالي", "السابق", "مساعدة",
    ),
    phrases=(
        "الوزير يعلن عن مشروع جديد للتنمية",
        "طلاب المدرسة في الاحتفال السنوي",
        "معلومات حول برنامج الدعم الفلاحي الجديد",
        "الأطباء يفحصون المرضى في المستشفى",
        "أسعار الخضروات في السوق المركزي",
        "إعلان نتائج الامتحانات الرسمية",
    ),
    generic_actions=("بحث", "إغلاق", "إرسال"),
    placeholders=("صورة", "زر", "أيقونة"),
)

# Egyptian Arabic shares the Arabic script; a few dialect-flavoured items are
# included so the two lexicons are not byte-identical.
EGYPTIAN_ARABIC = Lexicon(
    language_code="arz",
    words=ARABIC.words + ("مصر", "القاهرة", "النهاردة", "شغل", "عربية", "فلوس"),
    ui_terms=ARABIC.ui_terms,
    phrases=ARABIC.phrases + (
        "أسعار العملات في البنوك المصرية النهاردة",
        "أخبار الدوري المصري الممتاز اليوم",
    ),
    generic_actions=ARABIC.generic_actions,
    placeholders=ARABIC.placeholders,
)

RUSSIAN = Lexicon(
    language_code="ru",
    words=(
        "новости", "правительство", "образование", "школа", "книга", "информация", "услуга", "проект",
        "Россия", "область", "район", "заявление", "справка", "экзамен", "результат", "студент",
        "здоровье", "больница", "фермер", "рынок", "цена", "работа", "время", "сегодня",
        "последние", "главный", "управление", "министерство", "чиновник", "объявление", "отчет", "статья",
        "футбол", "спорт", "развлечения", "фильм", "музыка", "погода", "температура", "дождь",
    ),
    ui_terms=(
        "главная", "контакты", "о нас", "поиск", "войти", "регистрация",
        "читать далее", "скачать", "отправить", "далее", "назад", "помощь",
    ),
    phrases=(
        "министр объявил о запуске нового проекта",
        "школьники на ежегодном спортивном празднике",
        "информация о новой программе поддержки фермеров",
        "врачи осматривают пациентов в больнице",
        "актуальные цены на овощи на центральном рынке",
        "официальное объявление результатов экзаменов",
    ),
    generic_actions=("поиск", "закрыть", "отправить"),
    placeholders=("изображение", "кнопка", "значок"),
)

JAPANESE = Lexicon(
    language_code="ja",
    words=(
        "ニュース", "政府", "教育", "学校", "本", "情報", "サービス", "計画",
        "日本", "東京", "地域", "申請", "証明書", "試験", "結果", "学生",
        "健康", "病院", "農家", "市場", "価格", "仕事", "時間", "今日",
        "最新", "主要", "部門", "省庁", "担当者", "お知らせ", "報告", "記事",
        "野球", "スポーツ", "娯楽", "映画", "音楽", "天気", "気温", "雨",
        "会社", "製品", "くわしく", "みなさま", "ありがとう", "ください",
    ),
    ui_terms=(
        "ホーム", "お問い合わせ", "会社概要", "検索", "ログイン", "新規登録",
        "続きを読む", "ダウンロード", "送信", "次へ", "前へ", "ヘルプ",
    ),
    phrases=(
        "大臣が新しい支援計画を発表しました",
        "学校の生徒たちによる毎年恒例の運動会",
        "農家向けの新しい補助金制度のご案内",
        "病院で患者を診察する医師たち",
        "中央市場における野菜の最新価格",
        "試験結果の公式発表が行われました",
    ),
    generic_actions=("検索", "閉じる", "送信"),
    placeholders=("画像", "ボタン", "アイコン"),
    space_separated=False,
)

MANDARIN = Lexicon(
    language_code="zh",
    words=(
        "新闻", "政府", "教育", "学校", "图书", "信息", "服务", "项目",
        "中国", "省份", "地区", "申请", "证书", "考试", "结果", "学生",
        "健康", "医院", "农民", "市场", "价格", "工作", "时间", "今天",
        "最新", "主要", "部门", "部委", "官员", "公告", "报告", "文章",
        "足球", "体育", "娱乐", "电影", "音乐", "天气", "气温", "降雨",
        "企业", "产品", "详情", "用户", "欢迎", "注册",
    ),
    ui_terms=(
        "首页", "联系我们", "关于我们", "搜索", "登录", "注册",
        "阅读更多", "下载", "提交", "下一页", "上一页", "帮助",
    ),
    phrases=(
        "部长宣布启动新的发展项目",
        "学校学生参加一年一度的运动会",
        "关于新农业补贴政策的详细信息",
        "医生在医院为患者进行检查",
        "中央市场蔬菜的最新价格信息",
        "官方公布考试成绩的通知",
    ),
    generic_actions=("搜索", "关闭", "提交"),
    placeholders=("图像", "按钮", "图标"),
    space_separated=False,
)

CANTONESE = Lexicon(
    language_code="yue",
    words=(
        "新聞", "政府", "教育", "學校", "圖書", "資訊", "服務", "項目",
        "香港", "地區", "申請", "證書", "考試", "結果", "學生", "市民",
        "健康", "醫院", "市場", "價格", "工作", "時間", "今日", "最新",
        "主要", "部門", "官員", "公告", "報告", "文章", "足球", "體育",
        "娛樂", "電影", "音樂", "天氣", "氣溫", "落雨", "企業", "產品",
    ),
    ui_terms=(
        "主頁", "聯絡我們", "關於我們", "搜尋", "登入", "註冊",
        "閱讀更多", "下載", "提交", "下一頁", "上一頁", "幫助",
    ),
    phrases=(
        "政府宣布推出全新資助計劃",
        "學校學生參加一年一度嘅運動會",
        "關於新住屋政策嘅詳細資料",
        "醫生喺醫院為病人做檢查",
        "街市蔬菜嘅最新價格資訊",
        "考試成績正式公布嘅通知",
    ),
    generic_actions=("搜尋", "關閉", "提交"),
    placeholders=("圖像", "按鈕", "圖示"),
    space_separated=False,
)

KOREAN = Lexicon(
    language_code="ko",
    words=(
        "뉴스", "정부", "교육", "학교", "도서", "정보", "서비스", "사업",
        "한국", "지역", "신청", "증명서", "시험", "결과", "학생", "시민",
        "건강", "병원", "농민", "시장", "가격", "일자리", "시간", "오늘",
        "최신", "주요", "부서", "부처", "담당자", "공지", "보고서", "기사",
        "축구", "스포츠", "연예", "영화", "음악", "날씨", "기온", "비",
    ),
    ui_terms=(
        "홈", "문의하기", "회사소개", "검색", "로그인", "회원가입",
        "더 보기", "다운로드", "제출", "다음", "이전", "도움말",
    ),
    phrases=(
        "장관이 새로운 지원 사업을 발표했습니다",
        "학교 학생들의 연례 체육대회 모습",
        "농민을 위한 새로운 보조금 제도 안내",
        "병원에서 환자를 진료하는 의사들",
        "중앙시장 채소의 최신 가격 정보",
        "시험 결과 공식 발표 안내문",
    ),
    generic_actions=("검색", "닫기", "보내기"),
    placeholders=("이미지", "버튼", "아이콘"),
)

THAI = Lexicon(
    language_code="th",
    words=(
        "ข่าว", "รัฐบาล", "การศึกษา", "โรงเรียน", "หนังสือ", "ข้อมูล", "บริการ", "โครงการ",
        "ประเทศไทย", "จังหวัด", "อำเภอ", "คำขอ", "ใบรับรอง", "การสอบ", "ผลลัพธ์", "นักเรียน",
        "สุขภาพ", "โรงพยาบาล", "เกษตรกร", "ตลาด", "ราคา", "งาน", "เวลา", "วันนี้",
        "ล่าสุด", "หลัก", "กรม", "กระทรวง", "เจ้าหน้าที่", "ประกาศ", "รายงาน", "บทความ",
        "ฟุตบอล", "กีฬา", "บันเทิง", "ภาพยนตร์", "ดนตรี", "อากาศ", "อุณหภูมิ", "ฝน",
    ),
    ui_terms=(
        "หน้าแรก", "ติดต่อเรา", "เกี่ยวกับเรา", "ค้นหา", "เข้าสู่ระบบ", "สมัครสมาชิก",
        "อ่านต่อ", "ดาวน์โหลด", "ส่ง", "ถัดไป", "ก่อนหน้า", "ช่วยเหลือ",
    ),
    phrases=(
        "รัฐมนตรีประกาศโครงการพัฒนาใหม่",
        "นักเรียนในงานกีฬาสีประจำปีของโรงเรียน",
        "ข้อมูลเกี่ยวกับโครงการช่วยเหลือเกษตรกรรอบใหม่",
        "แพทย์กำลังตรวจผู้ป่วยในโรงพยาบาล",
        "ราคาผักล่าสุดในตลาดกลาง",
        "ประกาศผลการสอบอย่างเป็นทางการ",
    ),
    generic_actions=("ค้นหา", "ปิด", "ส่ง"),
    placeholders=("รูปภาพ", "ปุ่ม", "ไอคอน"),
    space_separated=False,
)

GREEK = Lexicon(
    language_code="el",
    words=(
        "ειδήσεις", "κυβέρνηση", "εκπαίδευση", "σχολείο", "βιβλίο", "πληροφορίες", "υπηρεσία", "έργο",
        "Ελλάδα", "περιφέρεια", "δήμος", "αίτηση", "πιστοποιητικό", "εξετάσεις", "αποτέλεσμα", "μαθητής",
        "υγεία", "νοσοκομείο", "αγρότης", "αγορά", "τιμή", "εργασία", "χρόνος", "σήμερα",
        "τελευταία", "κύριο", "διεύθυνση", "υπουργείο", "υπάλληλος", "ανακοίνωση", "αναφορά", "άρθρο",
        "ποδόσφαιρο", "αθλητισμός", "ψυχαγωγία", "ταινία", "μουσική", "καιρός", "θερμοκρασία", "βροχή",
    ),
    ui_terms=(
        "αρχική", "επικοινωνία", "σχετικά με εμάς", "αναζήτηση", "σύνδεση", "εγγραφή",
        "διαβάστε περισσότερα", "λήψη", "υποβολή", "επόμενο", "προηγούμενο", "βοήθεια",
    ),
    phrases=(
        "ο υπουργός ανακοίνωσε νέο αναπτυξιακό πρόγραμμα",
        "μαθητές του σχολείου στην ετήσια γιορτή",
        "πληροφορίες για το νέο πρόγραμμα στήριξης αγροτών",
        "γιατροί εξετάζουν ασθενείς στο νοσοκομείο",
        "οι τελευταίες τιμές λαχανικών στην κεντρική αγορά",
        "επίσημη ανακοίνωση αποτελεσμάτων εξετάσεων",
    ),
    generic_actions=("αναζήτηση", "κλείσιμο", "αποστολή"),
    placeholders=("εικόνα", "κουμπί", "εικονίδιο"),
)

HEBREW = Lexicon(
    language_code="he",
    words=(
        "חדשות", "ממשלה", "חינוך", "בית ספר", "ספר", "מידע", "שירות", "פרויקט",
        "ישראל", "מחוז", "עירייה", "בקשה", "תעודה", "בחינה", "תוצאה", "תלמיד",
        "בריאות", "בית חולים", "חקלאי", "שוק", "מחיר", "עבודה", "זמן", "היום",
        "אחרונות", "ראשי", "אגף", "משרד", "פקיד", "הודעה", "דוח", "כתבה",
        "כדורגל", "ספורט", "בידור", "סרט", "מוזיקה", "מזג אוויר", "טמפרטורה", "גשם",
    ),
    ui_terms=(
        "דף הבית", "צור קשר", "אודות", "חיפוש", "התחברות", "הרשמה",
        "קרא עוד", "הורדה", "שליחה", "הבא", "הקודם", "עזרה",
    ),
    phrases=(
        "השר הודיע על תוכנית פיתוח חדשה",
        "תלמידי בית הספר בטקס השנתי",
        "מידע על תוכנית הסיוע החדשה לחקלאים",
        "רופאים בודקים מטופלים בבית החולים",
        "מחירי הירקות העדכניים בשוק המרכזי",
        "הודעה רשמית על תוצאות הבחינות",
    ),
    generic_actions=("חיפוש", "סגירה", "שליחה"),
    placeholders=("תמונה", "כפתור", "סמל"),
)

ENGLISH = Lexicon(
    language_code="en",
    words=(
        "news", "government", "education", "school", "book", "information", "service", "project",
        "country", "region", "district", "application", "certificate", "exam", "result", "student",
        "health", "hospital", "farmer", "market", "price", "job", "time", "today",
        "latest", "main", "department", "ministry", "officer", "notice", "report", "article",
        "football", "sports", "entertainment", "movie", "music", "weather", "temperature", "rain",
        "business", "technology", "travel", "food", "culture", "politics", "economy", "world",
    ),
    ui_terms=(
        "home", "contact us", "about us", "search", "login", "register",
        "read more", "download", "submit", "next", "previous", "help",
        "subscribe", "share", "menu", "settings", "privacy policy", "terms of service",
    ),
    phrases=(
        "minister announces a new development project for the region",
        "students taking part in the annual school sports day",
        "details of the new support programme for local farmers",
        "doctors examining patients at the district hospital",
        "latest vegetable prices at the central market",
        "official announcement of the examination results",
        "a hand holding a smartphone displaying the banking application",
        "aerial view of the city centre during the evening rush hour",
        "group photo of the delegation visiting the new facility",
        "portrait of the award winning author at the book launch",
    ),
    generic_actions=("search", "close", "send", "open menu", "toggle navigation", "play", "submit"),
    placeholders=("image", "icon", "button", "photo", "logo", "banner", "thumbnail", "picture"),
)

#: Developer-style labels used to generate the "Dev Label" discard category.
DEV_LABELS: tuple[str, ...] = (
    "btn-submit", "nav_menu", "navbar-toggle", "carousel1", "hero-banner",
    "footer_logo", "sidebar-widget", "main_img", "icon-arrow-right",
    "card-img-top", "menu_item_3", "slider-control", "img_placeholder",
    "header-cta", "modal-close-x",
)

#: File-name style labels ("File Name" discard category).
FILE_NAME_LABELS: tuple[str, ...] = (
    "banner_img123.jpg", "logo.png", "photo-2024-05.jpeg", "icon.svg",
    "IMG_20240311_142356.jpg", "screenshot.png", "product_01.webp",
    "header-bg.gif", "DSC04512.JPG", "thumb_small.png",
)

#: URL / file-path style labels ("URL or File Path" discard category).
URL_PATH_LABELS: tuple[str, ...] = (
    "https://example.com/image.png", "/assets/img/logo.svg",
    "http://cdn.example.org/uploads/2024/photo.jpg", "/static/media/banner.webp",
    "www.example.net/pictures/team.jpg", "/images/icons/arrow.png",
)

#: Alphanumeric-ID style labels ("Mixed Alnum" discard category).
MIXED_ALNUM_LABELS: tuple[str, ...] = (
    "img123", "icon2", "pic0042", "photo7a", "banner3x", "item00981", "ref2024b",
)

#: "Label + number" patterns ("Label Number Pattern" discard category).
LABEL_NUMBER_LABELS: tuple[str, ...] = (
    "image 1", "button 2", "slide 3", "figure 5", "photo 12", "banner 4", "item 7",
)

#: Ordinal phrases ("Ordinal Phrase" discard category).
ORDINAL_PHRASE_LABELS: tuple[str, ...] = (
    "1 of 3", "2 of 10", "3 of 5", "4 / 12", "slide 2 of 8", "page 3 of 20",
)

#: Emoji-only labels ("Emoji" discard category).
EMOJI_LABELS: tuple[str, ...] = ("😀", "🎉🎉", "📷", "👍", "🔍", "▶️", "🌟🌟🌟")

#: Too-short labels ("Too Short" discard category, non-CJK: < 3 chars).
TOO_SHORT_LABELS: tuple[str, ...] = ("go", "ok", "x", ">", "..", "no", "—")


#: Lexicons by language code.
LEXICONS: dict[str, Lexicon] = {
    lex.language_code: lex
    for lex in (
        HINDI, BANGLA, ARABIC, EGYPTIAN_ARABIC, RUSSIAN, JAPANESE, MANDARIN,
        CANTONESE, KOREAN, THAI, GREEK, HEBREW, ENGLISH,
    )
}


def get_lexicon(language_code: str) -> Lexicon:
    """Lexicon for ``language_code``; raises ``KeyError`` for unknown codes."""
    return LEXICONS[language_code]


def mixed_phrase(rng: random.Random, native: Lexicon, english: Lexicon = ENGLISH) -> str:
    """A phrase mixing native and English words within a single string.

    Used to generate the mixed-language accessibility hints the paper reports
    for Greece, Thailand, Hong Kong and others (Figure 4).
    """
    native_part = native.sentence(rng, 2, 4)
    english_part = english.sentence(rng, 2, 4)
    if rng.random() < 0.5:
        return f"{native_part} {english_part}"
    return f"{english_part} {native_part}"

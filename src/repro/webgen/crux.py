"""A synthetic CrUX-style popularity ranking.

The paper ranks websites with the Chrome User Experience Report (CrUX), which
assigns each origin to a coarse popularity bucket (top 1k, 5k, 10k, 50k ...).
This module provides the same interface over the synthetic web: a
:class:`CruxTable` lists origins per country ordered by rank, exposes the
rank-bucket histogram of Appendix C (Figure 7), and supports the "take the
next-ranked candidate" replacement pattern used during website selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.webgen.sitegen import SyntheticSite


#: CrUX-style rank buckets, matching the y-axis of Figure 7.
RANK_BUCKETS: tuple[int, ...] = (1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000)


def rank_bucket(rank: int) -> int:
    """Smallest CrUX bucket that contains ``rank``.

    Ranks beyond the largest bucket are reported in a final catch-all bucket
    equal to ``RANK_BUCKETS[-1] * 10`` so that nothing is silently dropped.
    """
    if rank <= 0:
        raise ValueError(f"rank must be positive, got {rank}")
    for bucket in RANK_BUCKETS:
        if rank <= bucket:
            return bucket
    return RANK_BUCKETS[-1] * 10


@dataclass(frozen=True)
class CruxEntry:
    """One origin in the ranking table."""

    origin: str
    rank: int
    country_code: str

    @property
    def bucket(self) -> int:
        return rank_bucket(self.rank)


@dataclass
class CruxTable:
    """Per-country popularity ranking over the synthetic web.

    Entries for each country are kept sorted by ascending rank; iteration
    over a country therefore yields the best-ranked origins first, which is
    exactly the order the selection procedure consumes.
    """

    entries_by_country: dict[str, list[CruxEntry]] = field(default_factory=dict)

    def add(self, entry: CruxEntry) -> None:
        bucket = self.entries_by_country.setdefault(entry.country_code, [])
        bucket.append(entry)
        bucket.sort(key=lambda item: item.rank)

    def countries(self) -> tuple[str, ...]:
        return tuple(sorted(self.entries_by_country))

    def entries(self, country_code: str) -> Sequence[CruxEntry]:
        """Ranked entries of a country (best rank first)."""
        return tuple(self.entries_by_country.get(country_code, ()))

    def iter_ranked(self, country_code: str) -> Iterator[CruxEntry]:
        yield from self.entries(country_code)

    def top(self, country_code: str, count: int) -> Sequence[CruxEntry]:
        """The ``count`` best-ranked origins of a country."""
        return self.entries(country_code)[:count]

    def size(self, country_code: str | None = None) -> int:
        if country_code is not None:
            return len(self.entries_by_country.get(country_code, ()))
        return sum(len(entries) for entries in self.entries_by_country.values())

    def bucket_histogram(self, country_code: str) -> dict[int, int]:
        """Number of origins per rank bucket (Figure 7 / Appendix C)."""
        histogram: dict[int, int] = {bucket: 0 for bucket in RANK_BUCKETS}
        for entry in self.entries(country_code):
            histogram.setdefault(entry.bucket, 0)
            histogram[entry.bucket] += 1
        return histogram

    def lookup(self, origin: str) -> CruxEntry | None:
        """Find an origin anywhere in the table, or ``None``."""
        for entries in self.entries_by_country.values():
            for entry in entries:
                if entry.origin == origin:
                    return entry
        return None


def build_crux_table(sites: Iterable[SyntheticSite]) -> CruxTable:
    """Build the ranking table from generated sites.

    Ranks within a country are de-duplicated by nudging collisions to the
    next free value, preserving the sampled distribution's shape while
    keeping the ordering strict (CrUX itself never assigns the same rank to
    two origins of one list).
    """
    table = CruxTable()
    used_ranks: dict[str, set[int]] = {}
    for site in sites:
        taken = used_ranks.setdefault(site.country_code, set())
        rank = site.rank
        while rank in taken:
            rank += 1
        taken.add(rank)
        table.add(CruxEntry(origin=site.domain, rank=rank, country_code=site.country_code))
    return table

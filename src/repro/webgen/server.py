"""Geo-aware origin servers for the synthetic web.

Each :class:`OriginServer` wraps one :class:`~repro.webgen.sitegen.SyntheticSite`
and answers requests the way the corresponding real-world behaviours would:

* in-country clients receive the *localized* variant;
* out-of-country clients receive the *global* (English-leaning) variant when
  the site localizes by IP, otherwise the localized variant;
* sites that detect VPN/proxy traffic answer ``403`` to flagged clients,
  which forces the selection procedure to replace them (Section 2,
  Limitations);
* unknown paths answer ``404``; the root path may redirect to ``/home`` on a
  small fraction of sites so that the crawler's redirect handling is
  exercised.

:class:`SyntheticWeb` is the DNS-plus-transport of this world: it maps host
names to origin servers and dispatches requests.  The crawler never sees
these classes directly — it talks to a transport adapter in
:mod:`repro.crawler.fetcher` — so swapping in a real HTTP client would not
change any measurement code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.webgen.sitegen import GLOBAL, LOCALIZED, SyntheticSite, stable_seed


@dataclass(frozen=True)
class OriginRequest:
    """A request as seen by an origin server."""

    path: str
    client_country: str | None = None
    via_vpn: bool = False
    headers: Mapping[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class OriginResponse:
    """A response produced by an origin server."""

    status: int
    body: str = ""
    headers: Mapping[str, str] = field(default_factory=dict)
    served_variant: str | None = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def is_redirect(self) -> bool:
        return self.status in (301, 302, 307, 308)

    @property
    def location(self) -> str | None:
        return self.headers.get("location")


class OriginServer:
    """Serves one synthetic site."""

    def __init__(self, site: SyntheticSite) -> None:
        self.site = site
        # A deterministic per-site decision: a small fraction of sites
        # redirect "/" to "/home" to exercise redirect handling.
        self._redirects_root = stable_seed(site.seed, "redirect") % 100 < 5

    @property
    def domain(self) -> str:
        return self.site.domain

    def _variant_for(self, request: OriginRequest) -> str:
        if not self.site.localizes_by_ip:
            return LOCALIZED
        if request.client_country == self.site.country_code:
            return LOCALIZED
        return GLOBAL

    def handle(self, request: OriginRequest) -> OriginResponse:
        """Answer ``request``.

        VPN-blocking takes precedence over everything else, mirroring how
        bot-protection frontends intercept requests before the application.
        """
        if self.site.blocks_vpn and request.via_vpn:
            return OriginResponse(status=403, body="Access denied", served_variant=None,
                                  headers={"content-type": "text/plain"})

        path = request.path or "/"
        if path == "/robots.txt":
            if self.site.robots_txt is None:
                return OriginResponse(status=404, body="Not found",
                                      headers={"content-type": "text/plain"})
            return OriginResponse(status=200, body=self.site.robots_txt,
                                  headers={"content-type": "text/plain"})
        if self._redirects_root and path == "/":
            return OriginResponse(
                status=302,
                headers={"location": f"https://{self.domain}/home", "content-type": "text/html"},
            )
        if self._redirects_root and path == "/home":
            path = "/"

        if path not in self.site.page_paths:
            return OriginResponse(status=404, body="Not found",
                                  headers={"content-type": "text/plain"})

        variant = self._variant_for(request)
        body = self.site.page_html(path, variant)
        return OriginResponse(
            status=200,
            body=body,
            headers={"content-type": "text/html; charset=utf-8"},
            served_variant=variant,
        )


class SyntheticWeb:
    """The collection of all origin servers, addressable by host name."""

    def __init__(self, sites: Iterable[SyntheticSite] = ()) -> None:
        self._servers: dict[str, OriginServer] = {}
        for site in sites:
            self.add_site(site)

    def add_site(self, site: SyntheticSite) -> OriginServer:
        if site.domain in self._servers:
            raise ValueError(f"duplicate domain {site.domain!r} in synthetic web")
        server = OriginServer(site)
        self._servers[site.domain] = server
        return server

    def __contains__(self, domain: str) -> bool:
        return domain in self._servers

    def __len__(self) -> int:
        return len(self._servers)

    def domains(self) -> tuple[str, ...]:
        return tuple(sorted(self._servers))

    def site(self, domain: str) -> SyntheticSite:
        return self._servers[domain].site

    def request(self, domain: str, path: str = "/", *, client_country: str | None = None,
                via_vpn: bool = False) -> OriginResponse:
        """Dispatch a request to the origin for ``domain``.

        Unknown hosts answer with a synthetic DNS-failure style 502 so that
        callers exercise their error handling rather than crashing.
        """
        server = self._servers.get(domain)
        if server is None:
            return OriginResponse(status=502, body="Unknown host",
                                  headers={"content-type": "text/plain"})
        return server.handle(OriginRequest(path=path, client_country=client_country,
                                           via_vpn=via_vpn))

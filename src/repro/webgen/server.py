"""Geo-aware origin servers for the synthetic web.

Each :class:`OriginServer` wraps one :class:`~repro.webgen.sitegen.SyntheticSite`
and answers requests the way the corresponding real-world behaviours would:

* in-country clients receive the *localized* variant;
* out-of-country clients receive the *global* (English-leaning) variant when
  the site localizes by IP, otherwise the localized variant;
* sites that detect VPN/proxy traffic answer ``403`` to flagged clients,
  which forces the selection procedure to replace them (Section 2,
  Limitations);
* unknown paths answer ``404``; the root path may redirect to ``/home`` on a
  small fraction of sites so that the crawler's redirect handling is
  exercised.

:class:`SyntheticWeb` is the DNS-plus-transport of this world: it maps host
names to origin servers and dispatches requests.  The crawler never sees
these classes directly — it talks to a transport adapter in
:mod:`repro.crawler.fetcher` — so swapping in a real HTTP client would not
change any measurement code.

:class:`LocalSiteServer` takes the final step: it exposes a whole
:class:`SyntheticWeb` over *actual* HTTP on a loopback socket, multiplexing
every synthetic domain onto one address via the ``Host`` header (the
crawler's :class:`~repro.crawler.transport.HttpAsyncTransport` points its
*gateway* at it).  Crawl metadata that real HTTP has no notion of — the
client's apparent country, the VPN flag, the served-variant label — travels
in the private ``x-langcrux-*`` headers defined in
:mod:`repro.crawler.http`.  This is what lets the full pipeline run over a
real network stack, hermetically, with output byte-identical to the
in-memory simulation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterable, Mapping
from urllib.parse import urlsplit

from repro.webgen.sitegen import GLOBAL, LOCALIZED, SyntheticSite, stable_seed


@dataclass(frozen=True)
class OriginRequest:
    """A request as seen by an origin server."""

    path: str
    client_country: str | None = None
    via_vpn: bool = False
    headers: Mapping[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class OriginResponse:
    """A response produced by an origin server."""

    status: int
    body: str = ""
    headers: Mapping[str, str] = field(default_factory=dict)
    served_variant: str | None = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def is_redirect(self) -> bool:
        return self.status in (301, 302, 307, 308)

    @property
    def location(self) -> str | None:
        return self.headers.get("location")


class OriginServer:
    """Serves one synthetic site."""

    def __init__(self, site: SyntheticSite) -> None:
        self.site = site
        # A deterministic per-site decision: a small fraction of sites
        # redirect "/" to "/home" to exercise redirect handling.
        self._redirects_root = stable_seed(site.seed, "redirect") % 100 < 5

    @property
    def domain(self) -> str:
        return self.site.domain

    def _variant_for(self, request: OriginRequest) -> str:
        if not self.site.localizes_by_ip:
            return LOCALIZED
        if request.client_country == self.site.country_code:
            return LOCALIZED
        return GLOBAL

    def handle(self, request: OriginRequest) -> OriginResponse:
        """Answer ``request``.

        VPN-blocking takes precedence over everything else, mirroring how
        bot-protection frontends intercept requests before the application.
        """
        if self.site.blocks_vpn and request.via_vpn:
            return OriginResponse(status=403, body="Access denied", served_variant=None,
                                  headers={"content-type": "text/plain"})

        path = request.path or "/"
        if path == "/robots.txt":
            if self.site.robots_txt is None:
                return OriginResponse(status=404, body="Not found",
                                      headers={"content-type": "text/plain"})
            return OriginResponse(status=200, body=self.site.robots_txt,
                                  headers={"content-type": "text/plain"})
        if self._redirects_root and path == "/":
            return OriginResponse(
                status=302,
                headers={"location": f"https://{self.domain}/home", "content-type": "text/html"},
            )
        if self._redirects_root and path == "/home":
            path = "/"

        if path not in self.site.page_paths:
            return OriginResponse(status=404, body="Not found",
                                  headers={"content-type": "text/plain"})

        variant = self._variant_for(request)
        body = self.site.page_html(path, variant)
        return OriginResponse(
            status=200,
            body=body,
            headers={"content-type": "text/html; charset=utf-8"},
            served_variant=variant,
        )


class SyntheticWeb:
    """The collection of all origin servers, addressable by host name."""

    def __init__(self, sites: Iterable[SyntheticSite] = ()) -> None:
        self._servers: dict[str, OriginServer] = {}
        for site in sites:
            self.add_site(site)

    def add_site(self, site: SyntheticSite) -> OriginServer:
        if site.domain in self._servers:
            raise ValueError(f"duplicate domain {site.domain!r} in synthetic web")
        server = OriginServer(site)
        self._servers[site.domain] = server
        return server

    def __contains__(self, domain: str) -> bool:
        return domain in self._servers

    def __len__(self) -> int:
        return len(self._servers)

    def domains(self) -> tuple[str, ...]:
        return tuple(sorted(self._servers))

    def site(self, domain: str) -> SyntheticSite:
        return self._servers[domain].site

    def request(self, domain: str, path: str = "/", *, client_country: str | None = None,
                via_vpn: bool = False) -> OriginResponse:
        """Dispatch a request to the origin for ``domain``.

        Unknown hosts answer with a synthetic DNS-failure style 502 so that
        callers exercise their error handling rather than crashing.
        """
        server = self._servers.get(domain)
        if server is None:
            return OriginResponse(status=502, body="Unknown host",
                                  headers={"content-type": "text/plain"})
        return server.handle(OriginRequest(path=path, client_country=client_country,
                                           via_vpn=via_vpn))


class _SiteRequestHandler(BaseHTTPRequestHandler):
    """Dispatches one HTTP request into the owning server's SyntheticWeb."""

    # Keep-alive responses so the crawler's connection pooling is exercised.
    protocol_version = "HTTP/1.1"

    # Nagle + delayed-ACK interact to ~40ms per keep-alive round-trip on
    # loopback; a benchmark server must not hide that behind the workload.
    disable_nagle_algorithm = True

    # Set by LocalSiteServer when the handler class is specialised.
    web: SyntheticWeb

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        # Imported lazily: webgen must stay importable without the crawler
        # package (the header names live with the transport conventions).
        from repro.crawler.http import (
            CLIENT_COUNTRY_HEADER,
            SERVED_VARIANT_HEADER,
            VIA_VPN_HEADER,
        )

        host = (self.headers.get("host") or "").split(":")[0].lower()
        path = urlsplit(self.path).path or "/"
        response = self.web.request(
            host,
            path,
            client_country=self.headers.get(CLIENT_COUNTRY_HEADER) or None,
            via_vpn=self.headers.get(VIA_VPN_HEADER) == "1",
        )
        body = response.body.encode("utf-8")
        self.send_response(response.status)
        for name, value in response.headers.items():
            self.send_header(name, value)
        if response.served_variant is not None:
            self.send_header(SERVED_VARIANT_HEADER, response.served_variant)
        self.send_header("content-length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the crawl's own metrics are the observability story


class LocalSiteServer:
    """Serves a :class:`SyntheticWeb` over real HTTP on a loopback socket.

    Every synthetic domain is multiplexed onto one ``host:port`` via the
    ``Host`` header, so the server acts as the resolver-plus-origin for the
    whole web — point :class:`~repro.crawler.transport.HttpAsyncTransport`'s
    ``gateway`` at :attr:`gateway` and the crawler reaches any site through
    genuine sockets.  Requests are handled on daemon threads
    (``ThreadingHTTPServer``), so batched crawls with many origins in
    flight are served concurrently.

    Usable as a context manager::

        with LocalSiteServer(web) as server:
            transport = HttpAsyncTransport(gateway=server.gateway)
            ...

    Args:
        web: The synthetic web to serve.
        host: Interface to bind (loopback by default; keep it that way in
            CI — the integration suite is deliberately network-free).
        port: Port to bind; 0 picks an ephemeral free port.
    """

    def __init__(self, web: SyntheticWeb, *, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.web = web
        handler = type("_BoundSiteRequestHandler", (_SiteRequestHandler,),
                       {"web": web})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def gateway(self) -> str:
        """The ``host:port`` address transports use as their gateway."""
        return f"{self.host}:{self.port}"

    def start(self) -> "LocalSiteServer":
        """Serve on a background thread until :meth:`close` (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(target=self._server.serve_forever,
                                            name="langcrux-site-server",
                                            daemon=True)
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join()
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "LocalSiteServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

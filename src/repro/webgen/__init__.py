"""Synthetic multilingual web substrate.

The paper measures the live web: 120,000 CrUX-ranked websites crawled through
country-specific VPNs.  Neither the live web nor CrUX is reachable from the
reproduction environment, so this subpackage builds a deterministic synthetic
equivalent that exercises the identical downstream code paths:

* :mod:`repro.webgen.lexicon` — word and phrase lexicons in the native
  scripts of the twelve studied languages plus English.
* :mod:`repro.webgen.profiles` — per-country statistical profiles (visible
  language mix, accessibility-attribute presence, text quality, mismatch
  propensity) calibrated to the aggregates reported in the paper, so the
  *shape* of every figure is reproducible.
* :mod:`repro.webgen.pagegen` — generates a single HTML page (a DOM
  document and its serialized markup) following a site's behaviour profile.
* :mod:`repro.webgen.sitegen` — generates whole websites with localized and
  global (English-leaning) variants.
* :mod:`repro.webgen.crux` — a synthetic CrUX-style popularity ranking.
* :mod:`repro.webgen.server` — geo-aware origin servers that return the
  localized variant to in-country clients and the global variant otherwise,
  with optional VPN-detection blocking.

Everything is seeded; the same seed always produces the same web.
"""

from repro.webgen.profiles import CountryProfile, COUNTRY_PROFILES, get_profile
from repro.webgen.sitegen import SyntheticSite, SiteGenerator
from repro.webgen.crux import CruxTable, CruxEntry, build_crux_table
from repro.webgen.server import SyntheticWeb, OriginServer

__all__ = [
    "CountryProfile",
    "COUNTRY_PROFILES",
    "get_profile",
    "SyntheticSite",
    "SiteGenerator",
    "CruxTable",
    "CruxEntry",
    "build_crux_table",
    "SyntheticWeb",
    "OriginServer",
]

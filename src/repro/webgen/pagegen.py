"""Synthetic HTML page generation.

Given a per-site behaviour specification (language mix of visible content,
language mix of accessibility text, uninformative-text propensity), this
module builds a DOM :class:`~repro.html.dom.Document` and its serialized
HTML.  The generated pages contain all twelve language-sensitive element
types studied by the paper so that every audit rule and every extraction path
is exercised.

The generator is intentionally noisy in the same ways real pages are noisy:
some images get ``alt=""``, some buttons rely on their visible text only,
some alt texts are file names or developer labels, a small number of alt
texts are absurdly long (the Table 4 outliers).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping

from repro.html.dom import Document, Element, new_document
from repro.webgen import lexicon as lex
from repro.webgen.lexicon import ENGLISH, Lexicon, get_lexicon, mixed_phrase
from repro.webgen.profiles import ELEMENT_PROFILES, ElementProfile


@dataclass
class PageSpec:
    """Behaviour specification for generating one page.

    Attributes:
        language_code: The country's target language.
        visible_native_share: Target fraction of visible text in the native
            language; the rest is English.
        a11y_language_weights: Weights for the language of informative
            accessibility text: keys ``native``, ``english``, ``mixed``.
        uninformative_rate: Probability that a present, non-empty
            accessibility text is uninformative.
        discard_mix: Relative weights of uninformative categories.
        declare_lang: Whether the ``<html>`` element declares a ``lang``
            attribute, and which value (None = no attribute).
        extreme_alt_rate: Probability that an image alt text is an extreme
            outlier (> 1000 characters), reproducing Appendix E.
        element_density: Multiplier on per-page element counts (1.0 = profile
            defaults); lets site generators create small and large pages.
        fallback_text_rate: Probability that interactive elements (buttons,
            links, summaries) carry visible inner text.  Screen readers fall
            back to that text, which the paper identifies as the reason
            developers omit explicit metadata; the rate is site-level because
            templated sites are consistent about it.
    """

    language_code: str
    visible_native_share: float
    a11y_language_weights: Mapping[str, float]
    uninformative_rate: float
    discard_mix: Mapping[str, float]
    declare_lang: str | None = None
    extreme_alt_rate: float = 0.004
    element_density: float = 1.0
    fallback_text_rate: float = 0.9
    element_profiles: Mapping[str, ElementProfile] = field(default_factory=lambda: ELEMENT_PROFILES)


#: Elements whose informative short texts are legitimately UI terms
#: ("Login", "Send", "Submit") rather than descriptive phrases.
_INTERACTIVE_ELEMENTS = frozenset({
    "button-name", "input-button-name", "link-name", "summary-name",
    "select-name", "label",
})

#: Element-level modulation of the uninformative-category mix (Appendix G,
#: Figure 9): buttons and input buttons lean toward generic actions, labels
#: and selects toward single words, summaries toward both.
_ELEMENT_CATEGORY_BIAS: dict[str, dict[str, float]] = {
    "button-name": {"generic_action": 3.0, "single_word": 1.5},
    "input-button-name": {"generic_action": 3.0, "single_word": 1.5},
    "label": {"single_word": 2.5},
    "select-name": {"single_word": 2.0},
    "summary-name": {"generic_action": 4.0, "single_word": 4.0},
    "image-alt": {"file_name": 2.0, "url_or_path": 1.5, "placeholder": 1.5},
    "svg-img-alt": {"placeholder": 2.0, "dev_label": 2.0},
    "link-name": {"url_or_path": 2.0},
}


class PageGenerator:
    """Generates synthetic pages for one :class:`PageSpec`."""

    def __init__(self, spec: PageSpec, rng: random.Random) -> None:
        self.spec = spec
        self.rng = rng
        self.native = get_lexicon(spec.language_code)
        self.english = ENGLISH

    # -- text helpers --------------------------------------------------------

    def _visible_lexicon(self) -> Lexicon:
        """Pick the lexicon for the next piece of visible text."""
        if self.rng.random() < self.spec.visible_native_share:
            return self.native
        return self.english

    def _native_text_preference(self) -> float:
        """Probability that a native word is used for generated junk labels.

        Sites that write their accessibility text in English also tend to use
        English placeholders and generic actions, so the preference follows
        the site's accessibility-language mix.
        """
        weights = self.spec.a11y_language_weights
        return min(0.6, weights.get("native", 0.0) + weights.get("mixed", 0.0))

    def _informative_text(self, element_id: str, words: int) -> str:
        """An informative accessibility text in the language drawn from the
        site's accessibility-language distribution."""
        weights = self.spec.a11y_language_weights
        choice = self._weighted_choice(
            ("native", "english", "mixed"),
            (weights.get("native", 0.0), weights.get("english", 0.0), weights.get("mixed", 0.0)),
        )
        if choice == "mixed":
            return mixed_phrase(self.rng, self.native, self.english)
        lexicon = self.native if choice == "native" else self.english
        words = max(1, words)
        if element_id in _INTERACTIVE_ELEMENTS and words <= 2 and lexicon.space_separated:
            return lexicon.ui_term(self.rng)
        if self.rng.random() < 0.4:
            return lexicon.phrase(self.rng)
        return lexicon.sentence(self.rng, min_words=max(1, words - 1), max_words=words + 2)

    def _uninformative_text(self, element_id: str) -> tuple[str, str]:
        """An uninformative accessibility text and its discard category."""
        weights = dict(self.spec.discard_mix)
        for category, factor in _ELEMENT_CATEGORY_BIAS.get(element_id, {}).items():
            if category in weights:
                weights[category] = weights[category] * factor
        categories = tuple(weights)
        category = self._weighted_choice(categories, tuple(weights[c] for c in categories))
        return self._text_for_category(category), category

    def _text_for_category(self, category: str) -> str:
        rng = self.rng
        native_preference = self._native_text_preference()
        if category == "single_word":
            # A lone generic word.  For languages written without inter-word
            # spaces a "single word" is modelled with an English word, since
            # short native runs are handled by the too-short category.
            if rng.random() < native_preference and self.native.space_separated:
                return rng.choice(self.native.words)
            return rng.choice(self.english.words)
        if category == "too_short":
            return rng.choice(lex.TOO_SHORT_LABELS)
        if category == "generic_action":
            use_native = rng.random() < native_preference and self.native.generic_actions
            source = self.native if use_native else self.english
            return rng.choice(source.generic_actions)
        if category == "placeholder":
            use_native = rng.random() < native_preference and self.native.placeholders
            source = self.native if use_native else self.english
            return rng.choice(source.placeholders)
        if category == "dev_label":
            return rng.choice(lex.DEV_LABELS)
        if category == "file_name":
            return rng.choice(lex.FILE_NAME_LABELS)
        if category == "url_or_path":
            return rng.choice(lex.URL_PATH_LABELS)
        if category == "label_number_pattern":
            return rng.choice(lex.LABEL_NUMBER_LABELS)
        if category == "ordinal_phrase":
            return rng.choice(lex.ORDINAL_PHRASE_LABELS)
        if category == "mixed_alnum":
            return rng.choice(lex.MIXED_ALNUM_LABELS)
        if category == "emoji":
            return rng.choice(lex.EMOJI_LABELS)
        raise ValueError(f"unknown discard category {category!r}")

    def _weighted_choice(self, options: tuple[str, ...], weights: tuple[float, ...]) -> str:
        total = sum(weights)
        if total <= 0:
            return options[0]
        return self.rng.choices(options, weights=weights, k=1)[0]

    def _accessibility_text(self, profile: ElementProfile) -> tuple[str | None, str | None]:
        """Draw the accessibility text for one element instance.

        Returns ``(text, discard_category)`` where ``text`` is ``None`` when
        the attribute should be missing, ``""`` when present-but-empty, and a
        string otherwise.  ``discard_category`` is set only for uninformative
        texts.
        """
        roll = self.rng.random()
        if roll < profile.missing_rate:
            return None, None
        if roll < profile.missing_rate + profile.empty_rate:
            return "", None
        if profile.element_id == "image-alt" and self.rng.random() < self.spec.extreme_alt_rate:
            # Appendix E: very long alt text, e.g. a whole article pasted in.
            return self._extreme_alt_text(), None
        if self.rng.random() < self.spec.uninformative_rate:
            return self._uninformative_text(profile.element_id)
        words = max(1, round(self.rng.gauss(profile.mean_words, profile.std_words)))
        return self._informative_text(profile.element_id, words), None

    def _extreme_alt_text(self) -> str:
        paragraphs = [self.native.paragraph(self.rng, 4, 8) for _ in range(3)]
        paragraphs.append(self.english.paragraph(self.rng, 4, 8))
        text = " ".join(paragraphs)
        while len(text) < 1200:
            text += " " + self.native.paragraph(self.rng, 4, 8)
        return text

    # -- element builders ------------------------------------------------------

    def _count_for(self, profile: ElementProfile) -> int:
        low = profile.min_per_page
        high = max(low, round(profile.max_per_page * self.spec.element_density))
        return self.rng.randint(low, high)

    def _add_images(self, body: Element, profile: ElementProfile) -> None:
        for index in range(self._count_for(profile)):
            text, _ = self._accessibility_text(profile)
            attrs = {"src": f"/media/img_{index}.jpg"}
            if text is not None:
                attrs["alt"] = text
            body.append(Element("img", attrs))

    def _add_buttons(self, body: Element, profile: ElementProfile) -> None:
        for _ in range(self._count_for(profile)):
            text, _ = self._accessibility_text(profile)
            button = Element("button", {"type": "button"})
            if text is not None:
                button.set("aria-label", text)
            if profile.visible_text_fallback and self.rng.random() < self.spec.fallback_text_rate:
                button.append_text(self._visible_lexicon().ui_term(self.rng))
            body.append(button)

    def _add_links(self, body: Element, profile: ElementProfile) -> None:
        nav = Element("nav")
        body.append(nav)
        for index in range(self._count_for(profile)):
            text, _ = self._accessibility_text(profile)
            link = Element("a", {"href": f"/page/{index}"})
            if text is not None:
                link.set("aria-label", text)
            if profile.visible_text_fallback and self.rng.random() < self.spec.fallback_text_rate:
                link.append_text(self._visible_lexicon().ui_term(self.rng))
            nav.append(link)

    def _add_frames(self, body: Element, profile: ElementProfile) -> None:
        for index in range(self._count_for(profile)):
            text, _ = self._accessibility_text(profile)
            attrs = {"src": f"https://embed.example.com/widget/{index}"}
            if text is not None:
                attrs["title"] = text
            body.append(Element("iframe", attrs))

    def _add_form(self, body: Element) -> None:
        """Build a form exercising label, select-name, input buttons and input images."""
        form = Element("form", {"action": "/submit", "method": "post"})
        body.append(form)

        label_profile = self.spec.element_profiles["label"]
        for index in range(self._count_for(label_profile)):
            field_id = f"field_{index}"
            text, _ = self._accessibility_text(label_profile)
            if text is not None:
                label = Element("label", {"for": field_id})
                label.append_text(text)
                form.append(label)
            form.append(Element("input", {"type": "text", "id": field_id, "name": field_id}))

        select_profile = self.spec.element_profiles["select-name"]
        for index in range(self._count_for(select_profile)):
            text, _ = self._accessibility_text(select_profile)
            select = Element("select", {"name": f"choice_{index}"})
            if text is not None:
                select.set("aria-label", text)
            for option_index in range(self.rng.randint(2, 5)):
                option = Element("option", {"value": str(option_index)})
                option.append_text(self._visible_lexicon().word(self.rng))
                select.append(option)
            form.append(select)

        input_button_profile = self.spec.element_profiles["input-button-name"]
        for _ in range(self._count_for(input_button_profile)):
            text, _ = self._accessibility_text(input_button_profile)
            attrs = {"type": "submit"}
            if text is not None:
                attrs["value"] = text
            form.append(Element("input", attrs))

        input_image_profile = self.spec.element_profiles["input-image-alt"]
        for index in range(self._count_for(input_image_profile)):
            text, _ = self._accessibility_text(input_image_profile)
            attrs = {"type": "image", "src": f"/media/button_{index}.png"}
            if text is not None:
                attrs["alt"] = text
            form.append(Element("input", attrs))

    def _add_objects(self, body: Element, profile: ElementProfile) -> None:
        for index in range(self._count_for(profile)):
            text, _ = self._accessibility_text(profile)
            obj = Element("object", {"data": f"/media/doc_{index}.pdf", "type": "application/pdf"})
            if text is not None and text:
                obj.append_text(text)
            elif text == "":
                obj.append_text("")
            body.append(obj)

    def _add_summaries(self, body: Element, profile: ElementProfile) -> None:
        for _ in range(self._count_for(profile)):
            details = Element("details")
            summary = Element("summary")
            text, _ = self._accessibility_text(profile)
            if text is not None:
                summary.set("aria-label", text)
            if profile.visible_text_fallback and self.rng.random() < self.spec.fallback_text_rate:
                summary.append_text(self._visible_lexicon().ui_term(self.rng))
            details.append(summary)
            paragraph = Element("p")
            paragraph.append_text(self._visible_lexicon().sentence(self.rng))
            details.append(paragraph)
            body.append(details)

    def _add_svgs(self, body: Element, profile: ElementProfile) -> None:
        for _ in range(self._count_for(profile)):
            text, _ = self._accessibility_text(profile)
            svg = Element("svg", {"role": "img", "viewbox": "0 0 24 24"})
            if text is not None:
                svg.set("aria-label", text)
            svg.append(Element("path", {"d": "M0 0h24v24H0z"}))
            body.append(svg)

    def _add_visible_content(self, body: Element) -> None:
        """Headings and paragraphs carrying the page's visible language mix."""
        heading = Element("h1")
        heading.append_text(self._visible_lexicon().phrase(self.rng))
        body.append(heading)
        for _ in range(self.rng.randint(4, 10)):
            section = Element("section")
            subheading = Element("h2")
            subheading.append_text(self._visible_lexicon().phrase(self.rng))
            section.append(subheading)
            for _ in range(self.rng.randint(1, 3)):
                paragraph = Element("p")
                paragraph.append_text(self._visible_lexicon().paragraph(self.rng))
                section.append(paragraph)
            body.append(section)

    # -- entry point -----------------------------------------------------------

    def generate_document(self, url: str | None = None) -> Document:
        """Generate a full page as a :class:`Document`."""
        title_profile = self.spec.element_profiles["document-title"]
        title_text, _ = self._accessibility_text(title_profile)
        document = new_document(lang=self.spec.declare_lang, url=url)
        if title_text:
            title_el = Element("title")
            title_el.append_text(title_text)
            head = document.head
            assert head is not None
            head.append(title_el)
        body = document.body
        assert body is not None

        self._add_visible_content(body)
        self._add_images(body, self.spec.element_profiles["image-alt"])
        self._add_buttons(body, self.spec.element_profiles["button-name"])
        self._add_links(body, self.spec.element_profiles["link-name"])
        self._add_frames(body, self.spec.element_profiles["frame-title"])
        self._add_form(body)
        self._add_objects(body, self.spec.element_profiles["object-alt"])
        self._add_summaries(body, self.spec.element_profiles["summary-name"])
        self._add_svgs(body, self.spec.element_profiles["svg-img-alt"])

        # No explicit invalidate_indexes() needed: the mutations above bump
        # the tree version, so document-level caches rebuild on next access.
        return document

    def generate_html(self, url: str | None = None) -> str:
        """Generate a page and serialize it to HTML."""
        return self.generate_document(url=url).to_html()

"""Statistical behaviour profiles for the synthetic web.

The live web is not reachable in the reproduction environment, so the page
generator is driven by *profiles* calibrated to the aggregate numbers the
paper reports:

* :class:`ElementProfile` — per accessibility element (Table 2): how often
  the element appears on a page, how often its accessibility attribute is
  missing or empty, and how long/wordy its text is when present.
* :class:`CountryProfile` — per country (Figures 2–5): how much of the
  visible text is in the native language, how the language of accessibility
  text is distributed (native / English / mixed), how often accessibility
  text is uninformative and with which discard-category mix, how deep the
  country's CrUX rank distribution reaches, and how aggressively sites block
  VPN traffic.

The calibration targets are the paper's numbers; absolute agreement is not
expected (the generator is a model, not the web), but the ordering and rough
magnitudes — which countries default to English, which elements are most
often missing, where mixed-language hints are common — are preserved, which
is what the benchmark harnesses check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.langid.languages import LANGCRUX_PAIRS, LanguageCountryPair, get_pair


@dataclass(frozen=True)
class ElementProfile:
    """Generation parameters for one accessibility element type.

    Attributes:
        element_id: Identifier matching the audit rule id (e.g. ``image-alt``).
        min_per_page / max_per_page: How many instances a generated page has.
        missing_rate: Probability that an instance lacks its accessibility
            attribute entirely (Table 2 "Missing %", mean column).
        empty_rate: Probability that the attribute is present but empty
            (Table 2 "Empty %", mean column).
        mean_words / std_words: Word count of the text when present
            (Table 2 "Word Count", mean column).
        visible_text_fallback: Whether the element typically carries visible
            inner text that screen readers fall back to (buttons, links),
            which is the paper's explanation for high missing rates.
    """

    element_id: str
    min_per_page: int
    max_per_page: int
    missing_rate: float
    empty_rate: float
    mean_words: float
    std_words: float
    visible_text_fallback: bool = False


#: Element profiles calibrated to Table 2 (mean missing/empty percentages and
#: mean word counts).  ``document-title`` is part of Table 1 but not Table 2;
#: titles are generated nearly always present.
ELEMENT_PROFILES: dict[str, ElementProfile] = {
    profile.element_id: profile
    for profile in (
        ElementProfile("button-name", 1, 8, missing_rate=0.6192, empty_rate=0.0036,
                       mean_words=3.83, std_words=2.0, visible_text_fallback=True),
        ElementProfile("document-title", 1, 1, missing_rate=0.02, empty_rate=0.01,
                       mean_words=6.0, std_words=3.0),
        ElementProfile("frame-title", 0, 2, missing_rate=0.7581, empty_rate=0.0021,
                       mean_words=2.54, std_words=1.5),
        ElementProfile("image-alt", 4, 40, missing_rate=0.1712, empty_rate=0.2539,
                       mean_words=3.67, std_words=2.5),
        ElementProfile("input-button-name", 0, 3, missing_rate=0.9390, empty_rate=0.0019,
                       mean_words=2.83, std_words=1.5, visible_text_fallback=True),
        ElementProfile("input-image-alt", 0, 1, missing_rate=0.3507, empty_rate=0.0485,
                       mean_words=1.41, std_words=0.8),
        ElementProfile("label", 0, 6, missing_rate=0.9855, empty_rate=0.0002,
                       mean_words=1.67, std_words=1.0, visible_text_fallback=True),
        ElementProfile("link-name", 5, 60, missing_rate=0.9596, empty_rate=0.0004,
                       mean_words=4.67, std_words=2.5, visible_text_fallback=True),
        ElementProfile("object-alt", 0, 1, missing_rate=0.9419, empty_rate=0.0026,
                       mean_words=2.49, std_words=1.5),
        ElementProfile("select-name", 0, 2, missing_rate=0.8984, empty_rate=0.0005,
                       mean_words=2.30, std_words=1.2, visible_text_fallback=True),
        ElementProfile("summary-name", 0, 3, missing_rate=0.9047, empty_rate=0.0017,
                       mean_words=1.18, std_words=0.6, visible_text_fallback=True),
        ElementProfile("svg-img-alt", 0, 6, missing_rate=0.9666, empty_rate=0.0015,
                       mean_words=1.88, std_words=1.0),
    )
}


#: Discard-category keys used by the uninformative-text mix.  They match the
#: category identifiers of :mod:`repro.core.filtering`.
DISCARD_CATEGORIES: tuple[str, ...] = (
    "single_word", "too_short", "generic_action", "placeholder", "dev_label",
    "file_name", "url_or_path", "label_number_pattern", "ordinal_phrase",
    "mixed_alnum", "emoji",
)


@dataclass(frozen=True)
class CountryProfile:
    """Per-country generation parameters.

    Attributes:
        country_code: ISO code (``bd``, ``cn`` ...), matching the paper's axes.
        language_code: Target language code.
        visible_native_mean / visible_native_std: Distribution of the share
            of visible text in the native language for qualifying sites
            (truncated to [0.5, 1.0] because sites below 50% are excluded by
            construction — Figure 2).
        a11y_native_rate / a11y_english_rate / a11y_mixed_rate: Language mix
            of *informative* accessibility texts (Figure 4).  Must sum to 1.
        low_native_a11y_site_rate: Fraction of sites that essentially never
            use the native language in accessibility text regardless of their
            visible content (the mismatch cluster of Figures 5 and 8; above
            0.4 for Bangladesh and India).
        uninformative_rate: Fraction of present, non-empty accessibility
            texts that are uninformative (Figure 3 totals).
        discard_mix: Relative weights of discard categories for this country
            (Figure 3 per-country breakdown).  Weights are normalised at use.
        rank_log10_mean / rank_log10_std: Location/scale of the site-rank
            distribution on a log10 scale (Appendix C / Figure 7: most
            countries concentrate under 50k, India reaches toward 1M).
        vpn_block_rate: Probability that a site refuses VPN/proxy traffic and
            must be replaced during crawling (Section 2, Limitations).
        global_variant_rate: Probability that a site serves an
            English-leaning global variant to out-of-country clients, which
            is what makes VPN-based localization matter.
    """

    country_code: str
    language_code: str
    visible_native_mean: float
    visible_native_std: float
    a11y_native_rate: float
    a11y_english_rate: float
    a11y_mixed_rate: float
    low_native_a11y_site_rate: float
    uninformative_rate: float
    discard_mix: Mapping[str, float]
    rank_log10_mean: float
    rank_log10_std: float
    vpn_block_rate: float = 0.02
    global_variant_rate: float = 0.6

    def __post_init__(self) -> None:
        total = self.a11y_native_rate + self.a11y_english_rate + self.a11y_mixed_rate
        if abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"{self.country_code}: accessibility language rates must sum to 1, got {total}"
            )
        unknown = set(self.discard_mix) - set(DISCARD_CATEGORIES)
        if unknown:
            raise ValueError(f"{self.country_code}: unknown discard categories {unknown}")

    @property
    def pair(self) -> LanguageCountryPair:
        return get_pair(self.country_code)


def _mix(single_word: float, too_short: float, generic_action: float, placeholder: float,
         dev_label: float, file_name: float, url_or_path: float, label_number: float,
         ordinal: float, mixed_alnum: float, emoji: float) -> dict[str, float]:
    return {
        "single_word": single_word,
        "too_short": too_short,
        "generic_action": generic_action,
        "placeholder": placeholder,
        "dev_label": dev_label,
        "file_name": file_name,
        "url_or_path": url_or_path,
        "label_number_pattern": label_number,
        "ordinal_phrase": ordinal,
        "mixed_alnum": mixed_alnum,
        "emoji": emoji,
    }


#: Country profiles.  Calibration anchors (from the paper):
#:   Figure 3 — single-word share: th 33%, ru 22.2%, gr 18.0%, in 17.1%,
#:     eg 10.5%, bd 6.9%; too-short: ru 4.26%, th 4.24%, il 4.03%, in 3.6%;
#:     URL/path: hk 3.8%, kr 3.5%, ru 3.17%.
#:   Figure 4 — English share of informative texts: bd 79% (highest), strong
#:     in eg/th/gr; mixed share: gr 35%, th 34%, hk 30%, >20% in cn/ru/jp/in.
#:   Figure 5 — >40% of bd/in sites have <10% native accessibility text;
#:     th/cn/hk above 25%; jp/il below 10%.
#:   Figure 7 — ranks concentrate below 50k except India (toward 1M).
COUNTRY_PROFILES: dict[str, CountryProfile] = {
    profile.country_code: profile
    for profile in (
        CountryProfile(
            "bd", "bn",
            visible_native_mean=0.88, visible_native_std=0.10,
            a11y_native_rate=0.10, a11y_english_rate=0.79, a11y_mixed_rate=0.11,
            low_native_a11y_site_rate=0.45,
            uninformative_rate=0.22,
            discard_mix=_mix(6.9, 1.5, 4.0, 3.0, 1.5, 1.0, 1.5, 1.0, 0.8, 1.0, 0.5),
            rank_log10_mean=4.1, rank_log10_std=0.45,
        ),
        CountryProfile(
            "cn", "zh",
            visible_native_mean=0.90, visible_native_std=0.08,
            a11y_native_rate=0.35, a11y_english_rate=0.42, a11y_mixed_rate=0.23,
            low_native_a11y_site_rate=0.28,
            uninformative_rate=0.28,
            discard_mix=_mix(14.0, 2.0, 5.0, 3.5, 2.0, 1.5, 2.0, 1.2, 0.8, 1.5, 0.8),
            rank_log10_mean=4.2, rank_log10_std=0.45,
        ),
        CountryProfile(
            "dz", "ar",
            visible_native_mean=0.82, visible_native_std=0.12,
            a11y_native_rate=0.30, a11y_english_rate=0.55, a11y_mixed_rate=0.15,
            low_native_a11y_site_rate=0.30,
            uninformative_rate=0.24,
            discard_mix=_mix(12.0, 2.0, 4.0, 3.0, 1.5, 1.2, 1.5, 1.0, 0.7, 1.2, 0.5),
            rank_log10_mean=4.3, rank_log10_std=0.5,
        ),
        CountryProfile(
            "eg", "arz",
            visible_native_mean=0.85, visible_native_std=0.11,
            a11y_native_rate=0.18, a11y_english_rate=0.67, a11y_mixed_rate=0.15,
            low_native_a11y_site_rate=0.32,
            uninformative_rate=0.25,
            discard_mix=_mix(10.5, 2.2, 4.5, 3.0, 1.5, 1.2, 1.8, 1.0, 0.8, 1.2, 0.6),
            rank_log10_mean=4.2, rank_log10_std=0.45,
        ),
        CountryProfile(
            "gr", "el",
            visible_native_mean=0.84, visible_native_std=0.11,
            a11y_native_rate=0.20, a11y_english_rate=0.45, a11y_mixed_rate=0.35,
            low_native_a11y_site_rate=0.22,
            uninformative_rate=0.32,
            discard_mix=_mix(18.0, 2.5, 5.0, 3.5, 2.0, 1.5, 2.0, 1.2, 1.0, 1.5, 0.8),
            rank_log10_mean=4.2, rank_log10_std=0.45,
        ),
        CountryProfile(
            "hk", "yue",
            visible_native_mean=0.80, visible_native_std=0.13,
            a11y_native_rate=0.28, a11y_english_rate=0.42, a11y_mixed_rate=0.30,
            low_native_a11y_site_rate=0.27,
            uninformative_rate=0.27,
            discard_mix=_mix(13.0, 2.5, 5.0, 3.0, 2.0, 1.8, 3.8, 1.2, 1.0, 1.8, 1.0),
            rank_log10_mean=4.1, rank_log10_std=0.4,
        ),
        CountryProfile(
            "il", "he",
            visible_native_mean=0.86, visible_native_std=0.10,
            a11y_native_rate=0.52, a11y_english_rate=0.33, a11y_mixed_rate=0.15,
            low_native_a11y_site_rate=0.08,
            uninformative_rate=0.26,
            discard_mix=_mix(14.0, 4.03, 4.5, 3.0, 1.8, 1.2, 1.5, 1.0, 0.8, 1.2, 0.8),
            rank_log10_mean=4.1, rank_log10_std=0.4,
        ),
        CountryProfile(
            "in", "hi",
            visible_native_mean=0.78, visible_native_std=0.14,
            a11y_native_rate=0.15, a11y_english_rate=0.62, a11y_mixed_rate=0.23,
            low_native_a11y_site_rate=0.43,
            uninformative_rate=0.30,
            discard_mix=_mix(17.1, 3.6, 5.0, 3.5, 2.0, 1.5, 2.0, 1.2, 1.0, 1.5, 0.8),
            rank_log10_mean=5.0, rank_log10_std=0.6,
        ),
        CountryProfile(
            "jp", "ja",
            visible_native_mean=0.92, visible_native_std=0.07,
            a11y_native_rate=0.50, a11y_english_rate=0.27, a11y_mixed_rate=0.23,
            low_native_a11y_site_rate=0.07,
            uninformative_rate=0.25,
            discard_mix=_mix(12.0, 2.0, 5.0, 3.5, 2.0, 1.5, 2.0, 1.2, 1.0, 1.5, 1.0),
            rank_log10_mean=4.1, rank_log10_std=0.4,
        ),
        CountryProfile(
            "kr", "ko",
            visible_native_mean=0.90, visible_native_std=0.08,
            a11y_native_rate=0.42, a11y_english_rate=0.40, a11y_mixed_rate=0.18,
            low_native_a11y_site_rate=0.15,
            uninformative_rate=0.27,
            discard_mix=_mix(13.0, 2.5, 5.5, 3.0, 2.0, 1.8, 3.5, 1.2, 1.0, 1.8, 1.0),
            rank_log10_mean=4.1, rank_log10_std=0.4,
        ),
        CountryProfile(
            "ru", "ru",
            visible_native_mean=0.89, visible_native_std=0.09,
            a11y_native_rate=0.40, a11y_english_rate=0.38, a11y_mixed_rate=0.22,
            low_native_a11y_site_rate=0.18,
            uninformative_rate=0.33,
            discard_mix=_mix(22.2, 4.26, 5.0, 3.0, 2.0, 1.5, 3.17, 1.2, 1.0, 1.5, 0.8),
            rank_log10_mean=4.2, rank_log10_std=0.45,
        ),
        CountryProfile(
            "th", "th",
            visible_native_mean=0.87, visible_native_std=0.10,
            a11y_native_rate=0.16, a11y_english_rate=0.50, a11y_mixed_rate=0.34,
            low_native_a11y_site_rate=0.30,
            uninformative_rate=0.42,
            discard_mix=_mix(33.0, 4.24, 5.0, 3.5, 2.0, 1.5, 2.0, 1.2, 1.0, 1.5, 0.8),
            rank_log10_mean=4.1, rank_log10_std=0.4,
        ),
    )
}


def get_profile(country_code: str) -> CountryProfile:
    """Profile for ``country_code``; raises ``KeyError`` when unknown."""
    return COUNTRY_PROFILES[country_code]


def all_country_codes() -> tuple[str, ...]:
    """Country codes with profiles, in the paper's canonical order."""
    return tuple(pair.country_code for pair in LANGCRUX_PAIRS)

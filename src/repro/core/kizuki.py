"""Kizuki: language-aware accessibility auditing.

Lighthouse marks an ``alt`` attribute as passing regardless of whether its
content matches the language of the surrounding interface.  Kizuki (named
after the Japanese word for "awareness") extends the ``image-alt`` audit to
verify that the description is written in the same language as the page's
visible content.

Two entry points mirror how the paper uses Kizuki:

* :class:`KizukiImageAltRule` — a drop-in replacement for the stock
  ``image-alt`` rule, usable with :class:`~repro.audit.engine.AuditEngine`
  on any document (this is the "Lighthouse extension" deliverable);
* :class:`Kizuki` — dataset-scale re-scoring (Figure 6): for sites that pass
  the original audit, recompute the accessibility score with the
  language-aware check in place and compare the score distributions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import perf
from repro.audit.engine import AuditEngine
from repro.audit.report import AuditReport, ElementOutcome, RuleResult
from repro.audit.rules import get_rule
from repro.audit.rules.base import AuditContext, AuditRule
from repro.audit.rules.image_alt import ImageAltRule
from repro.audit.scoring import DEFAULT_WEIGHTS, lighthouse_score
from repro.core.dataset import LangCrUXDataset, SiteRecord
from repro.core.filtering import classify_text
from repro.html.dom import Document, Element
from repro.html.index import DocumentAccessor, ensure_index
from repro.html.visibility import extract_visible_text
from repro.langid.classify import (
    ClassificationThresholds,
    TextLanguageClass,
    classify_text_language,
)
from repro.langid.detector import ScriptDetector
from repro.langid.languages import Language, get_language


def _page_text(document: AuditContext) -> str:
    """Visible text of the page behind ``document`` (a Document or accessor).

    Accessors memoize the document text, so the language-context computation
    of a language-aware rule costs nothing when extraction or another rule
    already extracted the same page's text through the same index.
    """
    if isinstance(document, DocumentAccessor):
        return document.document_text()
    return extract_visible_text(document)


@dataclass(frozen=True)
class KizukiConfig:
    """Tunable behaviour of the language-aware check.

    Attributes:
        native_page_threshold: A page counts as "native" (and thus requires
            native-language accessibility text) when at least this share of
            its visible text is in the target language (0.5, the paper's
            content threshold).
        accept_mixed: Whether mixed native/English text counts as consistent
            (it does: mixed hints at least contain the native language).
        skip_uninformative: Whether texts discarded by the Appendix H filter
            are exempt from the language check.  Defaults to true: such texts
            are flagged by the filtering analysis for being uninformative, so
            Kizuki's language check concentrates on texts that carry meaning.
        thresholds: Per-text classification thresholds.
        extended_rules: Audits that receive the language-aware check.  The
            paper's evaluation extends ``image-alt`` only (the default); the
            released tool is documented as extensible with custom tests, and
            any of the twelve language-sensitive audits can be listed here
            (e.g. ``("image-alt", "button-name", "link-name")``).
    """

    native_page_threshold: float = 0.5
    accept_mixed: bool = True
    skip_uninformative: bool = True
    thresholds: ClassificationThresholds = ClassificationThresholds()
    extended_rules: tuple[str, ...] = ("image-alt",)


class KizukiImageAltRule(ImageAltRule):
    """The ``image-alt`` audit with the language-consistency check added.

    Behaviour relative to the stock rule:

    * missing ``alt`` still fails, ``alt=""`` still passes (the base
      Lighthouse semantics are preserved);
    * a non-empty ``alt`` additionally fails, with reason
      ``"language-mismatch"``, when the page's visible content is
      predominantly in the target language but the alt text contains none of
      it.
    """

    def __init__(self, language: Language | str, config: KizukiConfig | None = None) -> None:
        self.language = get_language(language) if isinstance(language, str) else language
        self.config = config or KizukiConfig()
        self._detector = ScriptDetector(self.language)
        self._page_native_share: float | None = None

    # -- language context -------------------------------------------------------

    def _page_share(self, document: AuditContext) -> float:
        if self._page_native_share is not None:
            return self._page_native_share
        return self._detector.share(_page_text(document)).native

    def text_is_consistent(self, text: str, page_native_share: float) -> bool:
        """Whether ``text`` is language-consistent with the page."""
        if page_native_share < self.config.native_page_threshold:
            return True
        if self.config.skip_uninformative and not classify_text(text).informative:
            return True
        outcome = classify_text_language(text, self.language, self.config.thresholds)
        if outcome is TextLanguageClass.NATIVE:
            return True
        if outcome is TextLanguageClass.MIXED and self.config.accept_mixed:
            return True
        return False

    # -- AuditRule hooks -----------------------------------------------------------

    def text_passes(self, text: str, element: Element,
                    document: AuditContext) -> tuple[bool, str]:
        if self.text_is_consistent(text, self._page_share(document)):
            return True, "ok"
        return False, "language-mismatch"

    def evaluate(self, document: AuditContext) -> RuleResult:
        # Compute the page context once per document rather than per image;
        # the accessor's text memo shares it with every other consumer.
        self._page_native_share = self._detector.share(_page_text(document)).native
        try:
            return super().evaluate(document)
        finally:
            self._page_native_share = None


class LanguageAwareRule(AuditRule):
    """A language-aware wrapper around any of the twelve base audit rules.

    This is the extension mechanism the paper's released tool documents:
    ``LanguageAwareRule(get_rule("button-name"), "th")`` behaves exactly like
    the stock ``button-name`` audit except that a non-empty accessible name
    on a predominantly-native page must contain the native language.  Kizuki
    uses it for every rule listed in :attr:`KizukiConfig.extended_rules`
    beyond ``image-alt`` (which keeps its dedicated subclass so the decorative
    ``alt=""`` semantics stay explicit).
    """

    def __init__(self, base_rule: AuditRule, language: Language | str,
                 config: KizukiConfig | None = None) -> None:
        self.base_rule = base_rule
        self.language = get_language(language) if isinstance(language, str) else language
        self.config = config or KizukiConfig()
        self.rule_id = base_rule.rule_id
        self.description = f"{base_rule.description} (language-aware)"
        self.fails_on_missing = base_rule.fails_on_missing
        self.fails_on_empty = base_rule.fails_on_empty
        self._detector = ScriptDetector(self.language)
        self._page_native_share: float | None = None

    # -- delegation to the wrapped rule --------------------------------------

    def select_targets(self, document: AuditContext) -> list[Element]:
        return self.base_rule.select_targets(document)

    def target_text(self, element: Element, document: AuditContext) -> str | None:
        return self.base_rule.target_text(element, document)

    # -- the language check ----------------------------------------------------

    def text_is_consistent(self, text: str, page_native_share: float) -> bool:
        if page_native_share < self.config.native_page_threshold:
            return True
        if self.config.skip_uninformative and not classify_text(text).informative:
            return True
        outcome = classify_text_language(text, self.language, self.config.thresholds)
        if outcome is TextLanguageClass.NATIVE:
            return True
        return outcome is TextLanguageClass.MIXED and self.config.accept_mixed

    def text_passes(self, text: str, element: Element,
                    document: AuditContext) -> tuple[bool, str]:
        passed, reason = self.base_rule.text_passes(text, element, document)
        if not passed:
            return passed, reason
        share = self._page_native_share
        if share is None:
            share = self._detector.share(_page_text(document)).native
        if self.text_is_consistent(text, share):
            return True, "ok"
        return False, "language-mismatch"

    def evaluate(self, document: AuditContext) -> RuleResult:
        self._page_native_share = self._detector.share(_page_text(document)).native
        try:
            return super().evaluate(document)
        finally:
            self._page_native_share = None


class Kizuki:
    """Language-aware auditing and re-scoring for one target language."""

    def __init__(self, language: Language | str, config: KizukiConfig | None = None) -> None:
        self.language = get_language(language) if isinstance(language, str) else language
        self.config = config or KizukiConfig()
        self.rule = KizukiImageAltRule(self.language, self.config)
        self._base_engine = AuditEngine()
        engine = self._base_engine
        for rule_id in self.config.extended_rules:
            if rule_id == "image-alt":
                engine = engine.with_rule_replaced(self.rule)
            else:
                engine = engine.with_rule_replaced(
                    LanguageAwareRule(get_rule(rule_id), self.language, self.config))
        self._engine = engine

    # -- document-level API -------------------------------------------------------

    @property
    def engine(self) -> AuditEngine:
        """The audit engine with the language-aware ``image-alt`` rule."""
        return self._engine

    def audit_document(self, document: AuditContext) -> AuditReport:
        return self._engine.audit_document(document)

    def audit_html(self, markup: str, url: str | None = None) -> AuditReport:
        return self._engine.audit_html(markup, url=url)

    def score_shift(self, document: Document) -> tuple[float, float]:
        """(old, new) Lighthouse scores of one document.

        Both audits run over the document's cached
        :class:`~repro.html.index.DocumentIndex`, so the base-vs-extended
        double audit traverses the page once instead of twice.
        """
        with perf.stage("kizuki"):
            context = ensure_index(document)
            old = lighthouse_score(self._base_engine.audit_document(context))
            new = lighthouse_score(self.audit_document(context), proportional=False)
            return old, new

    # -- dataset-level API (Figure 6) ------------------------------------------------

    def image_alt_consistency(self, record: SiteRecord) -> RuleResult:
        """Re-evaluate the ``image-alt`` audit of a stored site record.

        Works from the dataset (texts + missing/empty counts + the stored
        visible-language share) without re-crawling.  The returned result's
        ``score`` is the fraction of images that pass the language-aware
        audit; ``passed`` requires all of them to pass.
        """
        observation = record.element("image-alt")
        if observation.total == 0:
            return RuleResult(rule_id="image-alt", applicable=False, passed=True, score=1.0)
        outcomes: list[ElementOutcome] = []
        for _ in range(observation.missing):
            outcomes.append(ElementOutcome("img", None, passed=False, reason="missing"))
        for _ in range(observation.empty):
            outcomes.append(ElementOutcome("img", "", passed=True, reason="empty"))
        for text in observation.texts:
            consistent = self.rule.text_is_consistent(text, record.visible_native_share)
            outcomes.append(ElementOutcome("img", text, passed=consistent,
                                           reason="ok" if consistent else "language-mismatch"))
        passing = sum(1 for outcome in outcomes if outcome.passed)
        return RuleResult(
            rule_id="image-alt",
            applicable=True,
            passed=passing == len(outcomes),
            score=passing / len(outcomes),
            outcomes=tuple(outcomes),
        )

    def rescore_record(self, record: SiteRecord) -> tuple[float, float]:
        """(old, new) accessibility scores of a stored site record.

        The old score aggregates the stored base audit results binarily, the
        Lighthouse behaviour.  The new score keeps every other audit's binary
        outcome but replaces the ``image-alt`` contribution with the
        *fraction* of images whose alt text passes the language-aware check,
        so that a single mismatching image degrades rather than zeroes the
        category — the proportional scoring choice documented in DESIGN.md.
        """
        with perf.stage("kizuki"):
            return self._rescore_record(record)

    def _rescore_record(self, record: SiteRecord) -> tuple[float, float]:
        weights = DEFAULT_WEIGHTS
        total_weight = 0.0
        old_achieved = 0.0
        new_achieved = 0.0
        kizuki_result = self.image_alt_consistency(record)
        for rule_id, result in record.audit.items():
            if not result.get("applicable", False):
                continue
            weight = weights.get(rule_id, 1.0)
            total_weight += weight
            old_value = 1.0 if result.get("passed", False) else 0.0
            if rule_id == "image-alt" and kizuki_result.applicable:
                new_value = kizuki_result.score
            else:
                new_value = old_value
            old_achieved += weight * old_value
            new_achieved += weight * new_value
        if total_weight == 0:
            return 100.0, 100.0
        return 100.0 * old_achieved / total_weight, 100.0 * new_achieved / total_weight


@dataclass(frozen=True)
class RescoreSummary:
    """Aggregate of a Figure 6 style re-scoring run."""

    sites: int
    old_scores: tuple[float, ...]
    new_scores: tuple[float, ...]

    def fraction_above(self, threshold: float, *, new: bool) -> float:
        scores = self.new_scores if new else self.old_scores
        if not scores:
            return 0.0
        return sum(1 for score in scores if score > threshold) / len(scores)

    def fraction_perfect(self, *, new: bool) -> float:
        scores = self.new_scores if new else self.old_scores
        if not scores:
            return 0.0
        return sum(1 for score in scores if score >= 100.0 - 1e-9) / len(scores)


class RescoreAccumulator:
    """Streaming core of the Figure 6 re-scoring (:func:`rescore_dataset`).

    Records are re-scored as they arrive (one pass, e.g. while a dataset's
    JSONL shards stream in) and the per-country score lists are retained, so
    one accumulation can answer a :class:`RescoreSummary` for *any* country
    combination afterwards — the serving layer's ``kizuki`` endpoint
    parameterizes on countries per request.
    """

    def __init__(self, *, config: KizukiConfig | None = None,
                 exclude_original_failures: bool = True) -> None:
        self.config = config
        self.exclude_original_failures = exclude_original_failures
        self._kizuki_by_language: dict[str, Kizuki] = {}
        self._old_scores: dict[str, list[float]] = {}
        self._new_scores: dict[str, list[float]] = {}

    def add(self, record: SiteRecord) -> bool:
        """Re-score one record; returns whether it was eligible."""
        if self.exclude_original_failures and not record.audit_passed("image-alt"):
            return False
        kizuki = self._kizuki_by_language.setdefault(
            record.language_code, Kizuki(record.language_code, self.config))
        old, new = kizuki.rescore_record(record)
        self._old_scores.setdefault(record.country_code, []).append(old)
        self._new_scores.setdefault(record.country_code, []).append(new)
        return True

    def countries(self) -> tuple[str, ...]:
        """Countries that contributed at least one eligible site."""
        return tuple(sorted(self._old_scores))

    def summary(self, country_codes: tuple[str, ...] = ("bd", "th")) -> RescoreSummary:
        """The :class:`RescoreSummary` for ``country_codes``, in that order."""
        old_scores: list[float] = []
        new_scores: list[float] = []
        for country in country_codes:
            old_scores.extend(self._old_scores.get(country, ()))
            new_scores.extend(self._new_scores.get(country, ()))
        return RescoreSummary(sites=len(old_scores), old_scores=tuple(old_scores),
                              new_scores=tuple(new_scores))


def rescore_dataset(dataset: LangCrUXDataset, country_codes: tuple[str, ...] = ("bd", "th"),
                    *, config: KizukiConfig | None = None,
                    exclude_original_failures: bool = True) -> RescoreSummary:
    """Apply Kizuki re-scoring to the sites of ``country_codes`` (Figure 6).

    Following the paper, sites that already fail the original Lighthouse
    ``image-alt`` audit (because of missing alt attributes) are excluded when
    ``exclude_original_failures`` is true, so the comparison isolates the
    effect of the language-aware check.
    """
    accumulator = RescoreAccumulator(config=config,
                                     exclude_original_failures=exclude_original_failures)
    for country in dict.fromkeys(country_codes):
        for record in dataset.for_country(country):
            accumulator.add(record)
    return accumulator.summary(country_codes)

"""Language and country selection (Section 2 of the paper).

The paper starts from a pool of 26 widely spoken non-Latin-script languages
and applies two inclusion criteria:

1. at least 10,000 websites with 50% or more visible textual content in the
   target language, and
2. inclusion in the CrUX dataset with sufficient traffic.

Twelve language–country pairs survive; together their languages are spoken
by over 3.19 billion people, about 39.5% of the global population.  This
module re-implements the selection procedure so it can be re-run over the
synthetic web (with a scaled-down website threshold) and so the paper's
headline selection numbers can be regenerated (benchmark E14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.langid.languages import (
    EXCLUDED_PAIRS,
    LANGCRUX_PAIRS,
    LanguageCountryPair,
    total_speakers_millions,
)

#: World population (in millions) used to express the speaker base as a share
#: of the global population; the paper's 39.5% figure implies roughly this
#: denominator for 3.19 billion speakers.
WORLD_POPULATION_MILLIONS = 8_075.0


@dataclass(frozen=True)
class SelectionCriteria:
    """The inclusion criteria of Section 2.

    Attributes:
        min_qualifying_websites: Minimum number of websites whose visible
            content is at least ``min_native_share`` in the target language
            (10,000 in the paper; scaled down for synthetic runs).
        min_native_share: The visible-content threshold (0.5 in the paper).
        require_crux_presence: Whether the pair must appear in the CrUX
            ranking at all.
    """

    min_qualifying_websites: int = 10_000
    min_native_share: float = 0.5
    require_crux_presence: bool = True


@dataclass(frozen=True)
class PairSelection:
    """Selection outcome for one candidate language–country pair."""

    pair: LanguageCountryPair
    qualifying_websites: int
    in_crux: bool
    selected: bool
    reason: str


@dataclass(frozen=True)
class SelectionReport:
    """Outcome of the full selection procedure."""

    selections: tuple[PairSelection, ...]

    @property
    def selected_pairs(self) -> tuple[LanguageCountryPair, ...]:
        return tuple(item.pair for item in self.selections if item.selected)

    @property
    def excluded_pairs(self) -> tuple[LanguageCountryPair, ...]:
        return tuple(item.pair for item in self.selections if not item.selected)

    def total_speakers_millions(self) -> float:
        return total_speakers_millions(self.selected_pairs)

    def global_population_share(self) -> float:
        """Share of the global population speaking a selected language (0–1)."""
        return self.total_speakers_millions() / WORLD_POPULATION_MILLIONS


def select_pairs(candidate_counts: Mapping[str, int],
                 criteria: SelectionCriteria = SelectionCriteria(),
                 *, crux_presence: Mapping[str, bool] | None = None) -> SelectionReport:
    """Apply the inclusion criteria to candidate pairs.

    Args:
        candidate_counts: Number of qualifying websites per candidate
            country code (keys are country codes of
            :data:`~repro.langid.languages.LANGCRUX_PAIRS` and
            :data:`~repro.langid.languages.EXCLUDED_PAIRS`).
        criteria: The thresholds to apply.
        crux_presence: Whether each candidate appears in CrUX; pairs absent
            from the mapping are assumed present.

    Returns:
        A :class:`SelectionReport` with per-pair decisions.
    """
    crux_presence = dict(crux_presence or {})
    selections: list[PairSelection] = []
    for pair in LANGCRUX_PAIRS + EXCLUDED_PAIRS:
        count = int(candidate_counts.get(pair.country_code, 0))
        in_crux = bool(crux_presence.get(pair.country_code, True))
        if criteria.require_crux_presence and not in_crux:
            selections.append(PairSelection(pair, count, in_crux, False, "not in CrUX"))
            continue
        if count < criteria.min_qualifying_websites:
            selections.append(PairSelection(
                pair, count, in_crux, False,
                f"only {count} qualifying websites (< {criteria.min_qualifying_websites})"))
            continue
        selections.append(PairSelection(pair, count, in_crux, True, "meets criteria"))
    return SelectionReport(selections=tuple(selections))


def paper_selection_report() -> SelectionReport:
    """The selection as published: the 12 pairs in, the named exclusions out.

    Candidate counts are set to nominal values consistent with the paper's
    narrative (selected pairs at or above 10,000 qualifying sites, the
    explicitly excluded pairs below), so the report reproduces the published
    selection and its aggregate speaker statistics.
    """
    counts = {pair.country_code: 10_000 for pair in LANGCRUX_PAIRS}
    counts.update({pair.country_code: 4_000 for pair in EXCLUDED_PAIRS})
    return select_pairs(counts)

"""The LangCrUX dataset model.

A :class:`LangCrUXDataset` is a collection of :class:`SiteRecord` objects,
one per website, carrying everything the paper's analyses consume:

* identification (domain, country, language, CrUX rank);
* the language composition of the visible text;
* per accessibility element: how many instances exist, how many lack
  metadata, how many carry empty metadata, and the non-empty texts
  themselves;
* the base (language-unaware) audit results used by the Kizuki re-scoring.

Records serialize to JSON Lines so a dataset built once (the expensive crawl
step) can be re-analysed many times, mirroring how the paper releases
LangCrUX as a standalone artifact.  Persistence is crash-safe throughout:
:class:`StreamingDatasetWriter` appends records incrementally to a partial
file and commits it atomically, and :meth:`LangCrUXDataset.save_jsonl` is a
one-shot convenience over the same writer, so a crashed run can never leave
a truncated dataset under the final path.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path
from types import TracebackType
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.elements import ELEMENT_IDS
from repro.core.extraction import PageExtraction
from repro.core.filtering import classify_text
from repro.core.language_mix import classify_texts, pooled_native_share, LanguageMixSummary
from repro.langid.detector import ScriptDetector


@dataclass
class ElementObservation:
    """Aggregate of one accessibility element over one site.

    Attributes:
        element_id: The element (Table 1 identifier).
        total: Number of element instances seen on the site's crawled pages.
        missing: Instances with no explicit accessibility metadata.
        empty: Instances whose metadata is present but blank.
        texts: The non-empty accessibility texts, in document order.
    """

    element_id: str
    total: int = 0
    missing: int = 0
    empty: int = 0
    texts: list[str] = field(default_factory=list)

    @property
    def with_text(self) -> int:
        return len(self.texts)

    @property
    def missing_pct(self) -> float:
        """Missing instances as a percentage of all instances (Table 2)."""
        return 100.0 * self.missing / self.total if self.total else 0.0

    @property
    def empty_pct(self) -> float:
        """Empty instances as a percentage of all instances (Table 2)."""
        return 100.0 * self.empty / self.total if self.total else 0.0


@dataclass
class SiteRecord:
    """One website of the LangCrUX dataset."""

    domain: str
    country_code: str
    language_code: str
    rank: int
    visible_text_chars: int = 0
    visible_native_share: float = 0.0
    visible_english_share: float = 0.0
    declared_lang: str | None = None
    served_variant: str | None = None
    elements: dict[str, ElementObservation] = field(default_factory=dict)
    audit: dict[str, dict] = field(default_factory=dict)

    # -- accessors -------------------------------------------------------------

    def element(self, element_id: str) -> ElementObservation:
        """Observation for ``element_id`` (an empty one when never seen)."""
        return self.elements.get(element_id, ElementObservation(element_id=element_id))

    def accessibility_texts(self, element_id: str | None = None) -> list[str]:
        """All non-empty accessibility texts, optionally for one element."""
        if element_id is not None:
            return list(self.element(element_id).texts)
        texts: list[str] = []
        for eid in ELEMENT_IDS:
            texts.extend(self.element(eid).texts)
        return texts

    def informative_texts(self, element_id: str | None = None) -> list[str]:
        """Accessibility texts surviving the Appendix H filter."""
        return [text for text in self.accessibility_texts(element_id)
                if classify_text(text).informative]

    def accessibility_language_mix(self, *, informative_only: bool = True) -> LanguageMixSummary:
        """Per-text native/English/mixed counts (Figure 4)."""
        texts = self.informative_texts() if informative_only else self.accessibility_texts()
        return classify_texts(texts, self.language_code)

    def accessibility_native_share(self, *, informative_only: bool = False) -> float:
        """Character-level native share of the pooled accessibility text.

        This is the y-axis of Figures 5 and 8: how much of the site's
        accessibility text is written in the native language.
        """
        texts = self.informative_texts() if informative_only else self.accessibility_texts()
        return pooled_native_share(texts, self.language_code)

    def audit_passed(self, rule_id: str) -> bool:
        """Whether the base audit passed ``rule_id`` (not-applicable = pass)."""
        result = self.audit.get(rule_id)
        if not result or not result.get("applicable", False):
            return True
        return bool(result.get("passed", False))

    # -- construction ---------------------------------------------------------------

    @classmethod
    def from_extraction(cls, extraction: PageExtraction, *, domain: str, country_code: str,
                        language_code: str, rank: int, served_variant: str | None = None,
                        audit: dict[str, dict] | None = None) -> "SiteRecord":
        """Build a record from a (merged) page extraction."""
        detector = ScriptDetector(language_code)
        share = detector.share(extraction.visible_text)
        record = cls(
            domain=domain,
            country_code=country_code,
            language_code=language_code,
            rank=rank,
            visible_text_chars=share.textual_chars,
            visible_native_share=share.native,
            visible_english_share=share.english,
            declared_lang=extraction.declared_lang,
            served_variant=served_variant,
            audit=audit or {},
        )
        for element_id, observations in extraction.by_element().items():
            aggregate = ElementObservation(element_id=element_id)
            for observation in observations:
                aggregate.total += 1
                if observation.is_missing:
                    aggregate.missing += 1
                elif observation.is_empty:
                    aggregate.empty += 1
                else:
                    aggregate.texts.append(observation.text or "")
            if aggregate.total:
                record.elements[element_id] = aggregate
        return record

    # -- serialization ---------------------------------------------------------------

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["elements"] = {eid: asdict(obs) for eid, obs in self.elements.items()}
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SiteRecord":
        elements = {
            eid: ElementObservation(**observation)
            for eid, observation in payload.get("elements", {}).items()
        }
        fields = {key: value for key, value in payload.items() if key != "elements"}
        return cls(elements=elements, **fields)


class LangCrUXDataset:
    """A collection of :class:`SiteRecord` with query and persistence helpers."""

    def __init__(self, records: Iterable[SiteRecord] = ()) -> None:
        self._records: list[SiteRecord] = list(records)

    # -- collection basics -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[SiteRecord]:
        return iter(self._records)

    def add(self, record: SiteRecord) -> None:
        self._records.append(record)

    def extend(self, records: Iterable[SiteRecord]) -> None:
        self._records.extend(records)

    @property
    def records(self) -> Sequence[SiteRecord]:
        return tuple(self._records)

    # -- queries ------------------------------------------------------------------

    def countries(self) -> tuple[str, ...]:
        return tuple(sorted({record.country_code for record in self._records}))

    def for_country(self, country_code: str) -> "LangCrUXDataset":
        return LangCrUXDataset(record for record in self._records
                               if record.country_code == country_code)

    def filter(self, predicate: Callable[[SiteRecord], bool]) -> "LangCrUXDataset":
        return LangCrUXDataset(record for record in self._records if predicate(record))

    def sites_per_country(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self._records:
            counts[record.country_code] = counts.get(record.country_code, 0) + 1
        return counts

    def get(self, domain: str) -> SiteRecord | None:
        return next((record for record in self._records if record.domain == domain), None)

    # -- persistence -----------------------------------------------------------------

    def save_jsonl(self, path: str | Path) -> int:
        """Write the dataset as JSON Lines; returns the number of records.

        The write is atomic: records go to a partial file in the same
        directory which is renamed over ``path`` only once every record is
        out, so readers see either the previous complete file or the new
        complete file — never a truncation.
        """
        with StreamingDatasetWriter(path) as writer:
            writer.write_many(self._records)
        return len(self._records)

    @classmethod
    def iter_jsonl(cls, path: str | Path, *, skip_corrupt: bool = False) -> Iterator[SiteRecord]:
        """Yield records from a JSONL file one line at a time.

        This is the streaming complement of :meth:`load_jsonl`: consumers
        that fold records into incremental aggregates (the serving layer's
        loader) never need the whole dataset in memory at once.

        Args:
            path: The JSONL file to read.
            skip_corrupt: Skip lines that are not valid JSON instead of
                raising.
        """
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    if skip_corrupt:
                        continue
                    raise
                yield SiteRecord.from_dict(payload)

    @classmethod
    def load_jsonl(cls, path: str | Path, *, skip_corrupt: bool = False) -> "LangCrUXDataset":
        """Load a dataset previously written by :meth:`save_jsonl`.

        Args:
            path: The JSONL file to read.
            skip_corrupt: Skip lines that are not valid JSON instead of
                raising.  Use this to salvage the intact prefix of a partial
                file left behind by a crashed streaming run (only its last
                line can be torn; committed datasets are always complete).
        """
        return cls(cls.iter_jsonl(path, skip_corrupt=skip_corrupt))


class StreamingDatasetWriter:
    """Appends :class:`SiteRecord` JSONL to disk incrementally, committing atomically.

    Records are written to a uniquely named ``.<name>.<random>.partial``
    file next to the destination (unique per writer, so concurrent runs
    targeting the same path cannot corrupt each other's partials — each
    commit is complete, last commit wins); a successful :meth:`close`
    flushes, fsyncs and atomically renames it onto the final path.  Until
    then the destination keeps its previous content (or stays absent), so a
    crash mid-run can never truncate a dataset — it merely leaves the
    partial file behind, whose intact lines
    :meth:`LangCrUXDataset.load_jsonl` can salvage with ``skip_corrupt``.

    The line format is byte-identical to :meth:`LangCrUXDataset.save_jsonl`
    (which is itself implemented on this writer), so streaming a pipeline's
    shards as they finish produces exactly the file an in-memory run would
    have saved afterwards.

    Sections
    --------
    Writers that stream one logical group at a time — the pipeline streams
    per-country record runs, window by window — can wrap each group in
    :meth:`begin_section` / :meth:`end_section`.  Sections are a write-order
    contract, not a file format: they add no bytes, they merely assert that
    a group's records land contiguously (sections cannot interleave) and
    that the writer never *commits* mid-group — :meth:`close` refuses while
    a section is open, so a crash or bug between a section's windows can
    only ever abandon the partial file, never publish a dataset with a
    half-written group.  With ``fsync="section"`` each :meth:`end_section`
    additionally flushes and fsyncs the partial file, bounding how much a
    host crash can lose to the current section.

    Usable as a context manager: commits on clean exit, discards the partial
    file when the block raises.

    Args:
        path: The destination JSONL path.
        fsync: Durability policy — ``"commit"`` (the default) fsyncs once
            before the atomic rename; ``"section"`` additionally fsyncs
            every completed section.
    """

    #: Accepted ``fsync`` policies.
    FSYNC_POLICIES = ("commit", "section")

    def __init__(self, path: str | Path, *, fsync: str = "commit") -> None:
        if fsync not in self.FSYNC_POLICIES:
            raise ValueError(f"unknown fsync policy {fsync!r}; "
                             f"expected one of {self.FSYNC_POLICIES}")
        self.path = Path(path)
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, partial_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=f".{self.path.name}.", suffix=".partial")
        self.partial_path = Path(partial_name)
        self._handle = os.fdopen(descriptor, "w", encoding="utf-8")
        self._count = 0
        self._closed = False
        self._section: str | None = None
        self._section_count = 0
        self._sections_committed = 0

    @property
    def count(self) -> int:
        """Records written so far."""
        return self._count

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def current_section(self) -> str | None:
        """Name of the open section, or ``None`` between sections."""
        return self._section

    @property
    def sections_committed(self) -> int:
        """How many sections have completed via :meth:`end_section`."""
        return self._sections_committed

    def begin_section(self, name: str) -> None:
        """Open a named section; its records must land contiguously.

        Raises:
            ValueError: When the writer is closed or a section is already
                open (sections cannot nest or interleave).
        """
        if self._closed:
            raise ValueError("writer is closed")
        if self._section is not None:
            raise ValueError(f"section {self._section!r} is still open; "
                             f"cannot begin {name!r}")
        self._section = name
        self._section_count = 0

    def end_section(self) -> int:
        """Close the open section; returns how many records it wrote.

        With ``fsync="section"`` the partial file is flushed and fsynced, so
        everything up to and including this section survives a host crash.

        Raises:
            ValueError: When no section is open.
        """
        if self._section is None:
            raise ValueError("no section is open")
        written = self._section_count
        self._section = None
        self._section_count = 0
        self._sections_committed += 1
        if self.fsync == "section":
            self._handle.flush()
            os.fsync(self._handle.fileno())
        return written

    def write(self, record: SiteRecord) -> None:
        """Append one record to the partial file."""
        if self._closed:
            raise ValueError("writer is closed")
        self._handle.write(json.dumps(record.to_dict(), ensure_ascii=False))
        self._handle.write("\n")
        self._count += 1
        if self._section is not None:
            self._section_count += 1

    def write_many(self, records: Iterable[SiteRecord]) -> int:
        """Append ``records``; returns how many were written by this call."""
        written = 0
        for record in records:
            self.write(record)
            written += 1
        return written

    def write_serialized(self, line: str) -> None:
        """Append one pre-serialized record line (no trailing newline).

        The distributed coordinator merges record lines that worker
        processes already serialized with the exact :meth:`write` format;
        appending them verbatim keeps the merged file byte-identical to a
        single-host build without re-parsing every record.
        """
        if self._closed:
            raise ValueError("writer is closed")
        self._handle.write(line)
        self._handle.write("\n")
        self._count += 1
        if self._section is not None:
            self._section_count += 1

    def close(self) -> int:
        """Commit the partial file onto the final path; returns the count.

        Raises:
            ValueError: When a section is still open — committing would
                publish a dataset whose last group is only partially
                written; callers must :meth:`end_section` (or :meth:`abort`)
                first.
        """
        if self._closed:
            return self._count
        if self._section is not None:
            raise ValueError(f"section {self._section!r} is still open; "
                             f"refusing to commit a partial section")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        os.replace(self.partial_path, self.path)
        self._closed = True
        return self._count

    def abort(self) -> None:
        """Discard everything written; the final path is left untouched."""
        if self._closed:
            return
        self._handle.close()
        self.partial_path.unlink(missing_ok=True)
        self._closed = True

    def __enter__(self) -> "StreamingDatasetWriter":
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None, tb: TracebackType | None) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()

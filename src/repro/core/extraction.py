"""Accessibility-text and visible-text extraction from crawled pages.

The measurement pipeline needs, per page:

* the visible text (for the 50% inclusion criterion and the mismatch
  analysis), and
* for each of the twelve language-sensitive elements, the accessibility text
  of every instance — distinguishing *missing* (no explicit metadata at all)
  from *empty* (metadata present but blank) from actual text.

Unlike the audit rules, extraction considers **explicit metadata only**
(``aria-label``/``aria-labelledby``, ``alt``, associated ``<label>``,
``value`` on input buttons, ``<title>``): the paper's missing-rate statistics
measure whether developers provide accessibility metadata, not whether a
screen reader could scrape a fallback from visible text — the reliance on
that fallback is precisely one of the paper's findings.

Element instances are looked up through the document's
:class:`~repro.html.index.DocumentIndex` (one traversal, shared with the
audit stage when both see the same document) instead of one ``find_all``
walk per element group; ``use_index=False`` switches to the naive-traversal
reference path for parity tests and benchmarks.  Observations stay grouped
by element type, in the fixed Table 1 order, exactly as before — the index
only changes how instances are found, not how they are reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import perf
from repro.core.elements import ELEMENT_IDS
from repro.html.dom import Document, Element
from repro.html.index import DocumentAccessor, NaiveDocumentAccessor, ensure_index
from repro.html.parser import parse_html

_BUTTON_INPUT_TYPES = frozenset({"button", "submit", "reset"})
_LABELLED_INPUT_EXCLUDES = frozenset({"hidden", "button", "submit", "reset", "image"})


@dataclass(frozen=True)
class ExtractedText:
    """One accessibility-text observation.

    Attributes:
        element_id: Which of the twelve elements this instance belongs to.
        text: ``None`` when the metadata is missing, ``""`` when present but
            empty, otherwise the text.
    """

    element_id: str
    text: str | None

    @property
    def is_missing(self) -> bool:
        return self.text is None

    @property
    def is_empty(self) -> bool:
        return self.text is not None and not self.text.strip()

    @property
    def has_text(self) -> bool:
        return self.text is not None and bool(self.text.strip())


@dataclass
class PageExtraction:
    """Everything the analyses need from one page."""

    url: str | None
    visible_text: str
    declared_lang: str | None
    observations: list[ExtractedText] = field(default_factory=list)

    def by_element(self) -> dict[str, list[ExtractedText]]:
        grouped: dict[str, list[ExtractedText]] = {element_id: [] for element_id in ELEMENT_IDS}
        for observation in self.observations:
            grouped.setdefault(observation.element_id, []).append(observation)
        return grouped

    def texts(self, element_id: str | None = None) -> list[str]:
        """Non-empty accessibility texts, optionally restricted to one element."""
        return [obs.text for obs in self.observations
                if obs.has_text and (element_id is None or obs.element_id == element_id)]


def _explicit_text(element: Element, context: DocumentAccessor) -> str | None:
    """Explicit accessibility metadata of an element (no visible-text fallback)."""
    result = context.accessible_name(element)
    return result.name if result.explicit else None


def _extract_document_title(context: DocumentAccessor) -> ExtractedText:
    return ExtractedText("document-title", context.title)


def _extract_simple(context: DocumentAccessor, element_id: str, tag: str,
                    predicate=None) -> list[ExtractedText]:
    return [ExtractedText(element_id, _explicit_text(element, context))
            for element in context.elements(tag, predicate=predicate)]


def _extract_object_alt(context: DocumentAccessor) -> list[ExtractedText]:
    observations = []
    for element in context.elements("object"):
        text = _explicit_text(element, context)
        if text is None:
            fallback = element.text_content()
            if fallback.strip():
                text = fallback.strip()
            elif fallback:
                text = ""
        observations.append(ExtractedText("object-alt", text))
    return observations


def extract_page(document: Document | str, url: str | None = None, *,
                 use_index: bool = True) -> PageExtraction:
    """Extract visible text and all accessibility-text observations.

    Args:
        document: A parsed :class:`Document` or raw HTML markup.
        url: Recorded on the result when ``document`` is raw markup.
        use_index: Look elements and names up through the document's cached
            :class:`~repro.html.index.DocumentIndex` (the default; one DOM
            traversal, shared with any audit of the same document).
            ``False`` uses the naive full-traversal reference path.

    Returns:
        A :class:`PageExtraction` with one observation per element instance.
    """
    if isinstance(document, str):
        document = parse_html(document, url=url)
    with perf.stage("extract"):
        return _extract_page_indexed(document, url, use_index=use_index)


def _extract_page_indexed(document: Document, url: str | None, *,
                          use_index: bool) -> PageExtraction:
    context = ensure_index(document) if use_index else NaiveDocumentAccessor(document)

    extraction = PageExtraction(
        url=context.url or url,
        visible_text=context.document_text(),
        declared_lang=context.html_lang,
    )

    extraction.observations.append(_extract_document_title(context))
    extraction.observations.extend(_extract_simple(context, "button-name", "button"))
    extraction.observations.extend(_extract_simple(context, "image-alt", "img"))
    extraction.observations.extend(
        _extract_simple(context, "frame-title", "iframe")
        + _extract_simple(context, "frame-title", "frame"))
    extraction.observations.extend(_extract_simple(context, "summary-name", "summary"))
    extraction.observations.extend(_extract_simple(
        context, "label", "input",
        predicate=lambda el: (el.get("type") or "text").lower() not in _LABELLED_INPUT_EXCLUDES))
    extraction.observations.extend(_extract_simple(context, "label", "textarea"))
    extraction.observations.extend(_extract_simple(
        context, "input-image-alt", "input",
        predicate=lambda el: (el.get("type") or "").lower() == "image"))
    extraction.observations.extend(_extract_simple(context, "select-name", "select"))
    extraction.observations.extend(_extract_simple(
        context, "link-name", "a", predicate=lambda el: el.has_attr("href")))
    extraction.observations.extend(_extract_simple(
        context, "input-button-name", "input",
        predicate=lambda el: (el.get("type") or "").lower() in _BUTTON_INPUT_TYPES))
    extraction.observations.extend(_extract_simple(context, "svg-img-alt", "svg"))
    extraction.observations.extend(_extract_object_alt(context))

    return extraction


def merge_extractions(extractions: list[PageExtraction]) -> PageExtraction:
    """Merge the extractions of several pages of one site into one view.

    Visible text is concatenated; observations are pooled.  The declared
    language of the first page wins (it is the homepage by construction).
    """
    if not extractions:
        return PageExtraction(url=None, visible_text="", declared_lang=None)
    merged = PageExtraction(
        url=extractions[0].url,
        visible_text=" ".join(extraction.visible_text for extraction in extractions).strip(),
        declared_lang=extractions[0].declared_lang,
    )
    for extraction in extractions:
        merged.observations.extend(extraction.observations)
    return merged

"""The language-sensitive accessibility elements (Table 1).

The paper derives, from the Lighthouse/Axe-core rule set, the twelve
accessibility checks for which natural language is integral: the element's
accessibility depends on human-readable text that a screen-reader user would
rely on.  This module is the canonical registry of those elements, shared by
the extraction pipeline, the audit engine wiring and the report generators.

``video-caption`` is intentionally absent: the paper excludes it because
captions usually live outside the HTML (VTT/SRT files or scripts) and cannot
be evaluated reliably by a static crawler.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ElementSpec:
    """One language-sensitive accessibility element.

    Attributes:
        element_id: Identifier matching the Lighthouse audit id and the audit
            rule id of :mod:`repro.audit.rules`.
        html_element: The HTML element the check targets.
        attribute: The primary metadata attribute carrying the text
            (informational; extraction follows the full accessible-name
            precedence rules).
        description: Why natural language matters for the element.
    """

    element_id: str
    html_element: str
    attribute: str
    description: str


#: Table 1 of the paper, in reading order (left-to-right, top-to-bottom).
LANGUAGE_SENSITIVE_ELEMENTS: tuple[ElementSpec, ...] = (
    ElementSpec("button-name", "<button>", "aria-label / text",
                "Screen readers announce buttons by their accessible name."),
    ElementSpec("document-title", "<title>", "text",
                "The page title is the first thing announced on navigation."),
    ElementSpec("image-alt", "<img>", "alt",
                "Alternative text is the only rendering of an image for blind users."),
    ElementSpec("frame-title", "<iframe>/<frame>", "title",
                "Frame titles describe embedded content regions."),
    ElementSpec("summary-name", "<summary>", "aria-label / text",
                "Disclosure summaries must describe what they expand."),
    ElementSpec("label", "<label>", "text / for",
                "Form fields are announced through their associated labels."),
    ElementSpec("input-image-alt", "<input type=image>", "alt",
                "Image buttons need text alternatives like any image."),
    ElementSpec("select-name", "<select>", "label / aria-label",
                "Selects are announced by their accessible name."),
    ElementSpec("link-name", "<a>", "aria-label / text",
                "Links are navigated by name in screen-reader link lists."),
    ElementSpec("input-button-name", "<input type=button|submit|reset>", "value",
                "Input buttons are announced by their value or label."),
    ElementSpec("svg-img-alt", "<svg>", "title / aria-label",
                "Inline SVG used as imagery needs a text alternative."),
    ElementSpec("object-alt", "<object>", "fallback content",
                "Embedded objects need fallback text alternatives."),
)

#: Element ids in Table 1 order.
ELEMENT_IDS: tuple[str, ...] = tuple(spec.element_id for spec in LANGUAGE_SENSITIVE_ELEMENTS)

_SPEC_BY_ID: dict[str, ElementSpec] = {spec.element_id: spec for spec in LANGUAGE_SENSITIVE_ELEMENTS}

#: Elements considered but excluded from the study, with the reason.
EXCLUDED_CHECKS: dict[str, str] = {
    "video-caption": (
        "Captions typically live in separate VTT/SRT files or are loaded "
        "dynamically; verifying their accuracy requires playback and manual "
        "inspection, which is outside the scope of automated large-scale analysis."
    ),
}


def get_element_spec(element_id: str) -> ElementSpec:
    """Spec for ``element_id``; raises ``KeyError`` for unknown ids."""
    return _SPEC_BY_ID[element_id]


def is_language_sensitive(element_id: str) -> bool:
    """Whether ``element_id`` is one of the twelve studied elements."""
    return element_id in _SPEC_BY_ID

"""Dataset analyses: element statistics and filtered-text breakdowns.

This module produces the numbers behind:

* **Table 2** — per accessibility element: median / standard deviation / mean
  of the per-website missing and empty percentages, and of the text length
  (characters) and word count of the texts that are present;
* **Figure 3** — per country: the share of accessibility texts discarded by
  each filtering rule;
* **Figure 9** — the same breakdown per HTML element;
* **Table 4** — extreme alt-text outliers (texts above a length threshold).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.dataset import LangCrUXDataset, SiteRecord
from repro.core.elements import ELEMENT_IDS
from repro.core.filtering import DiscardCategory, classify_text
from repro.langid.scripts import textual_length
from repro.stats.summary import SummaryStats, summarize


def word_count(text: str) -> int:
    """Number of whitespace-separated tokens in ``text``.

    Texts in scripts written without inter-word spaces (CJK, Thai) yield low
    token counts under this definition; the paper's Table 2 exhibits the same
    property (word counts of 1–2 for elements dominated by such scripts), so
    the simple definition is retained deliberately.
    """
    return len(text.split())


@dataclass(frozen=True)
class ElementStatisticsRow:
    """One row of Table 2."""

    element_id: str
    sites: int
    missing_pct: SummaryStats
    empty_pct: SummaryStats
    text_length: SummaryStats
    word_count: SummaryStats

    def as_dict(self) -> dict:
        return {
            "element": self.element_id,
            "sites": self.sites,
            "missing": self.missing_pct.as_row(),
            "empty": self.empty_pct.as_row(),
            "text_length": self.text_length.as_row(),
            "word_count": self.word_count.as_row(),
            "max_text_length": self.text_length.maximum,
            "max_word_count": self.word_count.maximum,
        }


class ElementStatsAccumulator:
    """Streaming core of Table 2 (:func:`element_statistics`).

    Records are fed one at a time with :meth:`add`; :meth:`rows` produces the
    same :class:`ElementStatisticsRow` values the batch helper computes.  A
    consumer that sees a dataset record by record — the serving layer's
    loader streaming JSONL shards — therefore shares one implementation with
    the one-shot reports.
    """

    def __init__(self, element_ids: Iterable[str] = ELEMENT_IDS) -> None:
        self.element_ids = tuple(element_ids)
        self._sites = {eid: 0 for eid in self.element_ids}
        self._missing_pcts: dict[str, list[float]] = {eid: [] for eid in self.element_ids}
        self._empty_pcts: dict[str, list[float]] = {eid: [] for eid in self.element_ids}
        self._lengths: dict[str, list[float]] = {eid: [] for eid in self.element_ids}
        self._words: dict[str, list[float]] = {eid: [] for eid in self.element_ids}

    def add(self, record: SiteRecord) -> None:
        """Fold one site record into the per-element samples."""
        for element_id in self.element_ids:
            observation = record.element(element_id)
            if observation.total == 0:
                continue
            self._sites[element_id] += 1
            self._missing_pcts[element_id].append(observation.missing_pct)
            self._empty_pcts[element_id].append(observation.empty_pct)
            lengths = self._lengths[element_id]
            words = self._words[element_id]
            for text in observation.texts:
                lengths.append(len(text))
                words.append(word_count(text))

    def rows(self) -> dict[str, ElementStatisticsRow]:
        """The Table 2 rows for everything accumulated so far."""
        return {
            element_id: ElementStatisticsRow(
                element_id=element_id,
                sites=self._sites[element_id],
                missing_pct=summarize(self._missing_pcts[element_id]),
                empty_pct=summarize(self._empty_pcts[element_id]),
                text_length=summarize(self._lengths[element_id]),
                word_count=summarize(self._words[element_id]),
            )
            for element_id in self.element_ids
        }


def element_statistics(dataset: LangCrUXDataset | Iterable[SiteRecord],
                       element_ids: Iterable[str] = ELEMENT_IDS) -> dict[str, ElementStatisticsRow]:
    """Compute Table 2 over a dataset.

    Missing/empty percentages are summarised over websites (each website that
    contains at least one instance of the element contributes one
    percentage); text length and word count are summarised over individual
    texts, which is what produces the extreme maxima the paper reports.
    """
    accumulator = ElementStatsAccumulator(element_ids)
    for record in dataset:
        accumulator.add(record)
    return accumulator.rows()


class DiscardCounter:
    """Streaming counter behind the Figure 3/9 filter breakdowns.

    Texts go through the Appendix H filter one at a time; percentages and
    the total discard rate come out exactly as the batch helpers report
    them (category insertion order is first-encounter order, matching a
    single pass over the same texts).
    """

    def __init__(self) -> None:
        self.total = 0
        self.counts: dict[DiscardCategory, int] = {}

    def add(self, text: str) -> None:
        self.total += 1
        result = classify_text(text)
        if result.category is not None:
            self.counts[result.category] = self.counts.get(result.category, 0) + 1

    def add_many(self, texts: Iterable[str]) -> None:
        for text in texts:
            self.add(text)

    def percentages(self) -> dict[DiscardCategory, float]:
        """Share discarded per category, as percentages of all texts."""
        if not self.total:
            return {}
        return {category: 100.0 * count / self.total
                for category, count in self.counts.items()}

    def discard_rate(self) -> float:
        """Total discarded share (0–1).

        Computed as the sum of the per-category percentages divided by 100,
        the exact arithmetic of :func:`uninformative_rate_by_country`, so the
        streaming and batch paths agree to the last bit.
        """
        return sum(self.percentages().values()) / 100.0


def _category_percentages(texts: list[str]) -> dict[DiscardCategory, float]:
    """Share of ``texts`` discarded per category, as percentages of all texts."""
    counter = DiscardCounter()
    counter.add_many(texts)
    return counter.percentages()


def filter_breakdown_by_country(dataset: LangCrUXDataset) -> dict[str, dict[DiscardCategory, float]]:
    """Figure 3: per country, the percentage of accessibility texts discarded
    by each rule (percentages are over all non-empty accessibility texts of
    the country)."""
    breakdown: dict[str, dict[DiscardCategory, float]] = {}
    for country in dataset.countries():
        texts: list[str] = []
        for record in dataset.for_country(country):
            texts.extend(record.accessibility_texts())
        breakdown[country] = _category_percentages(texts)
    return breakdown


def filter_breakdown_by_element(dataset: LangCrUXDataset,
                                element_ids: Iterable[str] = ELEMENT_IDS
                                ) -> dict[str, dict[DiscardCategory, float]]:
    """Figure 9 / Appendix G: the same breakdown grouped by HTML element."""
    breakdown: dict[str, dict[DiscardCategory, float]] = {}
    for element_id in element_ids:
        texts: list[str] = []
        for record in dataset:
            texts.extend(record.element(element_id).texts)
        breakdown[element_id] = _category_percentages(texts)
    return breakdown


def uninformative_rate_by_country(dataset: LangCrUXDataset) -> dict[str, float]:
    """Total share of accessibility texts discarded, per country (0–1)."""
    rates: dict[str, float] = {}
    for country, categories in filter_breakdown_by_country(dataset).items():
        rates[country] = sum(categories.values()) / 100.0
    return rates


@dataclass(frozen=True)
class ExtremeAltText:
    """One Table 4 row: an unusually long image alt text."""

    domain: str
    country_code: str
    length: int
    words: int
    text: str


def extreme_alt_texts(dataset: LangCrUXDataset, *, min_chars: int = 1000,
                      limit: int | None = None) -> list[ExtremeAltText]:
    """Image alt texts longer than ``min_chars`` characters (Appendix E)."""
    extremes: list[ExtremeAltText] = []
    for record in dataset:
        for text in record.element("image-alt").texts:
            if len(text) >= min_chars:
                extremes.append(ExtremeAltText(
                    domain=record.domain,
                    country_code=record.country_code,
                    length=len(text),
                    words=word_count(text),
                    text=text,
                ))
    extremes.sort(key=lambda item: item.length, reverse=True)
    return extremes[:limit] if limit is not None else extremes


def empty_alt_share(dataset: LangCrUXDataset) -> float:
    """Fraction of ``<img>`` instances whose alt attribute is empty.

    The paper highlights that an empty ``alt`` passes the Lighthouse audit
    while conveying nothing; this helper backs that observation.
    """
    total = 0
    empty = 0
    for record in dataset:
        observation = record.element("image-alt")
        total += observation.total
        empty += observation.empty
    return empty / total if total else 0.0


def visible_text_script_summary(dataset: LangCrUXDataset) -> dict[str, SummaryStats]:
    """Per country, summary of the visible native-language share (Figure 2)."""
    summaries: dict[str, SummaryStats] = {}
    for country in dataset.countries():
        shares = [record.visible_native_share * 100.0 for record in dataset.for_country(country)]
        summaries[country] = summarize(shares)
    return summaries


def total_accessibility_text_chars(record: SiteRecord) -> int:
    """Total textual characters across a site's accessibility texts."""
    return sum(textual_length(text) for text in record.accessibility_texts())

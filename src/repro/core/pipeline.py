"""End-to-end LangCrUX pipeline (Figure 1 of the paper).

The pipeline chains every stage of the methodology:

1. **Web** — build (or accept) the synthetic web and its CrUX-style ranking.
2. **Vantage** — pick a VPN exit per country (falling back to a cloud
   vantage only when explicitly configured, reproducing the paper's
   vantage-point argument in the ablation benchmark).
3. **Selection + crawl** — walk the country's ranking, crawl candidates,
   validate the 50% visible-language criterion, and replace failures.
4. **Extraction + audit** — extract visible text and accessibility texts
   from each selected site and run the base (language-unaware) audits.
   Each page is parsed once and both stages work off the page's cached
   :class:`~repro.html.index.DocumentIndex`, one DOM traversal per page.
5. **Dataset** — assemble :class:`~repro.core.dataset.LangCrUXDataset`.

Stages 2–4 are independent per country, so they are expressed as *pure
per-shard functions* (:func:`execute_country_shard` and the helpers it
calls) that an execution backend from :mod:`repro.core.executor` dispatches
concurrently.  Every shard constructs its own transport, crawl session and
audit engine, and each candidate origin draws its transport randomness from
its own stream seeded by ``stable_seed(seed, "transport", country,
domain)``, so the outcome of crawling one origin depends on nothing but the
config — not on worker counts, batch sizes or completion interleavings.  A
parallel and/or batched run is therefore byte-identical to a sequential
one, and the per-candidate split is also what intra-country sharding would
build on.

Within a shard, ``PipelineConfig.max_in_flight`` controls the async batched
fetch layer: the selection walk prefetches that many origins concurrently
through :meth:`~repro.crawler.crawler.LangCruxCrawler.crawl_batch` while
evaluating candidates strictly in rank order.  Across shards,
:meth:`LangCrUXPipeline.run` can stream finished shards straight to disk
through :class:`~repro.core.dataset.StreamingDatasetWriter` (``stream_to``),
preserving the ordered-merge guarantee.

The result object keeps the intermediate artifacts (ranking, selection
outcomes, per-shard timing metrics) because several benchmark harnesses
report on them directly (Figure 7 uses the ranking, the selection benchmark
uses the outcomes, the scaling benchmark uses the shard metrics).
"""

from __future__ import annotations

import functools
import random
from dataclasses import dataclass, field
from pathlib import Path

from repro.audit.engine import AuditEngine
from repro.core.dataset import LangCrUXDataset, SiteRecord, StreamingDatasetWriter
from repro.core.executor import (
    PipelineExecutor,
    ProcessExecutor,
    ShardMetrics,
    create_executor,
)
from repro.core.extraction import extract_page, merge_extractions
from repro.core.site_selection import SelectionOutcome, SiteSelector
from repro.crawler.crawler import CrawlerConfig, LangCruxCrawler
from repro.crawler.fetcher import Fetcher, FetcherConfig, SimulatedTransport
from repro.crawler.records import CrawlRecord
from repro.crawler.session import CrawlSession
from repro.crawler.vpn import DEFAULT_PROVIDERS, VantagePoint, VPNCoverageError, VPNManager
from repro.html.parser import parse_html
from repro.langid.languages import get_pair, langcrux_country_codes
from repro.webgen.crux import CruxTable, build_crux_table
from repro.webgen.server import SyntheticWeb
from repro.webgen.sitegen import SiteGenerator, SyntheticSite, stable_seed
from repro.webgen.profiles import get_profile


@dataclass
class PipelineConfig:
    """Configuration of a pipeline run.

    Attributes:
        countries: Country codes to process (defaults to all twelve).
        sites_per_country: The per-country quota of selected sites (the
            paper's 10,000, scaled down for synthetic runs).
        candidate_multiplier: How many ranked candidates to generate per
            country relative to the quota; must exceed 1 so the replacement
            logic has candidates to fall back on.
        seed: Seed for the synthetic web and the transport failure injection.
        max_pages_per_site: Pages crawled per origin (homepage first).
        use_vpn: Crawl through per-country VPN exits (the paper's setup).
            When false every country is crawled from a cloud vantage, which
            is the ablation configuration.
        transport_failure_rate: Transient failure probability injected by the
            simulated transport.
        language_threshold: Minimum native share of visible text (0.5).
        respect_robots: Whether the crawler honours robots.txt.
        workers: Number of country shards processed concurrently.  The
            default of 1 keeps the historical sequential behaviour; any
            value produces the same dataset bytes (per-shard seeding).
        executor: Execution backend — ``"auto"`` (serial for one worker,
            threads otherwise), ``"serial"``, ``"thread"`` or ``"process"``.
        max_in_flight: Concurrent candidate fetches inside one country shard
            (the async batched fetch layer).  1 keeps the sequential walk;
            any value produces the same dataset bytes (per-candidate RNG
            splits).
    """

    countries: tuple[str, ...] = field(default_factory=langcrux_country_codes)
    sites_per_country: int = 30
    candidate_multiplier: float = 2.0
    seed: int = 7
    max_pages_per_site: int = 1
    use_vpn: bool = True
    transport_failure_rate: float = 0.02
    language_threshold: float = 0.5
    respect_robots: bool = True
    workers: int = 1
    executor: str = "auto"
    max_in_flight: int = 1


@dataclass
class PipelineResult:
    """Everything a pipeline run produces."""

    dataset: LangCrUXDataset
    crux_table: CruxTable
    web: SyntheticWeb
    selection_outcomes: dict[str, SelectionOutcome]
    vantages: dict[str, VantagePoint]
    shard_metrics: dict[str, ShardMetrics] = field(default_factory=dict)
    executor_name: str = "serial"
    executor_workers: int = 1
    stream_path: Path | None = None
    streamed_records: int = 0

    def qualifying_site_counts(self) -> dict[str, int]:
        """Selected sites per country (input to the selection-criteria check)."""
        return {country: len(outcome.selected)
                for country, outcome in self.selection_outcomes.items()}

    def total_shard_seconds(self) -> float:
        """Sum of per-shard wall-clock — the work a serial run would do."""
        return sum(metric.duration_s for metric in self.shard_metrics.values())


# -- pure per-shard functions -------------------------------------------------------
#
# Everything below takes the config (plus the prebuilt web) explicitly so it
# can run on any executor backend, including process pools where the shard
# callable and its arguments are pickled into the worker.


def build_web_for_config(config: PipelineConfig) -> tuple[SyntheticWeb, CruxTable]:
    """Generate the synthetic web and ranking for ``config`` (pure)."""
    candidates_per_country = max(
        config.sites_per_country + 1,
        int(config.sites_per_country * config.candidate_multiplier),
    )
    sites: list[SyntheticSite] = []
    for country in config.countries:
        generator = SiteGenerator(get_profile(country), seed=config.seed)
        sites.extend(generator.generate_sites(candidates_per_country))
    return SyntheticWeb(sites), build_crux_table(sites)


def _web_fingerprint(config: PipelineConfig) -> tuple:
    """The config fields that determine the generated web."""
    return (config.seed, config.countries, config.sites_per_country,
            config.candidate_multiplier)


#: Per-process memo of built webs, so a process-pool worker handling several
#: country shards generates the (cheap, lazy) site metadata only once.
_WEB_CACHE: dict[tuple, tuple[SyntheticWeb, CruxTable]] = {}


def _cached_web(config: PipelineConfig) -> tuple[SyntheticWeb, CruxTable]:
    fingerprint = _web_fingerprint(config)
    if fingerprint not in _WEB_CACHE:
        _WEB_CACHE[fingerprint] = build_web_for_config(config)
    return _WEB_CACHE[fingerprint]


def vantage_for_country(config: PipelineConfig, country_code: str) -> VantagePoint:
    """The crawl vantage for a country under ``config`` (pure)."""
    if not config.use_vpn:
        return VantagePoint.cloud()
    try:
        return VPNManager(DEFAULT_PROVIDERS).vantage_for(country_code)
    except VPNCoverageError:
        return VantagePoint.cloud()


def _host_transport_rng(seed: int, country_code: str, host: str) -> random.Random:
    """The per-candidate transport RNG split: one stream per (country, host)."""
    return random.Random(stable_seed(seed, "transport", country_code, host))


def crawler_for_country(config: PipelineConfig, country_code: str,
                        web: SyntheticWeb,
                        vantage: VantagePoint | None = None) -> LangCruxCrawler:
    """A crawler bound to the country's vantage, with shard-local state.

    The transport, fetcher and session are constructed fresh per shard —
    never shared across countries — so concurrent shards cannot interleave
    retry counters or robots caches.  Transport randomness is split per
    host (see :func:`_host_transport_rng`), so within the shard no two
    candidates share a stream either — the precondition for the batched
    selection walk being byte-identical to the sequential one.
    """
    transport = SimulatedTransport(
        web,
        failure_rate=config.transport_failure_rate,
        rng_factory=functools.partial(_host_transport_rng, config.seed, country_code),
    )
    fetcher = Fetcher(transport, FetcherConfig())
    if vantage is None:
        vantage = vantage_for_country(config, country_code)
    session = CrawlSession(fetcher=fetcher, vantage=vantage,
                           respect_robots=config.respect_robots)
    crawler_config = CrawlerConfig(
        max_pages_per_site=config.max_pages_per_site,
        follow_links=config.max_pages_per_site > 1,
        respect_robots=config.respect_robots,
    )
    return LangCruxCrawler(session, crawler_config)


def select_country_sites(config: PipelineConfig, country_code: str,
                         web: SyntheticWeb, crux: CruxTable,
                         vantage: VantagePoint | None = None) -> SelectionOutcome:
    """Run selection + crawling for one country (pure per-shard)."""
    pair = get_pair(country_code)
    crawler = crawler_for_country(config, country_code, web, vantage)
    selector = SiteSelector(crawler, pair.language.code,
                            threshold=config.language_threshold)
    outcome = selector.select(crux.iter_ranked(country_code),
                              quota=config.sites_per_country,
                              max_in_flight=config.max_in_flight)
    outcome.country_code = country_code
    return outcome


def record_from_crawl(crawl_record: CrawlRecord,
                      audit_engine: AuditEngine | None = None, *,
                      use_index: bool = True) -> SiteRecord:
    """Extraction + audit of one crawled origin (pure per-shard).

    Each page is parsed exactly once; extraction and audit then share the
    parsed :class:`~repro.html.dom.Document` and — through
    :meth:`~repro.html.dom.Document.index` — one
    :class:`~repro.html.index.DocumentIndex` per page, so the per-page cost
    is a single DOM traversal instead of one per rule and element group.
    ``use_index=False`` keeps the naive traversal path (the reference the
    byte-parity tests and the benchmark compare against).
    """
    engine = audit_engine if audit_engine is not None else AuditEngine()
    documents = [parse_html(page.html, url=page.final_url)
                 for page in crawl_record.pages if page.ok and page.html]
    extraction = merge_extractions(
        [extract_page(document, use_index=use_index) for document in documents])
    audit: dict[str, dict] = {}
    if documents:
        report = engine.audit_document(documents[0], use_index=use_index)
        audit = {
            rule_id: {
                "applicable": result.applicable,
                "passed": result.passed,
                "score": result.score,
            }
            for rule_id, result in report.results.items()
        }
    homepage = crawl_record.homepage
    return SiteRecord.from_extraction(
        extraction,
        domain=crawl_record.domain,
        country_code=crawl_record.country_code,
        language_code=crawl_record.language_code,
        rank=crawl_record.rank,
        served_variant=homepage.served_variant if homepage else None,
        audit=audit,
    )


@dataclass
class CountryShard:
    """The complete output of one country's selection → crawl → audit shard."""

    country_code: str
    vantage: VantagePoint
    outcome: SelectionOutcome
    records: list[SiteRecord]


def execute_country_shard(config: PipelineConfig, country_code: str,
                          web_and_crux: tuple[SyntheticWeb, CruxTable] | None = None,
                          ) -> CountryShard:
    """Run stages 2–4 for one country, with shard-local state only.

    Args:
        config: The pipeline configuration.
        country_code: The shard's country.
        web_and_crux: The prebuilt web and ranking.  ``None`` (the process
            backend) regenerates them deterministically from ``config`` via a
            per-process cache instead of pickling the whole web into the
            worker.
    """
    web, crux = web_and_crux if web_and_crux is not None else _cached_web(config)
    vantage = vantage_for_country(config, country_code)
    outcome = select_country_sites(config, country_code, web, crux, vantage)
    audit_engine = AuditEngine()  # per-shard: concurrent audits never share state
    records = [record_from_crawl(selected.record, audit_engine)
               for selected in outcome.selected]
    return CountryShard(country_code=country_code, vantage=vantage,
                        outcome=outcome, records=records)


class LangCrUXPipeline:
    """Builds a LangCrUX dataset over the synthetic web."""

    def __init__(self, config: PipelineConfig | None = None,
                 *, web: SyntheticWeb | None = None,
                 crux_table: CruxTable | None = None) -> None:
        self.config = config or PipelineConfig()
        self._web = web
        self._crux = crux_table
        self._web_supplied = web is not None or crux_table is not None

    # -- stage 1: the web ---------------------------------------------------------

    def build_web(self) -> tuple[SyntheticWeb, CruxTable]:
        """Generate candidate sites for every configured country."""
        if self._web is not None and self._crux is not None:
            return self._web, self._crux
        self._web, self._crux = build_web_for_config(self.config)
        return self._web, self._crux

    # -- stage 2: vantage points -----------------------------------------------------

    def vantage_for(self, country_code: str) -> VantagePoint:
        """The crawl vantage for a country under the current configuration."""
        return vantage_for_country(self.config, country_code)

    # -- stage 3: selection + crawl -----------------------------------------------------

    def select_country(self, country_code: str) -> SelectionOutcome:
        """Run selection + crawling for one country."""
        web, crux = self.build_web()
        return select_country_sites(self.config, country_code, web, crux)

    # -- stage 4: extraction + audit ------------------------------------------------------

    def record_from_crawl(self, crawl_record: CrawlRecord) -> SiteRecord:
        """Extraction + audit of one crawled origin."""
        return record_from_crawl(crawl_record)

    # -- stage 5: the dataset ------------------------------------------------------------------

    def _executor(self) -> PipelineExecutor:
        return create_executor(self.config.executor, self.config.workers)

    def run(self, executor: PipelineExecutor | None = None, *,
            stream_to: str | Path | None = None,
            keep_in_memory: bool = True) -> PipelineResult:
        """Execute the full pipeline for every configured country.

        Shards are dispatched on the configured executor (or an explicit
        ``executor`` argument) and their finished records stream back
        through a bounded queue; the reorder buffer of ``run_ordered``
        assembles the dataset in the configured country order, so the
        output is identical for every backend and worker count.

        Args:
            executor: Overrides the configured execution backend.
            stream_to: Stream each shard's records to this JSONL path as the
                shard completes, through an atomically-committed
                :class:`~repro.core.dataset.StreamingDatasetWriter`.  Since
                shards arrive already merged in submission order, the
                streamed file is byte-identical to ``save_jsonl`` of the
                in-memory dataset; a failed run leaves the destination
                untouched.
            keep_in_memory: Whether to also accumulate the records on
                ``PipelineResult.dataset``.  Pass ``False`` (streaming runs
                only) when the dataset is consumed from the streamed file:
                site records are then dropped as soon as they are on disk.
                Selection outcomes — including their crawl snapshots — are
                still retained; trimming those too is an open ROADMAP item.
        """
        if not keep_in_memory and stream_to is None:
            raise ValueError("keep_in_memory=False requires stream_to: "
                             "the records would otherwise be lost")
        web, crux = self.build_web()
        backend = executor if executor is not None else self._executor()
        # Process workers rebuild the (lazily generated) web from the config
        # instead of receiving a pickled copy — unless the web was supplied
        # explicitly and cannot be derived from the config.
        if isinstance(backend, ProcessExecutor) and not self._web_supplied:
            shard_fn = functools.partial(execute_country_shard, self.config)
        else:
            shard_fn = functools.partial(execute_country_shard, self.config,
                                         web_and_crux=(web, crux))
        dataset = LangCrUXDataset()
        outcomes: dict[str, SelectionOutcome] = {}
        vantages: dict[str, VantagePoint] = {}
        metrics: dict[str, ShardMetrics] = {}
        writer = StreamingDatasetWriter(stream_to) if stream_to is not None else None
        try:
            for result in backend.run_ordered(shard_fn, list(self.config.countries)):
                shard: CountryShard = result.value
                vantages[shard.country_code] = shard.vantage
                outcomes[shard.country_code] = shard.outcome
                if keep_in_memory:
                    dataset.extend(shard.records)
                if writer is not None:
                    writer.write_many(shard.records)
                metrics[shard.country_code] = ShardMetrics(
                    shard=shard.country_code,
                    index=result.index,
                    duration_s=result.duration_s,
                    records=len(shard.records),
                )
        except BaseException:
            if writer is not None:
                writer.abort()
            raise
        streamed = writer.close() if writer is not None else 0
        return PipelineResult(dataset=dataset, crux_table=crux, web=web,
                              selection_outcomes=outcomes, vantages=vantages,
                              shard_metrics=metrics, executor_name=backend.name,
                              executor_workers=min(backend.workers,
                                                   len(self.config.countries)),
                              stream_path=Path(stream_to) if stream_to is not None else None,
                              streamed_records=streamed)

"""End-to-end LangCrUX pipeline (Figure 1 of the paper).

The pipeline chains every stage of the methodology:

1. **Web** — build (or accept) the synthetic web and its CrUX-style ranking.
2. **Vantage** — pick a VPN exit per country (falling back to a cloud
   vantage only when explicitly configured, reproducing the paper's
   vantage-point argument in the ablation benchmark).
3. **Selection + crawl** — walk the country's ranking, crawl candidates,
   validate the 50% visible-language criterion, and replace failures.
4. **Extraction + audit** — extract visible text and accessibility texts
   from each selected site and run the base (language-unaware) audits.
5. **Dataset** — assemble :class:`~repro.core.dataset.LangCrUXDataset`.

The result object keeps the intermediate artifacts (ranking, selection
outcomes) because several benchmark harnesses report on them directly
(Figure 7 uses the ranking, the selection benchmark uses the outcomes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.audit.engine import AuditEngine
from repro.core.dataset import LangCrUXDataset, SiteRecord
from repro.core.extraction import extract_page, merge_extractions
from repro.core.site_selection import SelectionOutcome, SiteSelector
from repro.crawler.crawler import CrawlerConfig, LangCruxCrawler
from repro.crawler.fetcher import Fetcher, FetcherConfig, SimulatedTransport
from repro.crawler.records import CrawlRecord
from repro.crawler.session import CrawlSession
from repro.crawler.vpn import DEFAULT_PROVIDERS, VantagePoint, VPNCoverageError, VPNManager
from repro.html.parser import parse_html
from repro.langid.languages import get_pair, langcrux_country_codes
from repro.webgen.crux import CruxTable, build_crux_table
from repro.webgen.server import SyntheticWeb
from repro.webgen.sitegen import SiteGenerator, SyntheticSite, stable_seed
from repro.webgen.profiles import get_profile


@dataclass
class PipelineConfig:
    """Configuration of a pipeline run.

    Attributes:
        countries: Country codes to process (defaults to all twelve).
        sites_per_country: The per-country quota of selected sites (the
            paper's 10,000, scaled down for synthetic runs).
        candidate_multiplier: How many ranked candidates to generate per
            country relative to the quota; must exceed 1 so the replacement
            logic has candidates to fall back on.
        seed: Seed for the synthetic web and the transport failure injection.
        max_pages_per_site: Pages crawled per origin (homepage first).
        use_vpn: Crawl through per-country VPN exits (the paper's setup).
            When false every country is crawled from a cloud vantage, which
            is the ablation configuration.
        transport_failure_rate: Transient failure probability injected by the
            simulated transport.
        language_threshold: Minimum native share of visible text (0.5).
        respect_robots: Whether the crawler honours robots.txt.
    """

    countries: tuple[str, ...] = field(default_factory=langcrux_country_codes)
    sites_per_country: int = 30
    candidate_multiplier: float = 2.0
    seed: int = 7
    max_pages_per_site: int = 1
    use_vpn: bool = True
    transport_failure_rate: float = 0.02
    language_threshold: float = 0.5
    respect_robots: bool = True


@dataclass
class PipelineResult:
    """Everything a pipeline run produces."""

    dataset: LangCrUXDataset
    crux_table: CruxTable
    web: SyntheticWeb
    selection_outcomes: dict[str, SelectionOutcome]
    vantages: dict[str, VantagePoint]

    def qualifying_site_counts(self) -> dict[str, int]:
        """Selected sites per country (input to the selection-criteria check)."""
        return {country: len(outcome.selected)
                for country, outcome in self.selection_outcomes.items()}


class LangCrUXPipeline:
    """Builds a LangCrUX dataset over the synthetic web."""

    def __init__(self, config: PipelineConfig | None = None,
                 *, web: SyntheticWeb | None = None,
                 crux_table: CruxTable | None = None) -> None:
        self.config = config or PipelineConfig()
        self._web = web
        self._crux = crux_table
        self._sites: list[SyntheticSite] = []
        self._vpn = VPNManager(DEFAULT_PROVIDERS)
        self._audit_engine = AuditEngine()

    # -- stage 1: the web ---------------------------------------------------------

    def build_web(self) -> tuple[SyntheticWeb, CruxTable]:
        """Generate candidate sites for every configured country."""
        if self._web is not None and self._crux is not None:
            return self._web, self._crux
        candidates_per_country = max(
            self.config.sites_per_country + 1,
            int(self.config.sites_per_country * self.config.candidate_multiplier),
        )
        sites: list[SyntheticSite] = []
        for country in self.config.countries:
            generator = SiteGenerator(get_profile(country), seed=self.config.seed)
            sites.extend(generator.generate_sites(candidates_per_country))
        self._sites = sites
        self._web = SyntheticWeb(sites)
        self._crux = build_crux_table(sites)
        return self._web, self._crux

    # -- stage 2: vantage points -----------------------------------------------------

    def vantage_for(self, country_code: str) -> VantagePoint:
        """The crawl vantage for a country under the current configuration."""
        if not self.config.use_vpn:
            return VantagePoint.cloud()
        try:
            return self._vpn.vantage_for(country_code)
        except VPNCoverageError:
            return VantagePoint.cloud()

    # -- stage 3: selection + crawl -----------------------------------------------------

    def _crawler_for(self, country_code: str, web: SyntheticWeb) -> LangCruxCrawler:
        transport = SimulatedTransport(
            web,
            failure_rate=self.config.transport_failure_rate,
            rng=random.Random(stable_seed(self.config.seed, "transport", country_code)),
        )
        fetcher = Fetcher(transport, FetcherConfig())
        session = CrawlSession(fetcher=fetcher, vantage=self.vantage_for(country_code),
                               respect_robots=self.config.respect_robots)
        crawler_config = CrawlerConfig(
            max_pages_per_site=self.config.max_pages_per_site,
            follow_links=self.config.max_pages_per_site > 1,
            respect_robots=self.config.respect_robots,
        )
        return LangCruxCrawler(session, crawler_config)

    def select_country(self, country_code: str) -> SelectionOutcome:
        """Run selection + crawling for one country."""
        web, crux = self.build_web()
        pair = get_pair(country_code)
        crawler = self._crawler_for(country_code, web)
        selector = SiteSelector(crawler, pair.language.code,
                                threshold=self.config.language_threshold)
        outcome = selector.select(crux.iter_ranked(country_code),
                                  quota=self.config.sites_per_country)
        outcome.country_code = country_code
        return outcome

    # -- stage 4: extraction + audit ------------------------------------------------------

    def record_from_crawl(self, crawl_record: CrawlRecord) -> SiteRecord:
        """Extraction + audit of one crawled origin."""
        documents = [parse_html(page.html, url=page.final_url)
                     for page in crawl_record.pages if page.ok and page.html]
        extraction = merge_extractions([extract_page(document) for document in documents])
        audit: dict[str, dict] = {}
        if documents:
            report = self._audit_engine.audit_document(documents[0])
            audit = {
                rule_id: {
                    "applicable": result.applicable,
                    "passed": result.passed,
                    "score": result.score,
                }
                for rule_id, result in report.results.items()
            }
        homepage = crawl_record.homepage
        return SiteRecord.from_extraction(
            extraction,
            domain=crawl_record.domain,
            country_code=crawl_record.country_code,
            language_code=crawl_record.language_code,
            rank=crawl_record.rank,
            served_variant=homepage.served_variant if homepage else None,
            audit=audit,
        )

    # -- stage 5: the dataset ------------------------------------------------------------------

    def run(self) -> PipelineResult:
        """Execute the full pipeline for every configured country."""
        web, crux = self.build_web()
        dataset = LangCrUXDataset()
        outcomes: dict[str, SelectionOutcome] = {}
        vantages: dict[str, VantagePoint] = {}
        for country in self.config.countries:
            vantages[country] = self.vantage_for(country)
            outcome = self.select_country(country)
            outcomes[country] = outcome
            for selected in outcome.selected:
                dataset.add(self.record_from_crawl(selected.record))
        return PipelineResult(dataset=dataset, crux_table=crux, web=web,
                              selection_outcomes=outcomes, vantages=vantages)

"""End-to-end LangCrUX pipeline (Figure 1 of the paper).

The pipeline chains every stage of the methodology:

1. **Web** — build (or accept) the synthetic web and its CrUX-style ranking.
2. **Vantage** — pick a VPN exit per country (falling back to a cloud
   vantage only when explicitly configured, reproducing the paper's
   vantage-point argument in the ablation benchmark).
3. **Selection + crawl** — walk the country's ranking, crawl candidates,
   validate the 50% visible-language criterion, and replace failures.
4. **Extraction + audit** — extract visible text and accessibility texts
   from each selected site and run the base (language-unaware) audits.
   Each page is parsed once and both stages work off the page's cached
   :class:`~repro.html.index.DocumentIndex`, one DOM traversal per page.
5. **Dataset** — assemble :class:`~repro.core.dataset.LangCrUXDataset`.

Stages 2–4 are independent per country, so they are expressed as *pure
per-shard functions* (:func:`execute_country_shard` and the helpers it
calls) that an execution backend from :mod:`repro.core.executor` dispatches
concurrently.  Every shard constructs its own transport, crawl session and
audit engine, and each candidate origin draws its transport randomness from
its own stream seeded by ``stable_seed(seed, "transport", country,
domain)``, so the outcome of crawling one origin depends on nothing but the
config — not on worker counts, batch sizes or completion interleavings.  A
parallel and/or batched run is therefore byte-identical to a sequential
one.

Intra-country sub-sharding
--------------------------
With ``PipelineConfig.sub_shard_size`` set, shard planning descends one
level: instead of one work unit per country, each country's ranking is cut
into fixed-size :class:`SelectionSubShard` windows and *those* are what the
executor dispatches (:func:`execute_selection_subshard`).  Each sub-shard
speculatively crawls its window, measures native shares, and — for
candidates that would qualify — speculatively builds the site record from
the already-parsed documents.  The parent then reassembles per-country
:class:`~repro.core.site_selection.SelectionOutcome`s by committing
sub-shard evaluations in strict rank order through a
:class:`~repro.core.site_selection.RankOrderCommitter`: once a country's
quota fills, later evaluations are discarded uncounted, queued sub-shards
of that country short-circuit via a filled-countries flag, and once every
country is finalized the executor stream is closed, cancelling anything
still pending.  Selected sets, rejection counters and output JSONL are
byte-identical to the sequential walk for every ``(executor, workers,
sub_shard_size, max_in_flight)`` combination — which is what lets a run
dominated by one large country scale past one worker.

Within a shard (or sub-shard), ``PipelineConfig.max_in_flight`` controls the
async batched fetch layer as before.

Across shards, :meth:`LangCrUXPipeline.run` can stream records straight to
disk through :class:`~repro.core.dataset.StreamingDatasetWriter`
(``stream_to``), preserving the ordered-merge guarantee (countries always
finalize in configured order, sub-sharded or not).  Streaming is *windowed*:
a sub-sharded run commits records to the writer per committed window — the
rank-order merge already serializes them — inside a per-country writer
section, and with ``keep_in_memory=False`` each record leaves memory the
moment it is on disk, with its selection outcome slimmed window by window.
Peak resident state is then proportional to in-flight windows
(``workers × sub_shard_size`` pages plus the executor's bounded reorder
buffer), not to ``sites_per_country``; time-to-first-record, the
record-buffer high-water mark and the process's peak RSS are tracked on
:class:`PipelineResult` and — under ``profile=True`` — as ``max``-merged
gauges on ``PipelineResult.perf_metrics``.

The result object keeps the intermediate artifacts (ranking, selection
outcomes, per-shard timing metrics) because several benchmark harnesses
report on them directly (Figure 7 uses the ranking, the selection benchmark
uses the outcomes, the scaling benchmark uses the shard metrics).
"""

from __future__ import annotations

import functools
import itertools
import random
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterator, Sequence

from repro import perf
from repro.audit.engine import AuditEngine
from repro.core.dataset import LangCrUXDataset, SiteRecord, StreamingDatasetWriter
from repro.core.executor import (
    PipelineExecutor,
    ProcessExecutor,
    ShardMetrics,
    ShardResult,
    create_executor,
    plan_chunks,
)
from repro.core.extraction import extract_page, merge_extractions
from repro.core.site_selection import (
    CandidateEvaluation,
    RankOrderCommitter,
    SelectedSite,
    SelectionOutcome,
    SiteSelector,
)
from repro.crawler.crawler import CrawlerConfig, LangCruxCrawler
from repro.crawler.fetcher import Fetcher, FetcherConfig, SimulatedTransport, SyncTransportAdapter
from repro.crawler.metrics import TransportMetrics
from repro.crawler.records import CrawlRecord
from repro.crawler.session import CrawlSession
from repro.crawler.transport import (
    HttpAsyncTransport,
    RetryPolicy,
    TransportStack,
    build_transport_stack,
)
from repro.crawler.vpn import DEFAULT_PROVIDERS, VantagePoint, VPNCoverageError, VPNManager
from repro.html.dom import Document
from repro.html.parser import parse_html
from repro.langid.languages import get_pair, langcrux_country_codes
from repro.obs import trace as obs_trace
from repro.obs.status import StatusReporter
from repro.webgen.crux import CruxTable, build_crux_table
from repro.webgen.server import SyntheticWeb
from repro.webgen.sitegen import SiteGenerator, SyntheticSite, stable_seed
from repro.webgen.profiles import get_profile


@dataclass
class PipelineConfig:
    """Configuration of a pipeline run.

    Attributes:
        countries: Country codes to process (defaults to all twelve).
        sites_per_country: The per-country quota of selected sites (the
            paper's 10,000, scaled down for synthetic runs).
        candidate_multiplier: How many ranked candidates to generate per
            country relative to the quota; must exceed 1 so the replacement
            logic has candidates to fall back on.
        seed: Seed for the synthetic web and the transport failure injection.
        max_pages_per_site: Pages crawled per origin (homepage first).
        use_vpn: Crawl through per-country VPN exits (the paper's setup).
            When false every country is crawled from a cloud vantage, which
            is the ablation configuration.
        transport_failure_rate: Transient failure probability injected by the
            simulated transport.
        language_threshold: Minimum native share of visible text (0.5).
        respect_robots: Whether the crawler honours robots.txt.
        workers: Number of country shards processed concurrently.  The
            default of 1 keeps the historical sequential behaviour; any
            value produces the same dataset bytes (per-shard seeding).
        executor: Execution backend — ``"auto"`` (serial for one worker,
            threads otherwise), ``"serial"``, ``"thread"`` or ``"process"``.
        max_in_flight: Concurrent candidate fetches inside one country shard
            (the async batched fetch layer).  1 keeps the sequential walk;
            any value produces the same dataset bytes (per-candidate RNG
            splits).
        sub_shard_size: When set, each country's candidate rank-walk is cut
            into sub-shards of this many candidates and those become the
            executor's work units, so a single large country can occupy
            every worker.  ``None`` (the default) keeps whole-country
            shards.  Any value produces the same dataset bytes: sub-shards
            are evaluated speculatively but committed in strict rank order.
        transport: ``"simulated"`` (the in-memory synthetic web, the
            default) or ``"http"`` — real sockets through
            :class:`~repro.crawler.transport.HttpAsyncTransport`, typically
            against a live :class:`~repro.webgen.server.LocalSiteServer`
            named by ``http_gateway``.  With the same web and no failure
            injection, both transports produce byte-identical datasets.
        http_gateway: ``HOST:PORT`` every origin resolves to when
            ``transport="http"`` (the loopback site server).  ``None``
            connects to each origin's own host.
        http_timeout_s: Socket timeout per request of the HTTP transport.
        crawl_cache: Directory of the on-disk crawl cache
            (:class:`~repro.crawler.transport.CachingTransport`).  ``None``
            disables caching; with a directory, a re-run replays every
            completed fetch from disk and only fetches what is missing.
        cache_fsync: Manifest durability policy of the crawl cache —
            ``"close"`` (the default) fsyncs each writer's manifest once on
            close; ``"entry"`` fsyncs every append, which distributed
            workers use so a window declared complete cannot lose manifest
            lines to a later crash.
        rate_limit: Per-host request rate (requests/second) enforced by the
            politeness layer; ``None`` disables rate limiting.
        max_per_host: Per-host concurrent-request cap; ``None`` disables.
        retry_backoff_s: Base backoff of the HTTP transport's retry layer
            (exponential, deterministic per-host jitter).  0 retries
            immediately — appropriate for loopback crawls.
        profile: Collect per-stage timings and op counters
            (:class:`~repro.perf.PerfCounters`) in every shard worker and
            aggregate them onto ``PipelineResult.perf_metrics``.  Profiling
            only observes the run — the produced dataset bytes are identical
            with and without it.
        trace_dir: Directory for :mod:`repro.obs.trace` span/event JSONL
            files (and ``status/`` heartbeats).  ``None`` disables tracing.
            Tracing, like profiling, is strictly out-of-band: dataset bytes
            are identical with and without it.
        trace_id: The run's trace id.  Normally left ``None`` (the process
            that starts the build allocates one and stamps it here so
            every worker — thread, process-pool or distributed — joins the
            same trace); set explicitly to adopt an external trace.
        trace_parent: Span id the run's spans nest under — the build root
            span, propagated to workers through pickling or ``build.json``.
    """

    countries: tuple[str, ...] = field(default_factory=langcrux_country_codes)
    sites_per_country: int = 30
    candidate_multiplier: float = 2.0
    seed: int = 7
    max_pages_per_site: int = 1
    use_vpn: bool = True
    transport_failure_rate: float = 0.02
    language_threshold: float = 0.5
    respect_robots: bool = True
    workers: int = 1
    executor: str = "auto"
    max_in_flight: int = 1
    sub_shard_size: int | None = None
    transport: str = "simulated"
    http_gateway: str | None = None
    http_timeout_s: float = 10.0
    crawl_cache: str | None = None
    cache_fsync: str = "close"
    rate_limit: float | None = None
    max_per_host: int | None = None
    retry_backoff_s: float = 0.0
    profile: bool = False
    trace_dir: str | None = None
    trace_id: str | None = None
    trace_parent: str | None = None


#: Transport kinds accepted by :class:`PipelineConfig` (and the CLI).
TRANSPORT_KINDS = ("simulated", "http")


@dataclass
class PipelineResult:
    """Everything a pipeline run produces.

    ``time_to_first_record_s`` and ``record_buffer_peak`` describe the
    record flow of the run: how long until the first site record was
    committed (to the stream writer when streaming, to the in-memory
    dataset otherwise), and the largest batch of records that was ever
    resident awaiting commit — window-sized under windowed streaming,
    country-sized under whole-country shards.
    """

    dataset: LangCrUXDataset
    crux_table: CruxTable
    web: SyntheticWeb
    selection_outcomes: dict[str, SelectionOutcome]
    vantages: dict[str, VantagePoint]
    shard_metrics: dict[str, ShardMetrics] = field(default_factory=dict)
    executor_name: str = "serial"
    executor_workers: int = 1
    stream_path: Path | None = None
    streamed_records: int = 0
    transport_metrics: TransportMetrics | None = None
    perf_metrics: perf.PerfCounters | None = None
    time_to_first_record_s: float | None = None
    record_buffer_peak: int = 0

    def qualifying_site_counts(self) -> dict[str, int]:
        """Selected sites per country (input to the selection-criteria check)."""
        return {country: len(outcome.selected)
                for country, outcome in self.selection_outcomes.items()}

    def total_shard_seconds(self) -> float:
        """Sum of per-shard wall-clock — the work a serial run would do."""
        return sum(metric.duration_s for metric in self.shard_metrics.values())


# -- pure per-shard functions -------------------------------------------------------
#
# Everything below takes the config (plus the prebuilt web) explicitly so it
# can run on any executor backend, including process pools where the shard
# callable and its arguments are pickled into the worker.


def build_web_for_config(config: PipelineConfig) -> tuple[SyntheticWeb, CruxTable]:
    """Generate the synthetic web and ranking for ``config`` (pure)."""
    candidates_per_country = max(
        config.sites_per_country + 1,
        int(config.sites_per_country * config.candidate_multiplier),
    )
    sites: list[SyntheticSite] = []
    for country in config.countries:
        generator = SiteGenerator(get_profile(country), seed=config.seed)
        sites.extend(generator.generate_sites(candidates_per_country))
    return SyntheticWeb(sites), build_crux_table(sites)


def _web_fingerprint(config: PipelineConfig) -> tuple:
    """The config fields that determine the generated web."""
    return (config.seed, config.countries, config.sites_per_country,
            config.candidate_multiplier)


#: Per-process memo of built webs, so a process-pool worker handling several
#: country shards generates the (cheap, lazy) site metadata only once.
_WEB_CACHE: dict[tuple, tuple[SyntheticWeb, CruxTable]] = {}


def _cached_web(config: PipelineConfig) -> tuple[SyntheticWeb, CruxTable]:
    fingerprint = _web_fingerprint(config)
    if fingerprint not in _WEB_CACHE:
        _WEB_CACHE[fingerprint] = build_web_for_config(config)
    return _WEB_CACHE[fingerprint]


def _ensure_tracing(config: PipelineConfig):
    """Join the run's trace in this process, or ``None`` when untraced.

    The per-process idempotence of :func:`repro.obs.trace.ensure` makes
    this safe to call from every shard/window entry point: the first call
    in a worker process opens its trace file parented under the build's
    ``trace_parent``; later calls are a lock and two comparisons.
    """
    if config.trace_dir is None:
        return None
    return obs_trace.ensure(config.trace_dir, trace_id=config.trace_id,
                            parent_span_id=config.trace_parent)


def vantage_for_country(config: PipelineConfig, country_code: str) -> VantagePoint:
    """The crawl vantage for a country under ``config`` (pure)."""
    if not config.use_vpn:
        return VantagePoint.cloud()
    try:
        return VPNManager(DEFAULT_PROVIDERS).vantage_for(country_code)
    except VPNCoverageError:
        return VantagePoint.cloud()


def _host_transport_rng(seed: int, country_code: str, host: str) -> random.Random:
    """The per-candidate transport RNG split: one stream per (country, host)."""
    return random.Random(stable_seed(seed, "transport", country_code, host))


def transport_stack_for_country(config: PipelineConfig, country_code: str,
                                web: SyntheticWeb) -> TransportStack | None:
    """The country shard's transport stack, or ``None`` for the fast path.

    A plain simulated run — no HTTP transport, no crawl cache, no
    politeness knobs — skips stack assembly entirely and keeps the
    historical direct-transport wiring.  Anything else composes the
    :mod:`repro.crawler.transport` layers around the configured base.
    """
    if config.transport not in TRANSPORT_KINDS:
        raise ValueError(f"unknown transport {config.transport!r}; "
                         f"expected one of {TRANSPORT_KINDS}")
    rng_factory = functools.partial(_host_transport_rng, config.seed, country_code)
    wants_http = config.transport == "http"
    wants_extras = (config.crawl_cache is not None or config.rate_limit is not None
                    or config.max_per_host is not None)
    if not wants_http and not wants_extras:
        return None
    if wants_http:
        base = HttpAsyncTransport(gateway=config.http_gateway,
                                  timeout_s=config.http_timeout_s)
        # The wire can genuinely fail transiently, so the stack retries with
        # deterministic per-host jitter; the simulated base keeps retry
        # behaviour in the fetcher (as always) so injected-failure runs stay
        # byte-identical with and without the stack.
        retry = RetryPolicy(backoff_base_s=config.retry_backoff_s)
    else:
        base = SyncTransportAdapter(SimulatedTransport(
            web, failure_rate=config.transport_failure_rate,
            rng_factory=rng_factory))
        retry = None
    return build_transport_stack(
        base,
        retry=retry,
        rng_factory=rng_factory,
        rate_per_host=config.rate_limit,
        max_per_host=config.max_per_host,
        user_agent=FetcherConfig().user_agent,
        cache_dir=config.crawl_cache,
        cache_fsync=config.cache_fsync,
    )


def crawler_for_country(config: PipelineConfig, country_code: str,
                        web: SyntheticWeb,
                        vantage: VantagePoint | None = None) -> LangCruxCrawler:
    """A crawler bound to the country's vantage, with shard-local state.

    The transport, fetcher and session are constructed fresh per shard —
    never shared across countries — so concurrent shards cannot interleave
    retry counters or robots caches.  Transport randomness is split per
    host (see :func:`_host_transport_rng`), so within the shard no two
    candidates share a stream either — the precondition for the batched
    selection walk being byte-identical to the sequential one.

    With transport extras configured (``transport="http"``, a crawl cache,
    politeness knobs) the session carries an assembled
    :class:`~repro.crawler.transport.TransportStack`: the async fetch path
    sends through it natively, the blocking path through its sync facade,
    and :meth:`~repro.crawler.session.CrawlSession.close` releases it.
    """
    if vantage is None:
        vantage = vantage_for_country(config, country_code)
    stack = transport_stack_for_country(config, country_code, web)
    if stack is not None:
        # When the stack carries its own retry layer (HTTP mode), it is the
        # single retry authority: the fetcher's identical policy on top
        # would multiply attempts against persistently failing origins
        # (4 wire tries become 16) and skew the retry counters.
        fetcher_config = FetcherConfig(max_retries=0) \
            if config.transport == "http" else FetcherConfig()
        fetcher = Fetcher(stack.sync_transport(), fetcher_config)
        session = CrawlSession(fetcher=fetcher, vantage=vantage,
                               respect_robots=config.respect_robots,
                               async_transport=stack.transport,
                               transport_stack=stack)
    else:
        transport = SimulatedTransport(
            web,
            failure_rate=config.transport_failure_rate,
            rng_factory=functools.partial(_host_transport_rng, config.seed,
                                          country_code),
        )
        fetcher = Fetcher(transport, FetcherConfig())
        session = CrawlSession(fetcher=fetcher, vantage=vantage,
                               respect_robots=config.respect_robots)
    crawler_config = CrawlerConfig(
        max_pages_per_site=config.max_pages_per_site,
        follow_links=config.max_pages_per_site > 1,
        respect_robots=config.respect_robots,
    )
    return LangCruxCrawler(session, crawler_config)


def selector_for_country(config: PipelineConfig, country_code: str,
                         web: SyntheticWeb,
                         vantage: VantagePoint | None = None) -> SiteSelector:
    """A selector over a fresh country-bound crawler (pure per-shard)."""
    pair = get_pair(country_code)
    crawler = crawler_for_country(config, country_code, web, vantage)
    return SiteSelector(crawler, pair.language.code,
                        threshold=config.language_threshold)


def _select_country_sites(config: PipelineConfig, country_code: str,
                          web: SyntheticWeb, crux: CruxTable,
                          vantage: VantagePoint | None = None,
                          ) -> tuple[SelectionOutcome, TransportMetrics | None]:
    """Selection + crawling for one country, releasing the transport stack.

    Returns the outcome together with the stack's metrics snapshot (``None``
    on the plain simulated fast path).  The crawl session is closed before
    returning — pooled sockets and cache manifest handles never outlive the
    walk, on any caller's path.
    """
    selector = selector_for_country(config, country_code, web, vantage)
    session = selector.crawler.session
    try:
        with obs_trace.span("select", {"country": country_code,
                                       "quota": config.sites_per_country}):
            outcome = selector.select(crux.iter_ranked(country_code),
                                      quota=config.sites_per_country,
                                      max_in_flight=config.max_in_flight)
            outcome.country_code = country_code
    finally:
        session.close()
    stack = session.transport_stack
    return outcome, stack.metrics if stack is not None else None


def select_country_sites(config: PipelineConfig, country_code: str,
                         web: SyntheticWeb, crux: CruxTable,
                         vantage: VantagePoint | None = None) -> SelectionOutcome:
    """Run selection + crawling for one country (pure per-shard)."""
    return _select_country_sites(config, country_code, web, crux, vantage)[0]


def record_from_crawl(crawl_record: CrawlRecord,
                      audit_engine: AuditEngine | None = None, *,
                      use_index: bool = True,
                      documents: Sequence[Document] | None = None) -> SiteRecord:
    """Extraction + audit of one crawled origin (pure per-shard).

    Each page is parsed exactly once; extraction and audit then share the
    parsed :class:`~repro.html.dom.Document` and — through
    :meth:`~repro.html.dom.Document.index` — one
    :class:`~repro.html.index.DocumentIndex` per page, so the per-page cost
    is a single DOM traversal instead of one per rule and element group.
    ``use_index=False`` keeps the naive traversal path (the reference the
    byte-parity tests and the benchmark compare against).

    Args:
        crawl_record: The crawled origin.
        audit_engine: The audit engine to use (a fresh one when ``None``).
        use_index: Whether lookups go through the document index.
        documents: The record's pages already parsed (in page order, one per
            ``ok`` HTML page), e.g. carried over from selection validation
            via :class:`~repro.core.site_selection.SelectedSite.documents`.
            Skips the re-parse; since parsing is deterministic, the produced
            record is byte-identical either way.
    """
    with perf.stage("record"):
        perf.count("record.sites")
        engine = audit_engine if audit_engine is not None else AuditEngine()
        if documents is None:
            documents = [parse_html(page.html, url=page.final_url)
                         for page in crawl_record.pages if page.ok and page.html]
        else:
            documents = list(documents)
        extraction = merge_extractions(
            [extract_page(document, use_index=use_index) for document in documents])
        audit: dict[str, dict] = {}
        if documents:
            report = engine.audit_document(documents[0], use_index=use_index)
            audit = {
                rule_id: {
                    "applicable": result.applicable,
                    "passed": result.passed,
                    "score": result.score,
                }
                for rule_id, result in report.results.items()
            }
        homepage = crawl_record.homepage
        return SiteRecord.from_extraction(
            extraction,
            domain=crawl_record.domain,
            country_code=crawl_record.country_code,
            language_code=crawl_record.language_code,
            rank=crawl_record.rank,
            served_variant=homepage.served_variant if homepage else None,
            audit=audit,
        )


@dataclass
class CountryShard:
    """The complete output of one country's selection → crawl → audit shard."""

    country_code: str
    vantage: VantagePoint
    outcome: SelectionOutcome
    records: list[SiteRecord]
    transport_metrics: TransportMetrics | None = None
    perf_metrics: perf.PerfCounters | None = None


def _slim_selected_site(selected: SelectedSite) -> SelectedSite:
    """A copy of ``selected`` with crawl payloads dropped (see below)."""
    return replace(selected,
                   documents=(),
                   record=replace(selected.record,
                                  pages=[replace(page, html="")
                                         for page in selected.record.pages]))


def slim_selection_outcome(outcome: SelectionOutcome) -> None:
    """Drop crawl payloads from ``outcome``, keeping counters + metadata.

    Every selected site's page snapshots lose their HTML (url, status,
    served variant, latency and error survive) and any carried parsed
    documents are dropped.  Streaming runs apply this as records reach disk
    — per committed *window* on the sub-sharded path, per shard otherwise —
    taking the run's resident state from O(selected HTML) to O(counters);
    the records themselves were already dropped via
    ``keep_in_memory=False``.
    """
    outcome.selected = [_slim_selected_site(selected)
                        for selected in outcome.selected]


def execute_country_shard(config: PipelineConfig, country_code: str,
                          web_and_crux: tuple[SyntheticWeb, CruxTable] | None = None,
                          ) -> CountryShard:
    """Run stages 2–4 for one country, with shard-local state only.

    Args:
        config: The pipeline configuration.
        country_code: The shard's country.
        web_and_crux: The prebuilt web and ranking.  ``None`` (the process
            backend) regenerates them deterministically from ``config`` via a
            per-process cache instead of pickling the whole web into the
            worker.
    """
    web, crux = web_and_crux if web_and_crux is not None else _cached_web(config)
    vantage = vantage_for_country(config, country_code)
    _ensure_tracing(config)
    # The collector activates only after web/vantage setup so that counters
    # cover the same work on every backend (process workers regenerate the
    # web in-process; thread workers receive it prebuilt).
    perf_counters = perf.PerfCounters() if config.profile else None
    with obs_trace.span("shard", {"country": country_code}), \
            perf.collecting(perf_counters):
        outcome, transport_metrics = _select_country_sites(config, country_code,
                                                           web, crux, vantage)
        audit_engine = AuditEngine()  # per-shard: concurrent audits never share state
        records = [record_from_crawl(selected.record, audit_engine,
                                     documents=selected.documents or None)
                   for selected in outcome.selected]
    # Selected sites carried their validation-time parsed documents into the
    # record build above; strip them now so the returned shard stays light
    # (and picklable without shipping DOM trees back from process workers).
    outcome.selected = [replace(selected, documents=())
                        for selected in outcome.selected]
    # Evict the generated page HTML of every origin this shard could have
    # crawled: the crawl is over, payloads live on the records, and a shared
    # web must not grow with origins visited (regeneration is seeded).
    for entry in crux.entries(country_code):
        if entry.origin in web:
            web.site(entry.origin).clear_page_cache()
    return CountryShard(country_code=country_code, vantage=vantage,
                        outcome=outcome, records=records,
                        transport_metrics=transport_metrics,
                        perf_metrics=perf_counters)


# -- intra-country sub-shards --------------------------------------------------------


@dataclass(frozen=True)
class SelectionSubShard:
    """One executor work unit of a sub-sharded selection walk.

    Attributes:
        country_code: The country whose ranking this window belongs to.
        chunk_index: Position of the window within the country (0-based).
        start: First candidate rank-position of the window (inclusive).
        stop: One past the last candidate rank-position (exclusive).
    """

    country_code: str
    chunk_index: int
    start: int
    stop: int


def plan_selection_windows(config: PipelineConfig,
                           crux: CruxTable) -> list[SelectionSubShard]:
    """Every sub-shard window of a run, in country-major rank order (pure).

    This is *the* deterministic work split: both the in-process sub-sharded
    merge loop and the distributed coordinator plan from it, so a window's
    identity — and therefore its evaluation result — is a function of the
    config alone, never of who executes it.
    """
    if config.sub_shard_size is None:
        raise ValueError("plan_selection_windows requires sub_shard_size")
    specs: list[SelectionSubShard] = []
    for country in config.countries:
        specs.extend(
            SelectionSubShard(country_code=country, chunk_index=chunk_index,
                              start=start, stop=stop)
            for chunk_index, (start, stop)
            in enumerate(plan_chunks(crux.size(country), config.sub_shard_size)))
    return specs


@dataclass
class SelectionSubShardResult:
    """The speculative output of one sub-shard.

    ``evaluations`` come back rank-ordered and slimmed for the trip home:
    documents are stripped, and non-qualifying candidates also drop their
    page snapshots (the committer only consults their pre-derived
    ``fetch_succeeded``, and only qualifying candidates' crawl records are
    retained on the outcome), so a process backend never ships rejected
    HTML parent-ward.  ``records`` holds, aligned with ``evaluations``, the
    speculatively built site record for every candidate that would qualify
    (``None`` otherwise).  A ``skipped`` result carries no evaluations: the
    worker observed that the country's quota had already filled and
    short-circuited.

    ``trace_span`` carries the window span's identity (trace id, span id,
    parent span id) when the evaluating process traced the window — the
    parentage stamp that lets ``langcrux trace`` join a distributed
    worker's spans into the coordinator's tree.
    """

    spec: SelectionSubShard
    evaluations: list[CandidateEvaluation]
    records: list[SiteRecord | None]
    skipped: bool = False
    transport_metrics: TransportMetrics | None = None
    perf_metrics: perf.PerfCounters | None = None
    trace_span: dict | None = None


def execute_selection_subshard(config: PipelineConfig, spec: SelectionSubShard,
                               web_and_crux: tuple[SyntheticWeb, CruxTable] | None = None,
                               filled_countries: set[str] | None = None,
                               ) -> SelectionSubShardResult:
    """Speculatively evaluate one rank window of one country (pure).

    Crawls the window's candidates, measures native shares, and builds the
    site record for each would-qualify candidate from its validation-time
    parse — all without touching selection state.  Whether each evaluation
    is *committed* (counted, selected) is decided later by the parent's
    rank-ordered merge, so running windows out of order, concurrently or
    redundantly cannot change the outcome.

    Args:
        config: The pipeline configuration.
        spec: The window to evaluate.
        web_and_crux: The prebuilt web and ranking (``None`` regenerates
            them deterministically per process, as for country shards).
        filled_countries: Optional live set of countries whose quota already
            filled; sub-shards of those return an empty ``skipped`` result
            without crawling.  Only same-process backends can observe
            updates (a process backend pickles the set's state at submit
            time), which is safe either way: skipping is a pure
            optimisation, the merge discards past-quota evaluations
            regardless.
    """
    if filled_countries is not None and spec.country_code in filled_countries:
        obs_trace.event("window.skipped", {"country": spec.country_code,
                                           "chunk": spec.chunk_index})
        return SelectionSubShardResult(spec=spec, evaluations=[], records=[],
                                       skipped=True)
    web, crux = web_and_crux if web_and_crux is not None else _cached_web(config)
    tracer = _ensure_tracing(config)
    window_span = tracer.start_span(
        "window", {"country": spec.country_code, "chunk": spec.chunk_index,
                   "start": spec.start, "stop": spec.stop}) \
        if tracer is not None else None
    selector = selector_for_country(config, spec.country_code, web)
    perf_counters = perf.PerfCounters() if config.profile else None
    try:
        try:
            with perf.collecting(perf_counters):
                evaluations = selector.evaluate_window(
                    crux.iter_ranked(spec.country_code), spec.start, spec.stop,
                    max_in_flight=config.max_in_flight)
                audit_engine = AuditEngine()  # per-sub-shard: never shared across workers
                records: list[SiteRecord | None] = []
                slimmed: list[CandidateEvaluation] = []
                for evaluation in evaluations:
                    qualifies = (evaluation.fetch_succeeded
                                 and evaluation.native_share >= config.language_threshold)
                    records.append(record_from_crawl(evaluation.record, audit_engine,
                                                     documents=evaluation.documents or None)
                                   if qualifies else None)
                    slim = evaluation.without_documents()
                    if not qualifies and slim.record.pages:
                        slim = replace(slim, record=replace(slim.record, pages=[]))
                    slimmed.append(slim)
        finally:
            session = selector.crawler.session
            session.close()
        # The window's crawl is over and every retained payload now lives on the
        # evaluations/records above; evict the synthetic origins' generated page
        # HTML so the (possibly shared) web does not grow with every origin
        # visited.  Regeneration is seeded, so a late refetch is byte-identical.
        for entry in crux.entries(spec.country_code)[spec.start:spec.stop]:
            if entry.origin in web:
                web.site(entry.origin).clear_page_cache()
        stack = session.transport_stack
        return SelectionSubShardResult(
            spec=spec, evaluations=slimmed, records=records,
            transport_metrics=stack.metrics if stack is not None else None,
            perf_metrics=perf_counters,
            trace_span=({"trace": tracer.trace_id,
                         "span": window_span.span_id,
                         "parent": window_span.parent_id}
                        if window_span is not None else None))
    finally:
        if window_span is not None:
            tracer.end_span(window_span)
            # Window boundaries are the durability points: pool children
            # exit via os._exit (no atexit), so anything still buffered
            # here would be lost with them.
            tracer.writer.flush()


@dataclass
class _CountryMergeState:
    """Accumulator for one country while its sub-shards stream in.

    Holds no site records: accepted records are committed to the run's
    :class:`RecordSink` the moment their window commits, so the state
    carries only counters and metrics — the memory contract of windowed
    streaming.
    """

    country_code: str
    index: int
    committer: RankOrderCommitter
    remaining_chunks: int
    records_committed: int = 0
    duration_s: float = 0.0
    sub_shards_merged: int = 0
    done: bool = False
    transport_metrics: TransportMetrics | None = None
    perf_metrics: perf.PerfCounters | None = None

    def merge_transport(self, metrics: TransportMetrics | None) -> None:
        if metrics is None:
            return
        if self.transport_metrics is None:
            self.transport_metrics = TransportMetrics()
        self.transport_metrics.merge(metrics)

    def merge_perf(self, counters: perf.PerfCounters | None) -> None:
        if counters is None:
            return
        if self.perf_metrics is None:
            self.perf_metrics = perf.PerfCounters()
        self.perf_metrics.merge(counters)


@dataclass
class _RunTotals:
    """Run-level transport/perf aggregation.

    Per-country shards merge their metrics here, and the sub-sharded merge
    loop folds the cost of *late* speculative windows — windows whose
    country had already finalized when their result arrived, including
    windows still in flight when the last country finalized — directly into
    these totals, so ``PipelineResult.transport_metrics`` /
    ``perf_metrics`` account for every window that actually ran.
    """

    transport: TransportMetrics | None = None
    perf: perf.PerfCounters | None = None

    def merge_transport(self, metrics: TransportMetrics | None) -> None:
        if metrics is None:
            return
        if self.transport is None:
            self.transport = TransportMetrics()
        self.transport.merge(metrics)

    def merge_perf(self, counters: perf.PerfCounters | None) -> None:
        if counters is None:
            return
        if self.perf is None:
            self.perf = perf.PerfCounters()
        self.perf.merge(counters)


class RecordSink:
    """Routes committed site records to disk and/or memory as they commit.

    One sink serves a whole run.  Windowed streaming hands it one window's
    records at a time; whole-country shards hand it a country's records at
    once; the distributed coordinator hands it pre-serialized record lines
    decoded from worker result files (:meth:`commit_serialized`).  The sink
    opens a writer *section* per country lazily on the country's first
    record and closes it via :meth:`finish_country`, so a country's lines
    land contiguously no matter how many windows they arrive in, and the
    writer refuses to commit while a country is half-written.

    It also observes the record flow: ``committed`` (total records),
    ``first_record_s`` (time from sink creation to the first committed
    record) and ``buffer_peak`` (the largest batch ever resident awaiting
    commit — the record-buffer high-water mark surfaced as the
    ``stream.buffer_peak_records`` gauge).
    """

    def __init__(self, writer: StreamingDatasetWriter | None,
                 dataset: LangCrUXDataset | None) -> None:
        self.writer = writer
        self.dataset = dataset
        self.committed = 0
        self.buffer_peak = 0
        self.first_record_s: float | None = None
        self._started = time.perf_counter()
        self._open_country: str | None = None

    def commit(self, country_code: str, records: Sequence[SiteRecord]) -> None:
        """Commit a rank-contiguous batch of ``country_code`` records."""
        if not records:
            return
        self._observe(len(records))
        if self.writer is not None:
            self._enter_section(country_code)
            self.writer.write_many(records)
        if self.dataset is not None:
            self.dataset.extend(records)
        self.committed += len(records)
        obs_trace.event("records.commit", {"country": country_code,
                                           "records": len(records)})

    def commit_serialized(self, country_code: str, lines: Sequence[str]) -> None:
        """Commit pre-serialized record lines (no in-memory accumulation).

        Distributed workers serialize each accepted record exactly as
        :meth:`StreamingDatasetWriter.write` would, so the coordinator can
        merge them into the stream verbatim — byte-identical to a
        single-host build without reconstructing :class:`SiteRecord`\\ s.
        """
        if not lines:
            return
        if self.writer is None:
            raise ValueError("commit_serialized requires a stream writer")
        self._observe(len(lines))
        self._enter_section(country_code)
        for line in lines:
            self.writer.write_serialized(line)
        self.committed += len(lines)
        obs_trace.event("records.commit", {"country": country_code,
                                           "records": len(lines)})

    def _observe(self, batch: int) -> None:
        if self.first_record_s is None:
            self.first_record_s = time.perf_counter() - self._started
        if batch > self.buffer_peak:
            self.buffer_peak = batch

    def _enter_section(self, country_code: str) -> None:
        if self._open_country != country_code:
            self.writer.begin_section(country_code)
            self._open_country = country_code

    def finish_country(self, country_code: str) -> None:
        """Close the country's writer section, if one was opened."""
        if self.writer is not None and self._open_country == country_code:
            self.writer.end_section()
            self._open_country = None


#: Backwards-compatible private alias (the sink predates the dist package).
_RecordSink = RecordSink


class LangCrUXPipeline:
    """Builds a LangCrUX dataset over the synthetic web."""

    def __init__(self, config: PipelineConfig | None = None,
                 *, web: SyntheticWeb | None = None,
                 crux_table: CruxTable | None = None) -> None:
        self.config = config or PipelineConfig()
        self._web = web
        self._crux = crux_table
        self._web_supplied = web is not None or crux_table is not None

    # -- stage 1: the web ---------------------------------------------------------

    def build_web(self) -> tuple[SyntheticWeb, CruxTable]:
        """Generate candidate sites for every configured country."""
        if self._web is not None and self._crux is not None:
            return self._web, self._crux
        self._web, self._crux = build_web_for_config(self.config)
        return self._web, self._crux

    # -- stage 2: vantage points -----------------------------------------------------

    def vantage_for(self, country_code: str) -> VantagePoint:
        """The crawl vantage for a country under the current configuration."""
        return vantage_for_country(self.config, country_code)

    # -- stage 3: selection + crawl -----------------------------------------------------

    def select_country(self, country_code: str) -> SelectionOutcome:
        """Run selection + crawling for one country."""
        web, crux = self.build_web()
        return select_country_sites(self.config, country_code, web, crux)

    # -- stage 4: extraction + audit ------------------------------------------------------

    def record_from_crawl(self, crawl_record: CrawlRecord) -> SiteRecord:
        """Extraction + audit of one crawled origin."""
        return record_from_crawl(crawl_record)

    # -- stage 5: the dataset ------------------------------------------------------------------

    def _executor(self) -> PipelineExecutor:
        return create_executor(self.config.executor, self.config.workers)

    def run(self, executor: PipelineExecutor | None = None, *,
            stream_to: str | Path | None = None,
            keep_in_memory: bool = True,
            slim_outcomes: bool | None = None) -> PipelineResult:
        """Execute the full pipeline for every configured country.

        Shards are dispatched on the configured executor (or an explicit
        ``executor`` argument) and their finished records stream back
        through a bounded queue; the reorder buffer of ``run_ordered``
        assembles the dataset in the configured country order, so the
        output is identical for every backend and worker count.

        Args:
            executor: Overrides the configured execution backend.
            stream_to: Stream records to this JSONL path as they commit,
                through an atomically-committed
                :class:`~repro.core.dataset.StreamingDatasetWriter`.  On a
                sub-sharded run records reach the writer per committed
                *window* — first bytes land while the first country is
                still crawling — inside per-country writer sections;
                otherwise per country shard.  Either way commit order
                matches the sequential merge order, so the streamed file is
                byte-identical to ``save_jsonl`` of the in-memory dataset;
                a failed run leaves the destination untouched.
            keep_in_memory: Whether to also accumulate the records on
                ``PipelineResult.dataset``.  Pass ``False`` (streaming runs
                only) when the dataset is consumed from the streamed file:
                site records are then dropped as soon as they are on disk.
            slim_outcomes: Whether to strip crawl payloads (page HTML,
                carried documents) from each shard's selection outcome once
                its records are safely accumulated/streamed, keeping only
                counters and per-page metadata (see
                :func:`slim_selection_outcome`).  Default (``None``): slim
                exactly when ``keep_in_memory`` is off — a streaming run's
                resident state then stays O(counters) instead of retaining
                every selected page's HTML for the whole run.
        """
        if not keep_in_memory and stream_to is None:
            raise ValueError("keep_in_memory=False requires stream_to: "
                             "the records would otherwise be lost")
        if slim_outcomes is None:
            slim_outcomes = not keep_in_memory
        # Tracing + live status are set up before anything traced runs.
        # The allocated trace id and the root span's id are stamped into
        # the config so every worker — thread, pickled process-pool or
        # (via build.json) distributed — parents its spans correctly.
        tracer = _ensure_tracing(self.config)
        root_span = None
        reporter = None
        if tracer is not None:
            self.config.trace_id = tracer.trace_id
            root_span = tracer.start_span(
                "build", {"countries": ",".join(self.config.countries),
                          "quota": self.config.sites_per_country,
                          "seed": self.config.seed,
                          "executor": self.config.executor,
                          "workers": self.config.workers})
            self.config.trace_parent = root_span.span_id
            tracer.default_parent = root_span.span_id
        try:
            web, crux = self.build_web()
            backend = executor if executor is not None else self._executor()
            dataset = LangCrUXDataset()
            writer = StreamingDatasetWriter(stream_to) if stream_to is not None else None
            sink = RecordSink(writer, dataset if keep_in_memory else None)
            totals = _RunTotals()
            if self.config.sub_shard_size is not None:
                shard_stream = self._run_subsharded(backend, web, crux, sink, totals,
                                                    slim_records=slim_outcomes)
            else:
                shard_stream = self._run_country_shards(backend, web, crux, sink)
            outcomes: dict[str, SelectionOutcome] = {}
            vantages: dict[str, VantagePoint] = {}
            metrics: dict[str, ShardMetrics] = {}
            if tracer is not None:
                reporter = StatusReporter(
                    self.config.trace_dir, "build",
                    lambda: {"trace": self.config.trace_id,
                             "records_streamed": sink.committed,
                             "countries_done": len(outcomes),
                             "countries_total": len(self.config.countries)})
                reporter.start()
            try:
                for shard, metric in shard_stream:
                    vantages[shard.country_code] = shard.vantage
                    outcomes[shard.country_code] = shard.outcome
                    if slim_outcomes:
                        slim_selection_outcome(shard.outcome)
                    totals.merge_transport(shard.transport_metrics)
                    totals.merge_perf(shard.perf_metrics)
                    metrics[shard.country_code] = metric
            except BaseException:
                if writer is not None:
                    writer.abort()
                raise
            if writer is not None:
                with obs_trace.span("dataset.commit",
                                    {"path": str(stream_to)}):
                    streamed = writer.close()
            else:
                streamed = 0
        finally:
            if reporter is not None:
                reporter.stop()
            if tracer is not None:
                tracer.end_span(root_span)
                obs_trace.disable()
        if totals.perf is not None:
            for name, value in perf.memory_gauges().items():
                totals.perf.gauge(name, value)
            if sink.first_record_s is not None:
                totals.perf.gauge("stream.first_record_s", sink.first_record_s)
            totals.perf.gauge("stream.buffer_peak_records", float(sink.buffer_peak))
        # Usable workers are capped by the number of work units: countries,
        # or sub-shard windows when the walk is sub-sharded (the whole point
        # of sub-sharding is that this cap exceeds the country count).
        if self.config.sub_shard_size is not None:
            work_units = sum(
                len(plan_chunks(crux.size(country), self.config.sub_shard_size))
                for country in self.config.countries)
        else:
            work_units = len(self.config.countries)
        return PipelineResult(dataset=dataset, crux_table=crux, web=web,
                              selection_outcomes=outcomes, vantages=vantages,
                              shard_metrics=metrics, executor_name=backend.name,
                              executor_workers=min(backend.workers, work_units),
                              stream_path=Path(stream_to) if stream_to is not None else None,
                              streamed_records=streamed,
                              transport_metrics=totals.transport,
                              perf_metrics=totals.perf,
                              time_to_first_record_s=sink.first_record_s,
                              record_buffer_peak=sink.buffer_peak)

    def _run_country_shards(self, backend: PipelineExecutor, web: SyntheticWeb,
                            crux: CruxTable, sink: RecordSink,
                            ) -> Iterator[tuple[CountryShard, ShardMetrics]]:
        """Dispatch whole-country shards, yielding them in configured order.

        Each shard's records are handed to ``sink`` (and dropped from the
        shard) before the shard is yielded, so the caller's loop never
        holds record payloads.
        """
        # Process workers rebuild the (lazily generated) web from the config
        # instead of receiving a pickled copy — unless the web was supplied
        # explicitly and cannot be derived from the config.
        if isinstance(backend, ProcessExecutor) and not self._web_supplied:
            shard_fn = functools.partial(execute_country_shard, self.config)
        else:
            shard_fn = functools.partial(execute_country_shard, self.config,
                                         web_and_crux=(web, crux))
        for result in backend.run_ordered(shard_fn, list(self.config.countries)):
            shard: CountryShard = result.value
            metric = ShardMetrics(shard=shard.country_code, index=result.index,
                                  duration_s=result.duration_s,
                                  records=len(shard.records))
            sink.commit(shard.country_code, shard.records)
            sink.finish_country(shard.country_code)
            shard.records = []
            yield shard, metric

    def _run_subsharded(self, backend: PipelineExecutor, web: SyntheticWeb,
                        crux: CruxTable, sink: RecordSink, totals: _RunTotals,
                        *, slim_records: bool,
                        ) -> Iterator[tuple[CountryShard, ShardMetrics]]:
        """Dispatch intra-country sub-shards and reassemble country shards.

        Sub-shards are submitted country by country in configured order (so
        ``run_ordered`` delivers each country's windows contiguously and in
        rank order) and their speculative evaluations are committed through
        per-country :class:`~repro.core.site_selection.RankOrderCommitter`s.
        A country finalizes — and is yielded, preserving the streaming
        order — as soon as its quota fills or its ranking exhausts; its
        remaining sub-shards are skipped via the shared filled flag or
        discarded on arrival.  Once every country has finalized, the
        executor stream is drained (folding the cost of still-in-flight
        speculative windows into ``totals``) and closed.

        Records flow through ``sink`` per *committed window*: each batch of
        newly accepted records is committed the moment its window merges,
        and — with ``slim_records`` — the matching slice of
        ``outcome.selected`` is slimmed in the same step, so resident state
        is bounded by in-flight windows instead of whole countries.
        Speculative results for non-frontier countries cannot pile up
        either: the thread backend's bounded result queue and the process
        backend's bounded lazy submission window cap undelivered results at
        O(workers + queue) windows.
        """
        config = self.config
        assert config.sub_shard_size is not None
        specs = plan_selection_windows(config, crux)
        states: dict[str, _CountryMergeState] = {}
        for position, country in enumerate(config.countries):
            states[country] = _CountryMergeState(
                country_code=country, index=position,
                committer=RankOrderCommitter(config.sites_per_country,
                                             config.language_threshold,
                                             country_code=country),
                remaining_chunks=0)
        for spec in specs:
            states[spec.country_code].remaining_chunks += 1
        filled: set[str] = set()
        if isinstance(backend, ProcessExecutor):
            # Workers in other processes cannot observe the live flag (and
            # rebuild the web per process when it is config-derived), so the
            # *parent* filters instead: the process backend consumes its
            # work lazily through a bounded submission window, and this
            # generator is evaluated at submit time — once a country
            # finalizes, none of its still-unsubmitted windows are ever
            # scheduled, bounding speculation waste to in-flight windows on
            # every backend.
            web_and_crux = (web, crux) if self._web_supplied else None
            subshard_fn = functools.partial(execute_selection_subshard, config,
                                            web_and_crux=web_and_crux)
            work: Sequence[SelectionSubShard] | Iterator[SelectionSubShard] = (
                spec for spec in specs if spec.country_code not in filled)
        else:
            subshard_fn = functools.partial(execute_selection_subshard, config,
                                            web_and_crux=(web, crux),
                                            filled_countries=filled)
            work = specs
        order = list(config.countries)
        finalized = 0

        def finalize(state: _CountryMergeState) -> tuple[CountryShard, ShardMetrics]:
            state.done = True
            filled.add(state.country_code)
            sink.finish_country(state.country_code)
            shard = CountryShard(
                country_code=state.country_code,
                vantage=vantage_for_country(config, state.country_code),
                outcome=state.committer.outcome,
                records=[],
                transport_metrics=state.transport_metrics,
                perf_metrics=state.perf_metrics)
            metric = ShardMetrics(shard=state.country_code, index=state.index,
                                  duration_s=state.duration_s,
                                  records=state.records_committed,
                                  sub_shards=state.sub_shards_merged)
            return shard, metric

        stream = backend.run_ordered(subshard_fn, work)
        try:
            for result in stream:
                sub: SelectionSubShardResult = result.value
                state = states[sub.spec.country_code]
                if state.done:
                    # Quota filled earlier; the speculation is discarded but
                    # its cost still lands in the run-level totals.
                    totals.merge_transport(sub.transport_metrics)
                    totals.merge_perf(sub.perf_metrics)
                    continue
                state.duration_s += result.duration_s
                state.merge_transport(sub.transport_metrics)
                state.merge_perf(sub.perf_metrics)
                if not sub.skipped:
                    state.sub_shards_merged += 1
                    record_for = {evaluation.entry: record
                                  for evaluation, record
                                  in zip(sub.evaluations, sub.records)}
                    accepted = state.committer.commit_chunk(sub.evaluations)
                    window_records: list[SiteRecord] = []
                    for evaluation, _site in accepted:
                        # Workers build records for exactly the candidates
                        # the committer accepts (same succeeded + threshold
                        # rule).
                        record = record_for[evaluation.entry]
                        assert record is not None
                        window_records.append(record)
                    if window_records:
                        # Rank-order commit serializes windows and countries
                        # finalize in submission order, so committing here —
                        # mid-country — still writes the stream in exactly
                        # the sequential byte order.
                        sink.commit(state.country_code, window_records)
                        state.records_committed += len(window_records)
                    if slim_records and accepted:
                        # Slim the just-committed slice of the outcome now
                        # that its records are safely on disk, instead of
                        # waiting for the whole country.
                        selected = state.committer.outcome.selected
                        for i in range(len(selected) - len(accepted),
                                       len(selected)):
                            selected[i] = _slim_selected_site(selected[i])
                state.remaining_chunks -= 1
                # Finalize the frontier of completed countries in configured
                # order; zero-window countries finalize when reached.
                while finalized < len(order):
                    frontier = states[order[finalized]]
                    if not frontier.done and not (frontier.committer.filled
                                                  or frontier.remaining_chunks == 0):
                        break
                    if not frontier.done:
                        yield finalize(frontier)
                    finalized += 1
                if finalized == len(order):
                    # Every country is final; what remains in the stream is
                    # speculative windows already in flight.  Drain them so
                    # their transport/perf cost reaches the run totals
                    # (queued-but-unstarted windows short-circuit as cheap
                    # ``skipped`` results or are never submitted at all),
                    # then close, which cancels nothing still pending.
                    for result in stream:
                        late: SelectionSubShardResult = result.value
                        totals.merge_transport(late.transport_metrics)
                        totals.merge_perf(late.perf_metrics)
                    break
        finally:
            stream.close()
        # Countries with no sub-shards at all (empty rankings) never appear
        # in the stream; flush them so every configured country reports.
        while finalized < len(order):
            state = states[order[finalized]]
            if not state.done:
                yield finalize(state)
            finalized += 1

"""Dataset integrity validation.

LangCrUX is released as a standalone artifact and re-analysed long after the
crawl, so a loaded dataset should be validated before any analysis is trusted.
This module performs the structural and semantic checks that catch the most
common corruption modes: truncated JSONL files, records from unknown
countries, impossible percentages, element counters that do not add up, and
audit entries referencing unknown rules.

``validate_dataset`` never raises on bad data — it returns a
:class:`ValidationReport` listing every issue, so callers can decide whether
to fail hard (the pipeline does, via ``raise_for_issues``) or to drop the
offending records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.dataset import LangCrUXDataset, SiteRecord
from repro.core.elements import ELEMENT_IDS
from repro.langid.languages import LANGUAGES, langcrux_country_codes


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found in a dataset.

    Attributes:
        domain: The offending record's domain ("" for dataset-level issues).
        field: The field or element the issue concerns.
        message: Human-readable description.
    """

    domain: str
    field: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - formatting convenience
        prefix = f"{self.domain}: " if self.domain else ""
        return f"{prefix}{self.field}: {self.message}"


@dataclass
class ValidationReport:
    """Outcome of validating a dataset."""

    records_checked: int = 0
    issues: list[ValidationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def issues_for(self, domain: str) -> list[ValidationIssue]:
        return [issue for issue in self.issues if issue.domain == domain]

    def raise_for_issues(self) -> None:
        """Raise ``ValueError`` summarising the issues, if any."""
        if self.issues:
            preview = "; ".join(str(issue) for issue in self.issues[:5])
            more = f" (+{len(self.issues) - 5} more)" if len(self.issues) > 5 else ""
            raise ValueError(f"dataset failed validation: {preview}{more}")


_VALID_COUNTRIES = set(langcrux_country_codes())


def _check_record(record: SiteRecord, issues: list[ValidationIssue]) -> None:
    def issue(field_name: str, message: str) -> None:
        issues.append(ValidationIssue(domain=record.domain or "<empty domain>",
                                      field=field_name, message=message))

    if not record.domain:
        issue("domain", "empty domain")
    if record.country_code not in _VALID_COUNTRIES:
        issue("country_code", f"unknown country {record.country_code!r}")
    if record.language_code not in LANGUAGES:
        issue("language_code", f"unknown language {record.language_code!r}")
    if record.rank <= 0:
        issue("rank", f"rank must be positive, got {record.rank}")
    for name, value in (("visible_native_share", record.visible_native_share),
                        ("visible_english_share", record.visible_english_share)):
        if not 0.0 <= value <= 1.0:
            issue(name, f"share out of range: {value}")
    if record.visible_text_chars < 0:
        issue("visible_text_chars", f"negative character count {record.visible_text_chars}")

    for element_id, observation in record.elements.items():
        if element_id not in ELEMENT_IDS:
            issue(f"elements[{element_id}]", "unknown element id")
            continue
        accounted = observation.missing + observation.empty + len(observation.texts)
        if observation.total < 0 or observation.missing < 0 or observation.empty < 0:
            issue(f"elements[{element_id}]", "negative counters")
        elif accounted != observation.total:
            issue(f"elements[{element_id}]",
                  f"counters do not add up: total={observation.total}, "
                  f"missing+empty+texts={accounted}")
        if any(not text.strip() for text in observation.texts):
            issue(f"elements[{element_id}]", "blank string stored as accessibility text")

    for rule_id, result in record.audit.items():
        if rule_id not in ELEMENT_IDS:
            issue(f"audit[{rule_id}]", "unknown audit rule id")
            continue
        score = result.get("score")
        if score is not None and not 0.0 <= float(score) <= 1.0:
            issue(f"audit[{rule_id}]", f"score out of range: {score}")
        if result.get("passed") and result.get("applicable") and score not in (None, 1.0):
            issue(f"audit[{rule_id}]", "passed audit with partial score")


def validate_records(records: Iterable[SiteRecord]) -> ValidationReport:
    """Validate individual records plus cross-record constraints."""
    report = ValidationReport()
    seen_domains: set[str] = set()
    for record in records:
        report.records_checked += 1
        _check_record(record, report.issues)
        if record.domain in seen_domains:
            report.issues.append(ValidationIssue(record.domain, "domain", "duplicate domain"))
        seen_domains.add(record.domain)
    return report


def validate_dataset(dataset: LangCrUXDataset) -> ValidationReport:
    """Validate a full dataset."""
    return validate_records(dataset)

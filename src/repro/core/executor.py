"""Parallel execution of per-country pipeline shards.

The paper's methodology (Figure 1) treats every language–country pair as an
independent unit of work: each country gets its own VPN vantage, its own
CrUX ranking walk, its own crawl session and its own audits.  Nothing flows
between countries until the final dataset assembly, which makes the pipeline
an embarrassingly parallel workload.  This module supplies the execution
layer that exploits that independence without giving up determinism:

* :class:`PipelineExecutor` — the abstraction: ``run()`` dispatches a shard
  function over a sequence of shards and streams :class:`ShardResult`
  envelopes back *as they complete*; ``run_ordered()`` re-sequences that
  stream into submission order with a reorder buffer, which is what makes
  parallel output byte-identical to sequential output.
* :class:`SerialExecutor` — the reference backend: runs shards inline, in
  order, with zero threading machinery.  Parallel backends are verified
  against it.
* :class:`ThreadedExecutor` — a ``concurrent.futures.ThreadPoolExecutor``
  backend.  Workers push finished results into a *bounded* queue, so a slow
  consumer exerts backpressure on the pool instead of letting completed
  shard payloads pile up in memory.  (Note: ``run_ordered`` must keep
  draining that queue to reach a straggling early shard, so the *ordered*
  view can buffer up to O(shards) results when shard durations are extreme;
  the bound applies to the unordered ``run`` stream.)
* :class:`ProcessExecutor` — a ``ProcessPoolExecutor`` backend for true
  CPU parallelism (page generation, HTML parsing and audits are pure-Python
  hot loops that threads cannot speed up under the GIL).  Shard functions
  and their arguments must be picklable.

Determinism contract
--------------------
Backends never inject randomness: every shard derives its own RNG from
``stable_seed(seed, "transport", country)`` inside the shard function, and
``run_ordered`` merges results in submission order.  Consequently a run with
``workers=4`` serializes to JSONL byte-for-byte identically to a sequential
run with the same :class:`~repro.core.pipeline.PipelineConfig` — a property
pinned by ``tests/test_core_executor.py``.

Failure contract
----------------
The first shard exception aborts the run: pending shards are cancelled, the
pool is drained and shut down, and the original exception is re-raised
wrapped in :class:`ExecutorError` (with the failing shard attached).

Sizing
------
``create_executor("auto", workers)`` picks :class:`SerialExecutor` for one
worker and :class:`ThreadedExecutor` otherwise; pass ``"process"``
explicitly for CPU-bound scaling across cores.  Worker counts are clamped
to the number of shards, so over-provisioning (``workers > countries``) is
harmless.
"""

from __future__ import annotations

import queue
import time
from abc import ABC, abstractmethod
from concurrent import futures
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

#: Default capacity of the bounded result queue between workers and the
#: consuming thread.  Small on purpose: it bounds how many finished shard
#: payloads (crawl records, HTML snapshots) can be buffered at once.
DEFAULT_QUEUE_SIZE = 8

#: Executor kinds accepted by :func:`create_executor` (and the CLI).
EXECUTOR_KINDS = ("auto", "serial", "thread", "process")


def plan_chunks(total: int, size: int) -> list[tuple[int, int]]:
    """``[start, stop)`` windows of at most ``size`` covering ``range(total)``.

    The unit of sub-shard planning: a shard of ``total`` rank-ordered items
    splits into ``ceil(total / size)`` contiguous windows, each of which can
    be evaluated independently and merged back in window order.

    Raises:
        ValueError: For a non-positive ``size`` or a negative ``total``.
    """
    if size < 1:
        raise ValueError(f"chunk size must be positive, got {size}")
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    return [(start, min(start + size, total)) for start in range(0, total, size)]


class ExecutorError(RuntimeError):
    """A shard function raised; wraps the original exception.

    Attributes:
        shard: The shard whose function failed (``None`` when unknown).
    """

    def __init__(self, message: str, *, shard: Any = None) -> None:
        super().__init__(message)
        self.shard = shard


@dataclass(frozen=True)
class ShardResult:
    """One completed shard, as streamed out of an executor.

    Attributes:
        index: Position of the shard in the submitted sequence.
        shard: The shard object itself (a country code in the pipeline).
        value: Whatever the shard function returned.
        duration_s: Wall-clock seconds the shard function ran for.
    """

    index: int
    shard: Any
    value: Any
    duration_s: float


@dataclass(frozen=True)
class ShardMetrics:
    """Progress/timing metrics for one shard, surfaced on the result.

    Attributes:
        shard: Shard identifier (the country code).
        index: Submission position of the shard.
        duration_s: Wall-clock seconds spent in the shard function.  For a
            sub-sharded shard this is the *sum* over its sub-shards — the
            work a serial walk would do, not the elapsed wall-clock.
        records: Number of site records the shard produced.
        sub_shards: How many sub-shard units the shard was executed as
            (1 when the shard ran as a single unit).
    """

    shard: str
    index: int
    duration_s: float
    records: int
    sub_shards: int = 1

    @property
    def records_per_second(self) -> float:
        """Shard throughput (0.0 for an instantaneous shard)."""
        if self.duration_s <= 0.0:
            return 0.0
        return self.records / self.duration_s


class PipelineExecutor(ABC):
    """Dispatches a shard function over independent shards."""

    #: Human-readable backend name (used in CLI output and benchmarks).
    name: str = "abstract"

    #: Number of concurrent workers the backend may use.
    workers: int = 1

    @abstractmethod
    def run(self, fn: Callable[[Any], Any],
            shards: Sequence[Any] | Iterable[Any]) -> Iterator[ShardResult]:
        """Run ``fn`` over ``shards``, yielding results as they complete.

        Completion order is backend-dependent; use :meth:`run_ordered` when
        downstream consumers require submission order.

        Raises:
            ExecutorError: When any shard function raises; remaining shards
                are cancelled.
        """

    def run_ordered(self, fn: Callable[[Any], Any],
                    shards: Sequence[Any] | Iterable[Any]) -> Iterator[ShardResult]:
        """Like :meth:`run` but re-sequenced into submission order.

        Out-of-order completions are held in a reorder buffer until every
        earlier shard has been yielded, which restores the deterministic
        merge order of a sequential run.  The buffer cannot be hard-bounded:
        a straggling early shard can only deliver its result once the queue
        is drained, so in the worst case (first shard slowest) the buffer
        holds all later results.  Callers for whom that matters should
        consume :meth:`run` directly and reorder/spill themselves.
        """
        buffered: dict[int, ShardResult] = {}
        next_index = 0
        stream = self.run(fn, shards)
        try:
            for result in stream:
                buffered[result.index] = result
                while next_index in buffered:
                    yield buffered.pop(next_index)
                    next_index += 1
        finally:
            # A consumer that stops early (e.g. the sub-sharded selection
            # walk once its quota fills) closes this generator; propagate
            # the close so the backend cancels pending shards and shuts its
            # pool down deterministically instead of at garbage collection.
            close = getattr(stream, "close", None)
            if close is not None:
                close()


class SerialExecutor(PipelineExecutor):
    """Runs shards inline, in submission order — the reference backend."""

    name = "serial"
    workers = 1

    def run(self, fn: Callable[[Any], Any],
            shards: Sequence[Any] | Iterable[Any]) -> Iterator[ShardResult]:
        for index, shard in enumerate(shards):
            started = time.perf_counter()
            try:
                value = fn(shard)
            except Exception as error:
                raise ExecutorError(f"shard {shard!r} failed: {error}",
                                    shard=shard) from error
            yield ShardResult(index=index, shard=shard, value=value,
                              duration_s=time.perf_counter() - started)


class ThreadedExecutor(PipelineExecutor):
    """Thread-pool backend with bounded-queue result streaming.

    Each worker computes a shard and then *blocks* handing the result into a
    bounded queue; the thread cannot pick up its next shard until the
    consumer has drained a slot, so memory stays bounded regardless of how
    uneven shard durations are.
    """

    name = "thread"

    def __init__(self, workers: int, *, queue_size: int = DEFAULT_QUEUE_SIZE) -> None:
        if workers < 1:
            raise ValueError(f"ThreadedExecutor requires at least one worker, got {workers}")
        if queue_size < 1:
            raise ValueError(f"queue_size must be positive, got {queue_size}")
        self.workers = workers
        self.queue_size = queue_size

    def run(self, fn: Callable[[Any], Any],
            shards: Sequence[Any] | Iterable[Any]) -> Iterator[ShardResult]:
        shard_list = list(shards)
        if not shard_list:
            return
        results: queue.Queue = queue.Queue(maxsize=self.queue_size)

        def job(index: int, shard: Any) -> None:
            started = time.perf_counter()
            try:
                value = fn(shard)
            except BaseException as error:  # delivered to the consumer, re-raised
                # there; BaseException included so a SystemExit inside a shard
                # cannot leave the consumer blocked on an empty queue forever.
                results.put((index, shard, None, 0.0, error))
                return
            results.put((index, shard, value, time.perf_counter() - started, None))

        pool = futures.ThreadPoolExecutor(
            max_workers=min(self.workers, len(shard_list)),
            thread_name_prefix="langcrux-shard",
        )
        pending = [pool.submit(job, index, shard)
                   for index, shard in enumerate(shard_list)]
        consumed = 0
        try:
            for _ in range(len(shard_list)):
                index, shard, value, duration_s, error = results.get()
                consumed += 1
                if error is not None:
                    if not isinstance(error, Exception):
                        raise error  # KeyboardInterrupt/SystemExit: not wrapped
                    raise ExecutorError(f"shard {shard!r} failed: {error}",
                                        shard=shard) from error
                yield ShardResult(index=index, shard=shard, value=value,
                                  duration_s=duration_s)
        finally:
            # Every job that was not cancelled before starting puts exactly
            # one envelope (errors included), so after cancelling we know
            # precisely how many are still owed and can block on the queue's
            # condition variable for each — no polling, no busy-wait, and no
            # worker left blocked on a full queue.
            cancelled = sum(1 for future in pending if future.cancel())
            for _ in range(len(pending) - cancelled - consumed):
                results.get()
            pool.shutdown(wait=True)


def _timed_call(fn: Callable[[Any], Any], index: int,
                shard: Any) -> tuple[int, Any, Any, float, Exception | None]:
    """Run one shard in a worker process, measuring its wall-clock time.

    Exceptions are returned rather than raised so the parent can report
    *which* shard failed (a raised exception would surface through
    ``Future.result()`` with the shard identity lost).
    """
    started = time.perf_counter()
    try:
        value = fn(shard)
    except Exception as error:
        return index, shard, None, 0.0, error
    return index, shard, value, time.perf_counter() - started, None


class ProcessExecutor(PipelineExecutor):
    """Process-pool backend for CPU-bound shards.

    ``fn`` and the shards must be picklable (the pipeline passes a
    ``functools.partial`` over a module-level shard function).  Completed
    futures are streamed through a completion queue so the consumer sees
    results as they finish rather than after a full barrier.  The queue
    holds future *references*, not payloads — payloads live on the futures
    either way, so bounding it would buy no memory and only risk a
    done-callback blocking while it holds pool-internal state; it is
    therefore unbounded (``queue_size`` is kept for signature compatibility
    with the thread backend and validated, but has no effect here).

    Shards are consumed *lazily* through a bounded submission window of
    ``workers + 1`` outstanding tasks (enough to keep every worker busy
    plus one queued), refilled after each yielded result.  Speculative
    workloads exploit this: the pipeline's sub-sharded selection walk hands
    this backend a *generator* that drops windows of already-finished
    countries at submit time, so a filled quota stops new windows from
    being scheduled at all — worker processes cannot observe the parent's
    live filled-flag, but the parent-side submission point can.
    """

    name = "process"

    def __init__(self, workers: int, *, queue_size: int = DEFAULT_QUEUE_SIZE) -> None:
        if workers < 1:
            raise ValueError(f"ProcessExecutor requires at least one worker, got {workers}")
        if queue_size < 1:
            raise ValueError(f"queue_size must be positive, got {queue_size}")
        self.workers = workers
        self.queue_size = queue_size

    def run(self, fn: Callable[[Any], Any],
            shards: Sequence[Any] | Iterable[Any]) -> Iterator[ShardResult]:
        source = enumerate(shards)
        done: queue.SimpleQueue = queue.SimpleQueue()
        pool: futures.ProcessPoolExecutor | None = None
        pending: list[futures.Future] = []
        consumed = 0
        in_flight = 0
        exhausted = False
        window = self.workers + 1

        def submit_next() -> bool:
            """Submit one shard from the source; False when exhausted."""
            nonlocal pool, in_flight, exhausted
            if exhausted:
                return False
            try:
                index, shard = next(source)
            except StopIteration:
                exhausted = True
                return False
            if pool is None:  # first task: spin the pool up lazily
                pool = futures.ProcessPoolExecutor(max_workers=self.workers)
            future = pool.submit(_timed_call, fn, index, shard)
            future.add_done_callback(done.put)
            pending.append(future)
            in_flight += 1
            return True

        try:
            while in_flight < window and submit_next():
                pass
            while in_flight:
                future = done.get()
                consumed += 1
                in_flight -= 1
                try:
                    index, shard, value, duration_s, error = future.result()
                except futures.CancelledError:  # pragma: no cover - abort path
                    continue
                except Exception as error:  # pool breakage, unpicklable payloads
                    raise ExecutorError(f"shard failed: {error}") from error
                if error is not None:
                    raise ExecutorError(f"shard {shard!r} failed: {error}",
                                        shard=shard) from error
                yield ShardResult(index=index, shard=shard, value=value,
                                  duration_s=duration_s)
                # Refill *after* the consumer processed the result: whatever
                # state the consumer updates (e.g. finished countries) is
                # visible to a lazily filtered shard source before the next
                # submission.
                while in_flight < window and submit_next():
                    pass
        finally:
            if pool is not None:
                for future in pending:
                    future.cancel()
                # Every future fires its done-callback exactly once — on
                # completion or on cancellation — so exactly len(pending)
                # envelopes ever enter the queue; block for the ones not yet
                # consumed instead of sleep-polling future states.
                for _ in range(len(pending) - consumed):
                    done.get()
                pool.shutdown(wait=True)


def create_executor(kind: str = "auto", workers: int = 1, *,
                    queue_size: int = DEFAULT_QUEUE_SIZE) -> PipelineExecutor:
    """Build an executor backend.

    Args:
        kind: One of :data:`EXECUTOR_KINDS`.  ``"auto"`` selects
            :class:`SerialExecutor` for a single worker and
            :class:`ThreadedExecutor` otherwise.
        workers: Number of concurrent shards (clamped to the shard count at
            run time).  Must be >= 1; a value larger than the number of
            shards is allowed and harmless.
        queue_size: Capacity of the bounded result queue.

    Raises:
        ValueError: For an unknown ``kind`` or a non-positive worker count.
    """
    if kind not in EXECUTOR_KINDS:
        raise ValueError(f"unknown executor kind {kind!r}; expected one of {EXECUTOR_KINDS}")
    if workers < 1:
        raise ValueError(f"executor requires at least one worker, got {workers}")
    if kind == "auto":
        kind = "serial" if workers == 1 else "thread"
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadedExecutor(workers, queue_size=queue_size)
    return ProcessExecutor(workers, queue_size=queue_size)

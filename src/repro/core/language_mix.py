"""Language-mix measurements.

Two measurements recur throughout the paper:

* the *share* of text written in the native language (character-level, via
  script detection) — used for the visible text of a page (Figure 2, the 50%
  inclusion criterion, the x-axis of Figures 5/8) and for the pooled
  accessibility text of a site (the y-axis of Figures 5/8);
* the *classification* of individual accessibility texts into native /
  English / mixed (Figure 4).

Both are built on :mod:`repro.langid`; this module provides the aggregation
helpers that turn per-text primitives into per-site and per-country numbers.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.langid.classify import TextLanguageClass, classify_text_language
from repro.langid.detector import LanguageShare, ScriptDetector
from repro.langid.languages import Language, get_language


@dataclass(frozen=True)
class LanguageMixSummary:
    """Counts of per-text language classes plus derived proportions."""

    native: int = 0
    english: int = 0
    mixed: int = 0
    other: int = 0
    empty: int = 0

    @property
    def classified(self) -> int:
        """Texts that received a native/english/mixed classification."""
        return self.native + self.english + self.mixed

    @property
    def total(self) -> int:
        return self.classified + self.other + self.empty

    def proportions(self) -> dict[str, float]:
        """Proportions of native/english/mixed among classified texts (Figure 4)."""
        classified = self.classified
        if classified == 0:
            return {"native": 0.0, "english": 0.0, "mixed": 0.0}
        return {
            "native": self.native / classified,
            "english": self.english / classified,
            "mixed": self.mixed / classified,
        }

    @classmethod
    def from_counter(cls, counter: Counter[TextLanguageClass]) -> "LanguageMixSummary":
        return cls(
            native=counter.get(TextLanguageClass.NATIVE, 0),
            english=counter.get(TextLanguageClass.ENGLISH, 0),
            mixed=counter.get(TextLanguageClass.MIXED, 0),
            other=counter.get(TextLanguageClass.OTHER, 0),
            empty=counter.get(TextLanguageClass.EMPTY, 0),
        )


class LanguageMixAccumulator:
    """Streaming counterpart of :func:`classify_texts`.

    Texts arrive one at a time (e.g. per record while a dataset streams in)
    and the running counter yields the same :class:`LanguageMixSummary` a
    one-shot classification of all texts would — per-text classification is
    independent, so accumulation order cannot change the outcome.
    """

    def __init__(self, language: Language | str) -> None:
        self.language = get_language(language) if isinstance(language, str) else language
        self._counter: Counter[TextLanguageClass] = Counter()

    def add(self, text: str) -> None:
        self._counter[classify_text_language(text, self.language)] += 1

    def add_many(self, texts: Iterable[str]) -> None:
        for text in texts:
            self.add(text)

    @property
    def texts_seen(self) -> int:
        return sum(self._counter.values())

    def summary(self) -> LanguageMixSummary:
        return LanguageMixSummary.from_counter(self._counter)


def classify_texts(texts: Iterable[str], language: Language | str) -> LanguageMixSummary:
    """Classify each text and aggregate the counts."""
    accumulator = LanguageMixAccumulator(language)
    accumulator.add_many(texts)
    return accumulator.summary()


def native_share_of_text(text: str, language: Language | str) -> LanguageShare:
    """Character-level language share of a single (possibly long) text."""
    return ScriptDetector(language).share(text)


def pooled_native_share(texts: Iterable[str], language: Language | str) -> float:
    """Native share of the concatenation of ``texts``.

    Pooling at the character level weights longer texts more, which matches
    how the visible-text share is computed and therefore keeps the two axes
    of Figures 5/8 comparable.  Returns 0.0 when no textual characters exist.
    """
    language = get_language(language) if isinstance(language, str) else language
    combined = " ".join(text for text in texts if text)
    share = ScriptDetector(language).share(combined)
    return share.native


def visible_language_profile(visible_text: str, language: Language | str) -> dict[str, float]:
    """Native/English/other percentages of visible text (Figure 2 axes).

    Values are percentages (0–100) to match the paper's figures.
    """
    share = ScriptDetector(language).share(visible_text)
    return {
        "native_pct": share.native * 100.0,
        "english_pct": share.english * 100.0,
        "other_pct": share.other * 100.0,
    }

"""The paper's contribution: LangCrUX construction, analysis and Kizuki.

Modules:

* :mod:`repro.core.elements` — the twelve language-sensitive accessibility
  elements (Table 1).
* :mod:`repro.core.extraction` — extraction of accessibility texts and
  visible text from crawled pages.
* :mod:`repro.core.filtering` — the eleven-category uninformative-text
  filter (Appendix H).
* :mod:`repro.core.language_mix` — native / English / mixed classification
  aggregates (Figures 2 and 4).
* :mod:`repro.core.selection` — language and country selection (Section 2).
* :mod:`repro.core.site_selection` — CrUX-driven website selection with the
  50% threshold and replacement.
* :mod:`repro.core.dataset` — the LangCrUX dataset model and persistence.
* :mod:`repro.core.analysis` — Table 2 statistics and the filtered-text
  breakdowns of Figures 3 and 9.
* :mod:`repro.core.mismatch` — visible-vs-accessibility mismatch metrics
  (Figures 5 and 8, the Section 3 headline numbers, Table 5 examples).
* :mod:`repro.core.kizuki` — the language-aware audit extension and the
  Figure 6 re-scoring.
* :mod:`repro.core.pipeline` — end-to-end orchestration (Figure 1).
* :mod:`repro.core.executor` — serial/thread/process execution backends for
  the per-country shards, with deterministic ordered merging.
"""

from repro.core.dataset import (
    LangCrUXDataset,
    SiteRecord,
    ElementObservation,
    StreamingDatasetWriter,
)
from repro.core.executor import (
    PipelineExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
    create_executor,
)
from repro.core.kizuki import Kizuki, KizukiConfig, KizukiImageAltRule
from repro.core.pipeline import LangCrUXPipeline, PipelineConfig

__all__ = [
    "LangCrUXDataset",
    "SiteRecord",
    "ElementObservation",
    "StreamingDatasetWriter",
    "Kizuki",
    "KizukiConfig",
    "KizukiImageAltRule",
    "LangCrUXPipeline",
    "PipelineConfig",
    "PipelineExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "create_executor",
]

"""Filtering uninformative accessibility text (Appendix H).

The presence of an ``alt`` or ``aria-label`` attribute does not guarantee
usefulness: labels such as ``button``, ``file1`` or a raw file path satisfy
automated checks while conveying nothing to a screen-reader user.  The paper
therefore classifies every accessibility text into eleven discard categories
(or keeps it as *useful*), and Figures 3 and 9 report the distribution of
discarded text by country and by HTML element.

This module implements that rule pipeline.  Rules are evaluated in a fixed
order (first match wins); the order puts the most specific patterns first so
that, e.g., a URL is reported as *URL or File Path* rather than as a
*Single Word*.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.langid.scripts import Script, is_emoji_only, script_histogram, textual_length


class DiscardCategory(str, enum.Enum):
    """The eleven discard categories of Appendix H."""

    EMOJI = "emoji"
    TOO_SHORT = "too_short"
    FILE_NAME = "file_name"
    URL_OR_PATH = "url_or_path"
    GENERIC_ACTION = "generic_action"
    PLACEHOLDER = "placeholder"
    DEV_LABEL = "dev_label"
    LABEL_NUMBER_PATTERN = "label_number_pattern"
    SINGLE_WORD = "single_word"
    MIXED_ALNUM = "mixed_alnum"
    ORDINAL_PHRASE = "ordinal_phrase"

    @property
    def display_name(self) -> str:
        """The legend label used by the paper's Figures 3 and 9."""
        return _DISPLAY_NAMES[self]


_DISPLAY_NAMES: dict[DiscardCategory, str] = {
    DiscardCategory.EMOJI: "Emoji",
    DiscardCategory.TOO_SHORT: "Too Short",
    DiscardCategory.FILE_NAME: "File Name",
    DiscardCategory.URL_OR_PATH: "URL or File Path",
    DiscardCategory.GENERIC_ACTION: "Generic Action",
    DiscardCategory.PLACEHOLDER: "Placeholder",
    DiscardCategory.DEV_LABEL: "Dev Label",
    DiscardCategory.LABEL_NUMBER_PATTERN: "Label Number Pattern",
    DiscardCategory.SINGLE_WORD: "Single Word",
    DiscardCategory.MIXED_ALNUM: "Mixed Alnum",
    DiscardCategory.ORDINAL_PHRASE: "Ordinal Phrase",
}


@dataclass(frozen=True)
class FilterResult:
    """Outcome of filtering one accessibility text."""

    text: str
    category: DiscardCategory | None

    @property
    def informative(self) -> bool:
        """Whether the text survives filtering and is considered useful."""
        return self.category is None


#: Generic UI actions in English and in the studied languages (Appendix H:
#: "Common UI actions (e.g. 'close', 'search') in multiple languages are
#: filtered if used alone without context").
GENERIC_ACTIONS: frozenset[str] = frozenset({
    # English
    "search", "close", "send", "submit", "open", "play", "pause", "stop", "menu",
    "open menu", "close menu", "toggle navigation", "login", "log in", "logout",
    "sign in", "sign up", "register", "next", "previous", "back", "download",
    "upload", "share", "print", "ok", "cancel", "more", "read more", "click here",
    # Hindi
    "खोजें", "बंद करें", "भेजें",
    # Bangla
    "অনুসন্ধান", "বন্ধ করুন", "পাঠান",
    # Arabic
    "بحث", "إغلاق", "إرسال",
    # Russian
    "поиск", "закрыть", "отправить",
    # Japanese
    "検索", "閉じる", "送信",
    # Mandarin / Cantonese
    "搜索", "关闭", "提交", "搜尋", "關閉",
    # Korean (the paper's own example is 닫기, "close")
    "검색", "닫기", "보내기",
    # Thai
    "ค้นหา", "ปิด", "ส่ง",
    # Greek
    "αναζήτηση", "κλείσιμο", "αποστολή",
    # Hebrew
    "חיפוש", "סגירה", "שליחה",
})

#: Generic placeholders for images/components in English and the studied
#: languages (Appendix H: "image", "icon", "button" and their translations).
PLACEHOLDERS: frozenset[str] = frozenset({
    # English
    "image", "icon", "button", "photo", "picture", "logo", "banner", "thumbnail",
    "img", "graphic", "avatar", "placeholder",
    # Hindi
    "चित्र", "बटन", "छवि",
    # Bangla
    "ছবি", "বোতাম", "আইকন",
    # Arabic
    "صورة", "زر", "أيقونة",
    # Russian
    "изображение", "кнопка", "значок",
    # Japanese
    "画像", "ボタン", "アイコン",
    # Mandarin / Cantonese (the paper's example: 图像)
    "图像", "按钮", "图标", "圖像", "按鈕", "圖示",
    # Korean
    "이미지", "버튼", "아이콘",
    # Thai
    "รูปภาพ", "ปุ่ม", "ไอคอน",
    # Greek
    "εικόνα", "κουμπί", "εικονίδιο",
    # Hebrew
    "תמונה", "כפתור", "סמל",
})

#: Asset-file extensions treated as file names.
_FILE_EXTENSIONS = (
    ".jpg", ".jpeg", ".png", ".gif", ".svg", ".webp", ".bmp", ".ico", ".tiff",
    ".pdf", ".mp4", ".mp3", ".avif",
)

#: Label words participating in "label + number" patterns.
_LABEL_NUMBER_WORDS = (
    "image", "img", "button", "slide", "figure", "fig", "photo", "banner",
    "item", "icon", "picture", "pic", "logo", "step",
)

_URL_RE = re.compile(r"^(https?://|www\.|/[\w.-]+(/|\.\w))", re.IGNORECASE)
_SCHEME_RE = re.compile(r"\w+://")
_DEV_LABEL_RE = re.compile(r"^[A-Za-z][A-Za-z0-9]*([_-][A-Za-z0-9]+)+$")
_MIXED_ALNUM_RE = re.compile(r"^[A-Za-z]+\d+[A-Za-z0-9]*$")
_ORDINAL_RE = re.compile(r"^\s*([A-Za-z]+\s+)?\d+\s*(of|/)\s*\d+\s*$", re.IGNORECASE)
_LABEL_NUMBER_RE = re.compile(
    r"^\s*(" + "|".join(_LABEL_NUMBER_WORDS) + r")[\s_-]+\d+\s*$", re.IGNORECASE)

#: Scripts written without inter-word spaces: a single whitespace token in one
#: of these scripts can be a full sentence, so the single-word rule uses a
#: character-length criterion for them instead.
_NON_SPACING_SCRIPTS = {
    Script.HAN, Script.HIRAGANA, Script.KATAKANA, Script.THAI, Script.LAO,
    Script.KHMER, Script.MYANMAR,
}

#: "CJK" scripts for the too-short threshold (1 character instead of 3).
_CJK_SHORT_SCRIPTS = {Script.HAN, Script.HIRAGANA, Script.KATAKANA, Script.HANGUL}


def _dominant_is(text: str, scripts: set[Script]) -> bool:
    counts = script_histogram(text, textual_only=True)
    if not counts:
        return False
    total = sum(counts.values())
    return sum(counts.get(script, 0) for script in scripts) / total > 0.5


def _is_too_short(text: str) -> bool:
    length = textual_length(text)
    if length == 0:
        # Pure punctuation/symbols (e.g. ">" or "..") convey nothing.
        return True
    limit = 1 if _dominant_is(text, _CJK_SHORT_SCRIPTS) else 2
    return length <= limit


def _is_single_word(text: str) -> bool:
    stripped = text.strip()
    if not stripped or any(char.isspace() for char in stripped):
        return False
    if _dominant_is(stripped, _NON_SPACING_SCRIPTS):
        # Without spaces a "word" cannot be token-counted; treat only very
        # short runs as single words.
        return textual_length(stripped) <= 4
    return True


def classify_text(text: str) -> FilterResult:
    """Classify one accessibility text.

    Returns a :class:`FilterResult` whose ``category`` is ``None`` for
    informative (retained) text.  Empty or whitespace-only input is reported
    as too short; callers normally exclude empty values beforehand because
    the paper tracks them separately (Table 2).
    """
    stripped = text.strip()
    if not stripped:
        return FilterResult(text, DiscardCategory.TOO_SHORT)

    lowered = stripped.lower()

    if is_emoji_only(stripped):
        return FilterResult(text, DiscardCategory.EMOJI)
    if _URL_RE.match(stripped) or _SCHEME_RE.search(stripped):
        return FilterResult(text, DiscardCategory.URL_OR_PATH)
    if lowered.endswith(_FILE_EXTENSIONS) and " " not in stripped:
        return FilterResult(text, DiscardCategory.FILE_NAME)
    if _ORDINAL_RE.match(stripped):
        return FilterResult(text, DiscardCategory.ORDINAL_PHRASE)
    if _LABEL_NUMBER_RE.match(stripped):
        return FilterResult(text, DiscardCategory.LABEL_NUMBER_PATTERN)
    if _MIXED_ALNUM_RE.match(stripped):
        return FilterResult(text, DiscardCategory.MIXED_ALNUM)
    if _DEV_LABEL_RE.match(stripped):
        return FilterResult(text, DiscardCategory.DEV_LABEL)
    if lowered in GENERIC_ACTIONS:
        return FilterResult(text, DiscardCategory.GENERIC_ACTION)
    if lowered in PLACEHOLDERS:
        return FilterResult(text, DiscardCategory.PLACEHOLDER)
    if _is_too_short(stripped):
        return FilterResult(text, DiscardCategory.TOO_SHORT)
    if _is_single_word(stripped):
        return FilterResult(text, DiscardCategory.SINGLE_WORD)
    return FilterResult(text, None)


def is_informative(text: str) -> bool:
    """Shortcut: whether ``text`` survives the filtering pipeline."""
    return classify_text(text).informative


def filter_texts(texts: list[str]) -> tuple[list[str], dict[DiscardCategory, int]]:
    """Split ``texts`` into retained texts and per-category discard counts."""
    retained: list[str] = []
    discarded: dict[DiscardCategory, int] = {}
    for text in texts:
        result = classify_text(text)
        if result.informative:
            retained.append(text)
        else:
            assert result.category is not None
            discarded[result.category] = discarded.get(result.category, 0) + 1
    return retained, discarded

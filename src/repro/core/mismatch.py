"""Visible-vs-accessibility language mismatch analysis.

Section 4 of the paper compares the language of what sighted users *see*
(visible text) with the language of what screen-reader users *hear*
(accessibility metadata).  This module computes:

* the per-site (visible native %, accessibility native %) points behind the
  country scatter plots of Figure 8 and the Figure 2 visible-text views;
* the per-country CDFs of Figure 5;
* the headline metric of Section 3/4: the fraction of sites whose
  accessibility text is less than 10% native despite predominantly native
  visible content (over 40% in Bangladesh and India, above a quarter in
  Thailand/China/Hong Kong, under 10% in Japan and Israel);
* concrete mismatch examples in the style of Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dataset import LangCrUXDataset, SiteRecord
from repro.core.filtering import classify_text
from repro.langid.classify import TextLanguageClass, classify_text_language
from repro.stats.cdf import EmpiricalCDF


@dataclass(frozen=True)
class SiteLanguagePoint:
    """One point of the Figure 8 scatter plots."""

    domain: str
    country_code: str
    visible_native_pct: float
    accessibility_native_pct: float
    accessibility_texts: int


def site_language_point(record: SiteRecord, *, informative_only: bool = False) -> SiteLanguagePoint:
    """The (visible, accessibility) native-share point for one site."""
    return SiteLanguagePoint(
        domain=record.domain,
        country_code=record.country_code,
        visible_native_pct=record.visible_native_share * 100.0,
        accessibility_native_pct=record.accessibility_native_share(
            informative_only=informative_only) * 100.0,
        accessibility_texts=len(record.accessibility_texts()),
    )


def country_scatter(dataset: LangCrUXDataset, country_code: str,
                    *, informative_only: bool = False) -> list[SiteLanguagePoint]:
    """All scatter points of one country (Figure 8)."""
    return [site_language_point(record, informative_only=informative_only)
            for record in dataset.for_country(country_code)]


@dataclass(frozen=True)
class CountryCDFs:
    """The two CDFs of one Figure 5 panel."""

    country_code: str
    visible: EmpiricalCDF
    accessibility: EmpiricalCDF

    def tabulate(self, grid: tuple[float, ...] = (0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
                 ) -> dict[str, list[tuple[float, float]]]:
        return {
            "visible": self.visible.tabulate(grid),
            "accessibility": self.accessibility.tabulate(grid),
        }


def country_cdfs(dataset: LangCrUXDataset, country_code: str,
                 *, informative_only: bool = False) -> CountryCDFs:
    """Native-share CDFs for visible and accessibility text (Figure 5)."""
    points = country_scatter(dataset, country_code, informative_only=informative_only)
    return CountryCDFs(
        country_code=country_code,
        visible=EmpiricalCDF(point.visible_native_pct for point in points),
        accessibility=EmpiricalCDF(point.accessibility_native_pct for point in points),
    )


def low_native_accessibility_fraction(dataset: LangCrUXDataset, country_code: str,
                                      *, threshold_pct: float = 10.0,
                                      informative_only: bool = False) -> float:
    """Fraction of a country's sites with accessibility text below ``threshold_pct`` native.

    This is the paper's headline mismatch metric ("over 40% of websites have
    less than 10% of their accessibility text in the native language" for
    India and Bangladesh).
    """
    points = country_scatter(dataset, country_code, informative_only=informative_only)
    if not points:
        return 0.0
    low = sum(1 for point in points if point.accessibility_native_pct < threshold_pct)
    return low / len(points)


def no_native_accessibility_fraction(dataset: LangCrUXDataset, country_code: str) -> float:
    """Fraction of sites with *no* native-language accessibility text at all.

    Section 1 reports that nearly 40% of websites in Bangladesh and India
    "lack any accessibility text in the native language".
    """
    records = list(dataset.for_country(country_code))
    if not records:
        return 0.0
    lacking = 0
    for record in records:
        texts = record.accessibility_texts()
        has_native = any(
            classify_text_language(text, record.language_code)
            in (TextLanguageClass.NATIVE, TextLanguageClass.MIXED)
            for text in texts
        )
        if not has_native:
            lacking += 1
    return lacking / len(records)


@dataclass(frozen=True)
class MismatchExample:
    """A Table 5 style example: native visible content, English accessibility text."""

    domain: str
    country_code: str
    visible_native_pct: float
    accessibility_native_pct: float
    sample_alt_texts: tuple[str, ...]


class MismatchAccumulator:
    """Streaming core of the Section 4 mismatch analyses.

    One pass over the records (e.g. while a dataset's JSONL shards stream
    in) retains the per-country scatter points of Figure 8 and, when
    ``collect_examples`` is set, the qualifying Table 5 examples — after
    which :meth:`summary` answers the Figure 5 headline metric for *any*
    threshold and :meth:`examples` any limit, without touching the records
    again.  Batch helpers below are thin wrappers, so the streaming and
    one-shot paths cannot drift.
    """

    def __init__(self, *, min_visible_native_pct: float = 90.0,
                 max_accessibility_native_pct: float = 10.0,
                 samples_per_site: int = 3, collect_examples: bool = True) -> None:
        self.min_visible_native_pct = min_visible_native_pct
        self.max_accessibility_native_pct = max_accessibility_native_pct
        self.samples_per_site = samples_per_site
        self.collect_examples = collect_examples
        self._points: dict[str, list[SiteLanguagePoint]] = {}
        self._examples: list[MismatchExample] = []

    def add(self, record: SiteRecord) -> None:
        """Fold one site record into the per-country points (and examples)."""
        point = site_language_point(record)
        self._points.setdefault(record.country_code, []).append(point)
        if self.collect_examples:
            self._maybe_example(record, point)

    def _maybe_example(self, record: SiteRecord, point: SiteLanguagePoint) -> None:
        if point.visible_native_pct < self.min_visible_native_pct:
            return
        if point.accessibility_native_pct > self.max_accessibility_native_pct:
            return
        informative_alts = [text for text in record.element("image-alt").texts
                            if classify_text(text).informative]
        english_alts = [text for text in informative_alts
                        if classify_text_language(text, record.language_code)
                        is TextLanguageClass.ENGLISH]
        if not english_alts:
            return
        self._examples.append(MismatchExample(
            domain=record.domain,
            country_code=record.country_code,
            visible_native_pct=point.visible_native_pct,
            accessibility_native_pct=point.accessibility_native_pct,
            sample_alt_texts=tuple(english_alts[:self.samples_per_site]),
        ))

    # -- queries over the accumulated state -----------------------------------

    def countries(self) -> tuple[str, ...]:
        return tuple(sorted(self._points))

    def points(self, country_code: str) -> tuple[SiteLanguagePoint, ...]:
        return tuple(self._points.get(country_code, ()))

    @property
    def example_count(self) -> int:
        return len(self._examples)

    def examples(self, *, limit: int = 10) -> list[MismatchExample]:
        """The first ``limit`` qualifying examples, in record order."""
        return list(self._examples[:limit])

    def low_native_fraction(self, country_code: str, *, threshold_pct: float = 10.0) -> float:
        """Fraction of a country's sites below ``threshold_pct`` native."""
        points = self._points.get(country_code, [])
        if not points:
            return 0.0
        low = sum(1 for point in points if point.accessibility_native_pct < threshold_pct)
        return low / len(points)

    def summary(self, *, threshold_pct: float = 10.0) -> dict[str, float]:
        """Per-country low-native fractions over everything accumulated."""
        return {country: self.low_native_fraction(country, threshold_pct=threshold_pct)
                for country in self.countries()}


def mismatch_examples(dataset: LangCrUXDataset, *, min_visible_native_pct: float = 90.0,
                      max_accessibility_native_pct: float = 10.0,
                      samples_per_site: int = 3, limit: int = 10) -> list[MismatchExample]:
    """Concrete examples of the mismatch (Table 5 / Appendix I).

    A site qualifies when its visible content is overwhelmingly native while
    its accessibility text contains almost none of the native language; the
    sampled alt texts must be informative (post-filtering) so that the
    examples show genuine English descriptions rather than placeholders.
    """
    accumulator = MismatchAccumulator(
        min_visible_native_pct=min_visible_native_pct,
        max_accessibility_native_pct=max_accessibility_native_pct,
        samples_per_site=samples_per_site,
    )
    for record in dataset:
        accumulator.add(record)
        if accumulator.example_count >= limit:
            break
    return accumulator.examples(limit=limit)


def mismatch_summary(dataset: LangCrUXDataset, *, threshold_pct: float = 10.0) -> dict[str, float]:
    """Per-country low-native-accessibility fractions, for quick reporting."""
    accumulator = MismatchAccumulator(collect_examples=False)
    for record in dataset:
        accumulator.add(record)
    return accumulator.summary(threshold_pct=threshold_pct)

"""Website selection with language validation and replacement (Section 2).

For each language–country pair the paper takes the top CrUX-ranked origins,
validates via the Unicode-script heuristic that at least 50% of the visible
text is in the target language, and replaces origins that fail validation
(or that cannot be crawled, e.g. VPN-blocking sites) with the next-ranked
candidate, extending into lower ranks until the quota is filled or the
ranking is exhausted.

This module implements that loop on top of the crawler; it is the step that
turns a ranking into the set of origins whose crawl records feed the dataset
builder.

Architecture: speculative evaluation, rank-ordered commit
---------------------------------------------------------
The walk is split into two halves with different freedom to parallelise:

* **Evaluation** (:meth:`SiteSelector.evaluate`) — crawl one candidate and
  measure its visible-text native share.  Thanks to the per-candidate RNG
  split of the simulated transport (``stable_seed(seed, "transport",
  country, host)``), the result depends on nothing but the candidate, so
  evaluations may run in any order, concurrently, batched, or speculatively
  past the quota boundary.
* **Commit** (:class:`RankOrderCommitter`) — apply the paper's
  accept/replace rule to evaluations in *strict rank order*, stopping the
  moment the quota fills.  Evaluations past that point are discarded
  uncounted, so the selected set, every rejection counter and the resulting
  records are byte-identical to the strictly sequential walk.

Three dispatch modes share those halves:

* the sequential walk (``max_in_flight == 1``, no executor) — evaluate and
  commit one candidate at a time, the reference semantics;
* the batched walk (``max_in_flight > 1``) — prefetch up to
  ``max_in_flight`` candidates on one event loop, commit in rank order;
* the **sub-sharded walk** (``sub_shard_size`` + an executor from
  :mod:`repro.core.executor`) — chunk the ranking into fixed-size
  sub-shards, evaluate whole sub-shards speculatively on executor workers,
  and merge their outcomes through the committer.  Sub-shards queued after
  the quota fills are skipped (serial/thread backends observe the filled
  flag) or cancelled when the consumer stops iterating; results that still
  arrive are discarded by the committer.  This is what lets a run dominated
  by one large country use every worker.

Evaluations also carry the parsed :class:`~repro.html.dom.Document` of each
page (with its cached :class:`~repro.html.index.DocumentIndex` built while
computing the visible text), so the downstream record builder can reuse the
parse instead of re-parsing every selected page.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro import perf
from repro.core.executor import PipelineExecutor, plan_chunks
from repro.crawler.crawler import LangCruxCrawler
from repro.crawler.fetcher import run_coroutine
from repro.crawler.records import CrawlRecord
from repro.html.dom import Document
from repro.html.index import ensure_index
from repro.html.parser import parse_html
from repro.langid.detector import ScriptDetector
from repro.webgen.crux import CruxEntry


@dataclass(frozen=True)
class SelectedSite:
    """One origin that passed selection.

    ``documents`` holds the pages parsed during validation (index built),
    so record building can skip one parse+extract per selected origin.  It
    is excluded from comparisons: a stripped site (documents dropped after
    records are built, e.g. before crossing a process boundary) still
    compares equal to the one that carried them.
    """

    entry: CruxEntry
    record: CrawlRecord
    visible_native_share: float
    documents: tuple[Document, ...] = field(default=(), compare=False, repr=False)


@dataclass(frozen=True)
class CandidateEvaluation:
    """The speculative, commit-free evaluation of one candidate.

    Evaluating a candidate (crawl + native-share measurement) mutates no
    shared state, so evaluations can be produced in any order and discarded
    freely; only :meth:`RankOrderCommitter.commit` turns them into outcome
    state.

    ``fetch_succeeded`` records the crawl verdict at evaluation time
    (derived from the record when not given), so the committer never
    re-derives it — which lets carriers slim a rejected evaluation's record
    (drop its page snapshots) without changing how it commits.
    """

    entry: CruxEntry
    record: CrawlRecord
    native_share: float
    fetch_succeeded: bool | None = None
    documents: tuple[Document, ...] = field(default=(), compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.fetch_succeeded is None:
            object.__setattr__(self, "fetch_succeeded", self.record.succeeded)

    def without_documents(self) -> "CandidateEvaluation":
        """A copy safe to pickle across process boundaries."""
        return CandidateEvaluation(entry=self.entry, record=self.record,
                                   native_share=self.native_share,
                                   fetch_succeeded=self.fetch_succeeded,
                                   documents=())


@dataclass
class SelectionOutcome:
    """Result of selecting sites for one country."""

    country_code: str
    quota: int
    selected: list[SelectedSite] = field(default_factory=list)
    rejected_below_threshold: int = 0
    rejected_fetch_failure: int = 0
    candidates_examined: int = 0

    @property
    def filled(self) -> bool:
        return len(self.selected) >= self.quota

    @property
    def replacement_count(self) -> int:
        """How many candidates had to be replaced to fill the quota."""
        return self.rejected_below_threshold + self.rejected_fetch_failure


class RankOrderCommitter:
    """Applies the accept/replace rule to evaluations in strict rank order.

    The committer is the *only* place selection state changes, which is what
    makes speculative evaluation safe: callers may evaluate candidates in
    any order, but must commit them in rank order, and every commit after
    the quota fills is a no-op (the evaluation is discarded uncounted,
    exactly as the sequential walk never examines those candidates).
    """

    def __init__(self, quota: int, threshold: float, *,
                 country_code: str = "") -> None:
        self.outcome = SelectionOutcome(country_code=country_code, quota=quota)
        self.threshold = threshold

    @property
    def filled(self) -> bool:
        return self.outcome.filled

    def commit(self, evaluation: CandidateEvaluation) -> SelectedSite | None:
        """Commit one evaluation; returns the selected site when accepted.

        No-op (returns ``None``) once the quota is filled — committing past
        the boundary discards the speculative evaluation without touching
        any counter.
        """
        outcome = self.outcome
        if outcome.filled:
            return None
        outcome.country_code = outcome.country_code or evaluation.entry.country_code
        outcome.candidates_examined += 1
        if not evaluation.fetch_succeeded:
            outcome.rejected_fetch_failure += 1
            return None
        if evaluation.native_share < self.threshold:
            outcome.rejected_below_threshold += 1
            return None
        site = SelectedSite(entry=evaluation.entry, record=evaluation.record,
                            visible_native_share=evaluation.native_share,
                            documents=evaluation.documents)
        outcome.selected.append(site)
        return site

    def commit_chunk(self, evaluations: Iterable[CandidateEvaluation]
                     ) -> list[tuple[CandidateEvaluation, SelectedSite]]:
        """Commit a rank-ordered chunk; returns the newly accepted pairs.

        Stops at the quota boundary: evaluations past the fill point are
        not committed (and not counted), mirroring the sequential walk.
        """
        accepted: list[tuple[CandidateEvaluation, SelectedSite]] = []
        for evaluation in evaluations:
            if self.outcome.filled:
                break
            site = self.commit(evaluation)
            if site is not None:
                accepted.append((evaluation, site))
        return accepted


class SiteSelector:
    """Selects qualifying origins for one country using a crawler.

    Args:
        crawler: A crawler bound to the country's vantage point.
        language_code: The country's target language.
        threshold: Minimum visible-text native share (0.5 in the paper).
        crawler_factory: Optional factory for per-chunk crawlers.  The
            sub-sharded walk evaluates chunks on executor workers; with a
            factory every chunk gets its own crawler (own session, robots
            cache and virtual clock), so concurrent chunks share no mutable
            crawl state.  Without one, chunks share ``crawler`` — fine for
            the serial backend, and for thread backends whose transport is
            thread-safe and single-page crawls.
    """

    def __init__(self, crawler: LangCruxCrawler, language_code: str, *,
                 threshold: float = 0.5,
                 crawler_factory: Callable[[], LangCruxCrawler] | None = None) -> None:
        self.crawler = crawler
        self.language_code = language_code
        self.threshold = threshold
        self.crawler_factory = crawler_factory
        self._detector = ScriptDetector(language_code)

    # -- speculative evaluation -------------------------------------------------

    def _evaluation(self, entry: CruxEntry, record: CrawlRecord) -> CandidateEvaluation:
        """Measure one crawled candidate (no selection state is touched)."""
        if not record.succeeded:
            return CandidateEvaluation(entry=entry, record=record, native_share=0.0)
        documents = tuple(parse_html(page.html, url=page.final_url)
                          for page in record.pages if page.ok and page.html)
        texts = [ensure_index(document).document_text() for document in documents]
        share = self._detector.share(" ".join(texts)).native if texts else 0.0
        return CandidateEvaluation(entry=entry, record=record, native_share=share,
                                   documents=documents)

    def evaluate(self, entry: CruxEntry,
                 crawler: LangCruxCrawler | None = None) -> CandidateEvaluation:
        """Crawl and measure one candidate speculatively."""
        crawler = crawler or self.crawler
        return self._evaluation(entry, crawler.crawl_origin(entry, self.language_code))

    def _chunk_crawler(self) -> LangCruxCrawler:
        """The crawler one chunk evaluates on (chunk-local with a factory)."""
        return self.crawler_factory() if self.crawler_factory is not None else self.crawler

    def evaluate_chunk(self, entries: Sequence[CruxEntry] | Iterable[CruxEntry], *,
                       max_in_flight: int = 1) -> list[CandidateEvaluation]:
        """Speculatively evaluate a rank-contiguous chunk of candidates.

        The chunk is crawled through a chunk-local crawler when a
        ``crawler_factory`` is configured, batched-async when
        ``max_in_flight > 1``.  Results come back in entry order.
        """
        entry_list = list(entries)
        if not entry_list:
            return []
        crawler = self._chunk_crawler()
        if max_in_flight > 1:
            records = crawler.crawl_batch(entry_list, self.language_code,
                                          max_in_flight=max_in_flight)
        else:
            records = [crawler.crawl_origin(entry, self.language_code)
                       for entry in entry_list]
        return [self._evaluation(entry, record)
                for entry, record in zip(entry_list, records)]

    def evaluate_window(self, candidates: Iterable[CruxEntry], start: int, stop: int,
                        *, max_in_flight: int = 1) -> list[CandidateEvaluation]:
        """Evaluate the rank window ``[start, stop)`` of ``candidates``.

        Only the window itself is ever materialized: resident entry state
        is O(stop - start) regardless of ``max_in_flight``, so deeply
        speculative workers (distributed crawls hand every worker a large
        ``max_in_flight``) cannot regrow an O(ranking) memory term per
        window.  The ``sel.window_entries_peak`` gauge pins that bound.
        """
        entry_list = list(itertools.islice(candidates, start, stop))
        perf.gauge("sel.window_entries_peak", float(len(entry_list)))
        return self.evaluate_chunk(entry_list, max_in_flight=max_in_flight)

    # -- the walks ----------------------------------------------------------------

    def select(self, candidates: Iterable[CruxEntry], quota: int, *,
               max_in_flight: int = 1,
               executor: PipelineExecutor | None = None,
               sub_shard_size: int | None = None) -> SelectionOutcome:
        """Walk ``candidates`` in rank order until ``quota`` sites qualify.

        Candidates that fail to fetch (VPN-blocked, persistent errors) or
        fall below the language threshold are skipped and replaced by the
        next candidate, exactly the paper's replacement rule.

        With ``max_in_flight > 1`` the walk prefetches candidates in batches
        of that size, keeping up to ``max_in_flight`` origins in flight on a
        single event loop (one loop and one async fetcher per ``select``
        call, not per batch).

        With ``sub_shard_size`` set, the ranking is chunked into sub-shards
        of that size which are evaluated speculatively on ``executor``
        (serial when none is given) and committed in strict rank order; see
        the module docstring.  ``max_in_flight`` then applies within each
        sub-shard.

        Every mode evaluates speculatively but commits strictly in rank
        order, so the outcome — selected set, rejection counters,
        ``candidates_examined`` — is byte-identical to the sequential walk
        for every ``(executor, workers, sub_shard_size, max_in_flight)``
        combination.
        """
        if sub_shard_size is not None:
            return self._select_subsharded(candidates, quota,
                                           executor=executor,
                                           sub_shard_size=sub_shard_size,
                                           max_in_flight=max_in_flight)
        committer = RankOrderCommitter(quota, self.threshold)
        if max_in_flight <= 1:
            for entry in candidates:
                if committer.filled:
                    break
                committer.commit(self.evaluate(entry))
            return committer.outcome
        run_coroutine(self._select_batched(iter(candidates), committer, max_in_flight))
        return committer.outcome

    async def _select_batched(self, iterator: Iterator[CruxEntry],
                              committer: RankOrderCommitter,
                              max_in_flight: int) -> None:
        """The batched walk: crawl ``max_in_flight`` candidates concurrently,
        commit them in rank order, repeat until the quota fills."""
        fetcher = self.crawler.session.async_fetcher()
        while not committer.filled:
            batch = list(itertools.islice(iterator, max_in_flight))
            if not batch:
                break
            records = await asyncio.gather(
                *(self.crawler.crawl_origin_async(entry, self.language_code, fetcher)
                  for entry in batch))
            for entry, record in zip(batch, records):
                if committer.filled:
                    break
                committer.commit(self._evaluation(entry, record))

    def _select_subsharded(self, candidates: Iterable[CruxEntry], quota: int, *,
                           executor: PipelineExecutor | None,
                           sub_shard_size: int,
                           max_in_flight: int) -> SelectionOutcome:
        """The chunked walk: speculative sub-shards, rank-ordered merge."""
        from repro.core.executor import SerialExecutor  # cycle-free, tiny

        if sub_shard_size < 1:
            raise ValueError(f"sub_shard_size must be positive, got {sub_shard_size}")
        backend = executor if executor is not None else SerialExecutor()
        entry_list = list(candidates)
        chunks = [entry_list[start:stop]
                  for start, stop in plan_chunks(len(entry_list), sub_shard_size)]
        committer = RankOrderCommitter(quota, self.threshold)

        def evaluate(chunk: list[CruxEntry]) -> list[CandidateEvaluation]:
            # The filled flag only ever flips to True, so a stale read just
            # means one sub-shard is evaluated and later discarded.
            if committer.filled:
                return []
            return self.evaluate_chunk(chunk, max_in_flight=max_in_flight)

        stream = backend.run_ordered(evaluate, chunks)
        try:
            for result in stream:
                committer.commit_chunk(result.value)
                if committer.filled:
                    break  # stop consuming; pending sub-shards are cancelled
        finally:
            stream.close()
        return committer.outcome

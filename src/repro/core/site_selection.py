"""Website selection with language validation and replacement (Section 2).

For each language–country pair the paper takes the top CrUX-ranked origins,
validates via the Unicode-script heuristic that at least 50% of the visible
text is in the target language, and replaces origins that fail validation
(or that cannot be crawled, e.g. VPN-blocking sites) with the next-ranked
candidate, extending into lower ranks until the quota is filled or the
ranking is exhausted.

This module implements that loop on top of the crawler; it is the step that
turns a ranking into the set of origins whose crawl records feed the dataset
builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.crawler.crawler import LangCruxCrawler
from repro.crawler.records import CrawlRecord
from repro.html.parser import parse_html
from repro.html.visibility import extract_visible_text
from repro.langid.detector import ScriptDetector
from repro.webgen.crux import CruxEntry


@dataclass(frozen=True)
class SelectedSite:
    """One origin that passed selection."""

    entry: CruxEntry
    record: CrawlRecord
    visible_native_share: float


@dataclass
class SelectionOutcome:
    """Result of selecting sites for one country."""

    country_code: str
    quota: int
    selected: list[SelectedSite] = field(default_factory=list)
    rejected_below_threshold: int = 0
    rejected_fetch_failure: int = 0
    candidates_examined: int = 0

    @property
    def filled(self) -> bool:
        return len(self.selected) >= self.quota

    @property
    def replacement_count(self) -> int:
        """How many candidates had to be replaced to fill the quota."""
        return self.rejected_below_threshold + self.rejected_fetch_failure


class SiteSelector:
    """Selects qualifying origins for one country using a crawler.

    Args:
        crawler: A crawler bound to the country's vantage point.
        language_code: The country's target language.
        threshold: Minimum visible-text native share (0.5 in the paper).
    """

    def __init__(self, crawler: LangCruxCrawler, language_code: str, *,
                 threshold: float = 0.5) -> None:
        self.crawler = crawler
        self.language_code = language_code
        self.threshold = threshold
        self._detector = ScriptDetector(language_code)

    def _native_share(self, record: CrawlRecord) -> float:
        """Pooled native share of the visible text of the record's pages."""
        texts = []
        for page in record.pages:
            if page.ok and page.html:
                texts.append(extract_visible_text(parse_html(page.html, url=page.final_url)))
        if not texts:
            return 0.0
        return self._detector.share(" ".join(texts)).native

    def select(self, candidates: Iterable[CruxEntry], quota: int) -> SelectionOutcome:
        """Walk ``candidates`` in rank order until ``quota`` sites qualify.

        Candidates that fail to fetch (VPN-blocked, persistent errors) or
        fall below the language threshold are skipped and replaced by the
        next candidate, exactly the paper's replacement rule.
        """
        outcome = SelectionOutcome(country_code="", quota=quota)
        for entry in candidates:
            if outcome.filled:
                break
            outcome.country_code = outcome.country_code or entry.country_code
            outcome.candidates_examined += 1
            record = self.crawler.crawl_origin(entry, self.language_code)
            if not record.succeeded:
                outcome.rejected_fetch_failure += 1
                continue
            share = self._native_share(record)
            if share < self.threshold:
                outcome.rejected_below_threshold += 1
                continue
            outcome.selected.append(SelectedSite(entry=entry, record=record,
                                                 visible_native_share=share))
        return outcome

"""Website selection with language validation and replacement (Section 2).

For each language–country pair the paper takes the top CrUX-ranked origins,
validates via the Unicode-script heuristic that at least 50% of the visible
text is in the target language, and replaces origins that fail validation
(or that cannot be crawled, e.g. VPN-blocking sites) with the next-ranked
candidate, extending into lower ranks until the quota is filled or the
ranking is exhausted.

This module implements that loop on top of the crawler; it is the step that
turns a ranking into the set of origins whose crawl records feed the dataset
builder.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.crawler.crawler import LangCruxCrawler
from repro.crawler.fetcher import run_coroutine
from repro.crawler.records import CrawlRecord
from repro.html.parser import parse_html
from repro.html.visibility import extract_visible_text
from repro.langid.detector import ScriptDetector
from repro.webgen.crux import CruxEntry


@dataclass(frozen=True)
class SelectedSite:
    """One origin that passed selection."""

    entry: CruxEntry
    record: CrawlRecord
    visible_native_share: float


@dataclass
class SelectionOutcome:
    """Result of selecting sites for one country."""

    country_code: str
    quota: int
    selected: list[SelectedSite] = field(default_factory=list)
    rejected_below_threshold: int = 0
    rejected_fetch_failure: int = 0
    candidates_examined: int = 0

    @property
    def filled(self) -> bool:
        return len(self.selected) >= self.quota

    @property
    def replacement_count(self) -> int:
        """How many candidates had to be replaced to fill the quota."""
        return self.rejected_below_threshold + self.rejected_fetch_failure


class SiteSelector:
    """Selects qualifying origins for one country using a crawler.

    Args:
        crawler: A crawler bound to the country's vantage point.
        language_code: The country's target language.
        threshold: Minimum visible-text native share (0.5 in the paper).
    """

    def __init__(self, crawler: LangCruxCrawler, language_code: str, *,
                 threshold: float = 0.5) -> None:
        self.crawler = crawler
        self.language_code = language_code
        self.threshold = threshold
        self._detector = ScriptDetector(language_code)

    def _native_share(self, record: CrawlRecord) -> float:
        """Pooled native share of the visible text of the record's pages."""
        texts = []
        for page in record.pages:
            if page.ok and page.html:
                texts.append(extract_visible_text(parse_html(page.html, url=page.final_url)))
        if not texts:
            return 0.0
        return self._detector.share(" ".join(texts)).native

    def _consider(self, outcome: SelectionOutcome, entry: CruxEntry,
                  record: CrawlRecord) -> None:
        """Apply the paper's accept/replace rule to one crawled candidate."""
        outcome.country_code = outcome.country_code or entry.country_code
        outcome.candidates_examined += 1
        if not record.succeeded:
            outcome.rejected_fetch_failure += 1
            return
        share = self._native_share(record)
        if share < self.threshold:
            outcome.rejected_below_threshold += 1
            return
        outcome.selected.append(SelectedSite(entry=entry, record=record,
                                             visible_native_share=share))

    def select(self, candidates: Iterable[CruxEntry], quota: int, *,
               max_in_flight: int = 1) -> SelectionOutcome:
        """Walk ``candidates`` in rank order until ``quota`` sites qualify.

        Candidates that fail to fetch (VPN-blocked, persistent errors) or
        fall below the language threshold are skipped and replaced by the
        next candidate, exactly the paper's replacement rule.

        With ``max_in_flight > 1`` the walk prefetches candidates in batches
        of that size, keeping up to ``max_in_flight`` origins in flight on a
        single event loop (one loop and one async fetcher per ``select``
        call, not per batch).  Evaluation (and therefore every counter and
        the selected set) still happens strictly in rank order: results
        crawled beyond the point where the quota fills are discarded
        uncounted, so the outcome is identical to the sequential walk.
        """
        outcome = SelectionOutcome(country_code="", quota=quota)
        if max_in_flight <= 1:
            for entry in candidates:
                if outcome.filled:
                    break
                self._consider(outcome, entry,
                               self.crawler.crawl_origin(entry, self.language_code))
            return outcome
        run_coroutine(self._select_batched(iter(candidates), outcome, max_in_flight))
        return outcome

    async def _select_batched(self, iterator: Iterator[CruxEntry],
                              outcome: SelectionOutcome, max_in_flight: int) -> None:
        """The batched walk: crawl ``max_in_flight`` candidates concurrently,
        evaluate them in rank order, repeat until the quota fills."""
        fetcher = self.crawler.session.async_fetcher()
        while not outcome.filled:
            batch = list(itertools.islice(iterator, max_in_flight))
            if not batch:
                break
            records = await asyncio.gather(
                *(self.crawler.crawl_origin_async(entry, self.language_code, fetcher)
                  for entry in batch))
            for entry, record in zip(batch, records):
                if outcome.filled:
                    break
                self._consider(outcome, entry, record)

"""Observability: tracing, structured logging, live status, metrics.

The subsystem is strictly *out-of-band*: nothing in this package touches
dataset bytes, selection state or transport behaviour.  Every facility is
a pure observer that can be enabled or disabled without changing what a
run produces — the byte-identity invariant extends to observability.

* :mod:`repro.obs.trace` — spans and events written as schema-versioned
  JSONL, one file per process, with cross-process trace propagation
  (shard workers and ``repro.dist`` workers inherit the build's trace id
  through the config / ``build.json``).
* :mod:`repro.obs.tree` — reassembles the per-process trace files into
  one span tree and renders it (``langcrux trace``).
* :mod:`repro.obs.log` — a tiny structured JSON-lines-to-stderr logger
  gated by the ``LANGCRUX_LOG`` env knob.
* :mod:`repro.obs.status` — periodic heartbeat snapshots of a live run
  (``langcrux status``).
* :mod:`repro.obs.metrics` — a dependency-free Prometheus-text metrics
  registry used by the :class:`~repro.api.server.AnalyticsServer`'s
  ``/metrics`` endpoint.
"""

from repro.obs.log import get_logger, log_level
from repro.obs.trace import TraceContext, TraceWriter, event, span

__all__ = [
    "TraceContext",
    "TraceWriter",
    "event",
    "get_logger",
    "log_level",
    "span",
]

"""A dependency-free Prometheus-text metrics registry.

Implements exactly the subset of the exposition format (version 0.0.4)
that the :class:`~repro.api.server.AnalyticsServer`'s ``/metrics``
endpoint needs — counters with labels, cumulative histograms, and
callback gauges — with the text renderer written against the published
format rules (``# HELP``/``# TYPE`` headers, escaped label values,
``le``-bucketed ``_bucket``/``_sum``/``_count`` series ending in
``+Inf``).  No client library is (or may be) installed; the format is
simple enough that hand-rolling it is smaller than vendoring one.

Thread-safe: handler threads record concurrently, the scrape renders
under the same lock.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Sequence

#: Content type of a Prometheus text exposition response.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default request-latency buckets (seconds) — sub-ms loopback renders up
#: to slow cold aggregations.
DEFAULT_LATENCY_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
                           0.05, 0.1, 0.25, 0.5, 1.0, 2.5)

LabelValues = tuple[str, ...]


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _series(name: str, label_names: Sequence[str],
            label_values: Sequence[str], value: float) -> str:
    if label_names:
        labels = ",".join(
            f'{key}="{_escape_label_value(str(val))}"'
            for key, val in zip(label_names, label_values))
        return f"{name}{{{labels}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


class Counter:
    """A monotonically increasing counter, optionally labelled."""

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help_text
        self.label_names = tuple(label_names)
        self._values: dict[LabelValues, float] = {}
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = tuple(str(labels.get(name, "")) for name in self.label_names)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = tuple(str(labels.get(name, "")) for name in self.label_names)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} counter"]
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.label_names:
            items = [((), 0.0)]
        for label_values, value in items:
            lines.append(_series(self.name, self.label_names,
                                 label_values, value))
        return lines


class Histogram:
    """A cumulative histogram with per-label-set bucket counts."""

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        self.name = name
        self.help = help_text
        self.label_names = tuple(label_names)
        self.buckets = tuple(sorted(buckets))
        self._counts: dict[LabelValues, list[int]] = {}
        self._sums: dict[LabelValues, float] = {}
        self._totals: dict[LabelValues, int] = {}
        self._lock = threading.Lock()

    def observe(self, value: float, **labels: str) -> None:
        key = tuple(str(labels.get(name, "")) for name in self.label_names)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * len(self.buckets)
                self._sums[key] = 0.0
                self._totals[key] = 0
            # Store per-bucket; render() cumulates (so one observe is one
            # increment, not len(buckets)).
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
                    break
            self._sums[key] += value
            self._totals[key] += 1

    def count(self, **labels: str) -> int:
        key = tuple(str(labels.get(name, "")) for name in self.label_names)
        with self._lock:
            return self._totals.get(key, 0)

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} histogram"]
        with self._lock:
            keys = sorted(self._counts)
            snapshot = [(key, list(self._counts[key]), self._sums[key],
                         self._totals[key]) for key in keys]
        bucket_names = tuple(self.label_names) + ("le",)
        for key, counts, total_sum, total in snapshot:
            cumulative = 0
            for bound, count in zip(self.buckets, counts):
                cumulative += count
                lines.append(_series(f"{self.name}_bucket", bucket_names,
                                     key + (_format_value(bound),),
                                     cumulative))
            lines.append(_series(f"{self.name}_bucket", bucket_names,
                                 key + ("+Inf",), total))
            lines.append(_series(f"{self.name}_sum", self.label_names,
                                 key, total_sum))
            lines.append(_series(f"{self.name}_count", self.label_names,
                                 key, total))
        return lines


class Gauge:
    """A point-in-time value, read from a callback at scrape time.

    Callback gauges suit serving metrics whose truth lives elsewhere
    (in-flight request count, dataset load count): the scrape reads the
    source instead of the source pushing every change.
    """

    def __init__(self, name: str, help_text: str,
                 callback: Callable[[], float]) -> None:
        self.name = name
        self.help = help_text
        self._callback = callback

    def render(self) -> list[str]:
        try:
            value = float(self._callback())
        except Exception:  # noqa: BLE001 - a scrape must never 500 over one gauge
            value = float("nan")
        return [f"# HELP {self.name} {self.help}",
                f"# TYPE {self.name} gauge",
                _series(self.name, (), (), value)]


class MetricsRegistry:
    """Registration order is render order; names must be unique."""

    def __init__(self) -> None:
        self._metrics: list[Counter | Histogram | Gauge] = []
        self._names: set[str] = set()
        self._lock = threading.Lock()

    def _register(self, metric):
        with self._lock:
            if metric.name in self._names:
                raise ValueError(f"metric {metric.name!r} already registered")
            self._names.add(metric.name)
            self._metrics.append(metric)
        return metric

    def counter(self, name: str, help_text: str,
                label_names: Sequence[str] = ()) -> Counter:
        return self._register(Counter(name, help_text, label_names))

    def histogram(self, name: str, help_text: str,
                  label_names: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  ) -> Histogram:
        return self._register(Histogram(name, help_text, label_names, buckets))

    def gauge(self, name: str, help_text: str,
              callback: Callable[[], float]) -> Gauge:
        return self._register(Gauge(name, help_text, callback))

    def render(self) -> str:
        """The full exposition document (trailing newline included)."""
        with self._lock:
            metrics = list(self._metrics)
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

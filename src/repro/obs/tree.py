"""Reassembling per-process trace files into one span tree.

The writer side (:mod:`repro.obs.trace`) guarantees only local ordering:
each process appends its own spans as they close.  This module does the
cross-process join for ``langcrux trace``: read every ``trace-*.jsonl``
under a directory, group records by trace id, wire spans to parents by
span id, and render an indented tree plus the *critical path* — the
chain of spans, root to leaf, whose ends are latest at every level,
i.e. where the wall-clock actually went.

Robustness over strictness: unparseable lines (a SIGKILLed worker's torn
tail), records from a foreign schema, spans whose parent never closed
(its process died before writing it) are all tolerated — orphans become
roots so a partial trace still renders.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.obs.trace import TRACE_FILE_PREFIX, TRACE_SCHEMA


@dataclass
class SpanNode:
    """One span with its children resolved."""

    record: dict
    children: list["SpanNode"] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.record.get("name", "?")

    @property
    def span_id(self) -> str:
        return self.record["span"]

    @property
    def ts(self) -> float:
        return self.record.get("ts", 0.0)

    @property
    def duration_s(self) -> float:
        return self.record.get("dur_s", 0.0)

    @property
    def end_ts(self) -> float:
        return self.ts + self.duration_s

    @property
    def proc(self) -> str:
        return self.record.get("proc", "?")


@dataclass
class TraceTree:
    """Every span of one trace, wired into (possibly several) roots.

    A fully propagated trace has exactly one root (the build span); roots
    beyond that are orphans — spans whose parent was never written, e.g.
    by a worker whose coordinator crashed.  They are kept and rendered so
    a damaged trace still tells its story.
    """

    trace_id: str
    roots: list[SpanNode]
    span_count: int
    event_count: int
    processes: tuple[str, ...]
    orphan_count: int

    def walk(self) -> Iterable[tuple[int, SpanNode]]:
        """Depth-first (depth, node) traversal over every root."""
        pending = [(0, root) for root in reversed(self.roots)]
        while pending:
            depth, node = pending.pop()
            yield depth, node
            pending.extend((depth + 1, child)
                           for child in reversed(node.children))

    def critical_path(self) -> list[SpanNode]:
        """Root-to-leaf chain choosing the latest-ending child at each step."""
        if not self.roots:
            return []
        node = max(self.roots, key=lambda root: root.end_ts)
        path = [node]
        while node.children:
            node = max(node.children, key=lambda child: child.end_ts)
            path.append(node)
        return path

    def render_lines(self, *, min_duration_s: float = 0.0,
                     max_depth: int | None = None) -> list[str]:
        """The indented span tree plus the critical-path timeline."""
        origin = min((root.ts for root in self.roots), default=0.0)
        lines = [f"trace {self.trace_id}: {self.span_count} spans,"
                 f" {self.event_count} events across"
                 f" {len(self.processes)} process(es)"]
        if self.orphan_count:
            lines.append(f"  ({self.orphan_count} orphaned spans attached"
                         " as roots: their parent was never written)")
        for depth, node in self.walk():
            if max_depth is not None and depth > max_depth:
                continue
            if depth > 0 and node.duration_s < min_duration_s:
                continue
            attrs = node.record.get("attrs") or {}
            detail = " ".join(f"{key}={value}"
                              for key, value in sorted(attrs.items()))
            offset = node.ts - origin
            lines.append(f"{'  ' * depth}- {node.name}"
                         f"  {node.duration_s * 1000.0:.1f}ms"
                         f"  @+{offset:.3f}s  [{node.proc}]"
                         + (f"  {detail}" if detail else ""))
        path = self.critical_path()
        if path:
            lines.append("critical path:")
            for node in path:
                lines.append(f"  {node.name} ({node.duration_s * 1000.0:.1f}ms"
                             f" on {node.proc})")
        return lines


def trace_files(directory: str | Path) -> list[Path]:
    """Every per-process trace file under ``directory``.

    Accepts the trace directory itself, or a parent that *contains* one —
    a queue dir with its ``trace/`` subdirectory, a build output dir — so
    ``langcrux trace`` works on whatever directory the user has at hand.
    """
    root = Path(directory)
    candidates = [root, root / "trace"]
    for candidate in candidates:
        if candidate.is_dir():
            found = sorted(candidate.glob(f"{TRACE_FILE_PREFIX}*.jsonl"))
            if found:
                return found
    return []


def load_trace_records(directory: str | Path) -> list[dict]:
    """Every parseable span/event record under ``directory``."""
    records: list[dict] = []
    for path in trace_files(directory):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # a torn tail from a killed writer
            if (isinstance(record, dict)
                    and record.get("schema") == TRACE_SCHEMA
                    and record.get("kind") in ("span", "event")
                    and record.get("trace")):
                records.append(record)
    return records


def assemble_trace(records: list[dict],
                   trace_id: str | None = None) -> TraceTree | None:
    """Wire ``records`` into the tree of one trace.

    With multiple trace ids present (one trace dir reused across runs)
    and none requested, the trace with the most spans wins.
    """
    by_trace: dict[str, list[dict]] = {}
    for record in records:
        by_trace.setdefault(record["trace"], []).append(record)
    if not by_trace:
        return None
    if trace_id is None:
        trace_id = max(by_trace, key=lambda key: len(by_trace[key]))
    chosen = by_trace.get(trace_id)
    if not chosen:
        return None
    nodes: dict[str, SpanNode] = {}
    spans = [record for record in chosen if record["kind"] == "span"]
    events = [record for record in chosen if record["kind"] == "event"]
    for record in spans:
        nodes[record["span"]] = SpanNode(record=record)
    roots: list[SpanNode] = []
    orphans = 0
    for node in nodes.values():
        parent_id = node.record.get("parent")
        parent = nodes.get(parent_id) if parent_id else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            if parent_id:
                orphans += 1
            roots.append(node)
    for record in events:
        owner = nodes.get(record.get("span") or "")
        if owner is not None:
            owner.events.append(record)
    for node in nodes.values():
        node.children.sort(key=lambda child: (child.ts, child.span_id))
    roots.sort(key=lambda node: (node.ts, node.span_id))
    processes = tuple(sorted({record.get("proc", "?") for record in chosen}))
    return TraceTree(trace_id=trace_id, roots=roots, span_count=len(spans),
                     event_count=len(events), processes=processes,
                     orphan_count=orphans)

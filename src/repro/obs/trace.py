"""Spans and events: the tracing core.

A *trace* is one build (or serve session) identified by a ``trace_id``;
a *span* is one timed operation within it (a pipeline stage, a transport
request, a selection window, a dataset commit) carrying a ``span_id``
and the ``parent`` span id that nests it.  Spans and point-in-time
*events* are appended as JSON lines — one :class:`TraceWriter` file per
process under the trace directory — and reassembled into one tree by
:mod:`repro.obs.tree` (``langcrux trace``).

Cross-process propagation works by value, not by ambient magic: the
process that starts a build allocates the trace id, stamps it (plus the
root span id as ``trace_parent``) into the :class:`PipelineConfig`, and
every worker — thread, process-pool or ``repro.dist`` — calls
:func:`ensure` with those values before doing traced work.  ``ensure``
is idempotent per process, so re-entry from every window of a pool
worker costs a lock and two comparisons.

Overhead discipline: with tracing disabled, :func:`span` and
:func:`event` are one module-global ``None`` check.  Enabled, perf-hook
spans (the per-stage timers of :mod:`repro.perf`, which fire for every
parsed page and audited rule) are only *written* when they exceed a
minimum duration (``LANGCRUX_TRACE_MIN_MS``, default 1ms), bounding
trace volume and keeping the enabled overhead within the bench's bound;
structural spans (build, shard, window, request, merge) are always
written.  Record schema (``"schema": 1``)::

    {"schema": 1, "kind": "span", "trace": ..., "span": ..., "parent": ...,
     "name": "window", "proc": "host:pid", "ts": <start, time.time()>,
     "dur_s": 0.1234, "attrs": {...}}
    {"schema": 1, "kind": "event", "trace": ..., "span": <enclosing>,
     "name": "transport.retry", "proc": "host:pid", "ts": ..., "attrs": {...}}
"""

from __future__ import annotations

import atexit
import json
import os
import socket
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro import perf

#: Bumped when the span/event record shape changes incompatibly; readers
#: skip records from other schemas.
TRACE_SCHEMA = 1

#: Per-process trace files are named ``trace-<proc>.jsonl``.
TRACE_FILE_PREFIX = "trace-"

#: Default write threshold for perf-hook spans, overridable via the
#: ``LANGCRUX_TRACE_MIN_MS`` environment variable.
DEFAULT_MIN_SPAN_MS = 1.0


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex-char span id."""
    return uuid.uuid4().hex[:16]


def process_label() -> str:
    """This process's identity in trace records (``host:pid``)."""
    return f"{socket.gethostname()}:{os.getpid()}"


@dataclass(frozen=True)
class TraceContext:
    """A propagatable (trace id, span id) pair.

    What crosses process boundaries: the coordinator ships
    ``TraceContext(trace_id, root_span_id)`` to workers (via the config in
    ``build.json``), workers parent their spans under ``span_id`` and ship
    their window span's context back inside the window result.
    """

    trace_id: str
    span_id: str | None = None

    def to_dict(self) -> dict:
        payload: dict = {"trace_id": self.trace_id}
        if self.span_id is not None:
            payload["span_id"] = self.span_id
        return payload

    @classmethod
    def from_dict(cls, payload: dict | None) -> "TraceContext | None":
        if not payload or "trace_id" not in payload:
            return None
        return cls(trace_id=payload["trace_id"],
                   span_id=payload.get("span_id"))


class TraceWriter:
    """Appends span/event records to one JSONL file for this process.

    Writes are buffered under a lock and flushed every ``flush_every``
    records via a single ``os.write`` to an ``O_APPEND`` descriptor —
    POSIX guarantees the append is atomic per call, so concurrent writers
    (should two tracers ever share a file) never interleave mid-line and
    a crash can tear at most the buffered tail, which the tree reader
    tolerates line by line.
    """

    def __init__(self, directory: str | Path, *, label: str | None = None,
                 flush_every: int = 64) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.label = label or process_label()
        safe = self.label.replace(os.sep, "_").replace(":", "-")
        self.path = self.directory / f"{TRACE_FILE_PREFIX}{safe}.jsonl"
        self._flush_every = max(1, flush_every)
        self._lock = threading.Lock()
        self._buffer: list[str] = []
        self._fd: int | None = None
        self._closed = False

    def emit(self, record: dict) -> None:
        line = json.dumps(record, ensure_ascii=False, separators=(",", ":"),
                          default=str)
        with self._lock:
            if self._closed:
                return
            self._buffer.append(line)
            if len(self._buffer) >= self._flush_every:
                self._flush_locked()

    def _flush_locked(self) -> None:
        if not self._buffer:
            return
        data = ("\n".join(self._buffer) + "\n").encode("utf-8")
        self._buffer.clear()
        if self._fd is None:
            self._fd = os.open(self.path,
                               os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        os.write(self._fd, data)

    def flush(self) -> None:
        with self._lock:
            if not self._closed:
                self._flush_locked()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._flush_locked()
            self._closed = True
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def abandon(self) -> None:
        """Close *without* flushing.

        For fork children that inherited the parent's writer: the buffer
        holds the parent's records (the parent will flush them itself),
        so flushing here would write them twice.
        """
        with self._lock:
            self._buffer.clear()
            self._closed = True
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None


class _Span:
    """One open span; closed (and possibly written) by ``Tracer.end_span``."""

    __slots__ = ("name", "span_id", "parent_id", "ts", "started",
                 "attrs", "detached", "structural")

    def __init__(self, name: str, span_id: str, parent_id: str | None,
                 attrs: dict | None, *, detached: bool,
                 structural: bool) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.ts = time.time()
        self.started = time.perf_counter()
        self.attrs = attrs
        self.detached = detached
        self.structural = structural

    def context(self, trace_id: str) -> TraceContext:
        return TraceContext(trace_id=trace_id, span_id=self.span_id)


class Tracer:
    """The per-process tracing state: id, writer, per-thread span stacks.

    ``default_parent`` is the span every *new stack root* nests under —
    the build's root span in the coordinating process, the propagated
    ``trace_parent`` in workers — so spans started on fresh threads (shard
    workers) or fresh processes still join the one tree.
    """

    def __init__(self, writer: TraceWriter, trace_id: str, *,
                 parent_span_id: str | None = None,
                 min_duration_s: float | None = None) -> None:
        self.writer = writer
        self.trace_id = trace_id
        self.default_parent = parent_span_id
        if min_duration_s is None:
            try:
                min_ms = float(os.environ.get("LANGCRUX_TRACE_MIN_MS",
                                              DEFAULT_MIN_SPAN_MS))
            except ValueError:
                min_ms = DEFAULT_MIN_SPAN_MS
            min_duration_s = min_ms / 1000.0
        self.min_duration_s = min_duration_s
        self.pid = os.getpid()
        self._local = threading.local()

    # -- span lifecycle ---------------------------------------------------------

    def _stack(self) -> list[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span_id(self) -> str | None:
        """The innermost open span on this thread (or the default parent)."""
        stack = self._stack()
        return stack[-1].span_id if stack else self.default_parent

    def start_span(self, name: str, attrs: dict | None = None, *,
                   detached: bool = False, structural: bool = True) -> _Span:
        """Open a span parented under the thread's current span.

        ``detached`` spans are not pushed on the thread stack — the shape
        for operations that interleave on one thread (concurrent async
        fetches): each parents under the enclosing stack span, never under
        a sibling.  ``structural=False`` marks perf-hook spans, written
        only when their duration clears ``min_duration_s``.
        """
        span = _Span(name, new_span_id(), self.current_span_id(), attrs,
                     detached=detached, structural=structural)
        if not detached:
            self._stack().append(span)
        return span

    def end_span(self, span: _Span) -> None:
        duration = time.perf_counter() - span.started
        if not span.detached:
            stack = self._stack()
            # LIFO in the overwhelming case; tolerate out-of-order closes
            # (a generator finalized late) by identity removal.
            if stack and stack[-1] is span:
                stack.pop()
            else:  # pragma: no cover - defensive
                try:
                    stack.remove(span)
                except ValueError:
                    pass
        if span.structural or duration >= self.min_duration_s:
            record = {"schema": TRACE_SCHEMA, "kind": "span",
                      "trace": self.trace_id, "span": span.span_id,
                      "parent": span.parent_id, "name": span.name,
                      "proc": self.writer.label,
                      "ts": round(span.ts, 6), "dur_s": round(duration, 6)}
            if span.attrs:
                record["attrs"] = span.attrs
            self.writer.emit(record)

    def event(self, name: str, attrs: dict | None = None) -> None:
        """Record a point-in-time event under the current span."""
        record = {"schema": TRACE_SCHEMA, "kind": "event",
                  "trace": self.trace_id, "span": self.current_span_id(),
                  "name": name, "proc": self.writer.label,
                  "ts": round(time.time(), 6)}
        if attrs:
            record["attrs"] = attrs
        self.writer.emit(record)

    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id,
                            span_id=self.current_span_id())


# -- the process-global tracer ---------------------------------------------------

_state_lock = threading.Lock()
_tracer: Tracer | None = None
_atexit_registered = False


def active() -> Tracer | None:
    """The process's tracer, or ``None`` when tracing is disabled."""
    return _tracer


def ensure(trace_dir: str | Path, *, trace_id: str | None = None,
           parent_span_id: str | None = None,
           label: str | None = None) -> Tracer:
    """Enable tracing for this process (idempotent).

    A second call with the same directory and trace id returns the
    existing tracer untouched — the hot path for pool workers re-entering
    per window.  A call naming a *different* directory or trace id closes
    the old tracer and starts fresh (sequential traced runs in one
    process, e.g. the overhead benchmark).
    """
    global _tracer, _atexit_registered
    directory = Path(trace_dir)
    with _state_lock:
        current = _tracer
        if current is not None and current.pid != os.getpid():
            # A fork child inherited the parent's tracer.  It is not ours:
            # the writer's label names the parent and its buffer holds the
            # parent's records.  Abandon it (no flush) and start fresh so
            # this process gets its own trace file.
            current.writer.abandon()
            perf.set_tracer(None)
            _tracer = current = None
        if (current is not None and current.writer.directory == directory
                and (trace_id is None or current.trace_id == trace_id)):
            return current
        if current is not None:
            perf.set_tracer(None)
            current.writer.close()
        writer = TraceWriter(directory, label=label)
        _tracer = Tracer(writer, trace_id or new_trace_id(),
                         parent_span_id=parent_span_id)
        perf.set_tracer(_tracer)
        if not _atexit_registered:
            # Pool workers exit when their executor shuts down, with spans
            # possibly still buffered; flush whatever is pending on the way
            # out (close() is a no-op for already-disabled tracers).
            atexit.register(disable)
            _atexit_registered = True
        return _tracer


def disable() -> None:
    """Flush and close the process's tracer, if any."""
    global _tracer
    with _state_lock:
        if _tracer is None:
            return
        perf.set_tracer(None)
        _tracer.writer.close()
        _tracer = None


@contextmanager
def span(name: str, attrs: dict | None = None, *,
         detached: bool = False) -> Iterator[_Span | None]:
    """Context manager recording a structural span (no-op when disabled)."""
    tracer = _tracer
    if tracer is None:
        yield None
        return
    opened = tracer.start_span(name, attrs, detached=detached)
    try:
        yield opened
    finally:
        tracer.end_span(opened)


def event(name: str, attrs: dict | None = None) -> None:
    """Record an event on the active tracer (no-op when disabled)."""
    tracer = _tracer
    if tracer is not None:
        tracer.event(name, attrs)

"""Live run status: periodic heartbeat snapshots next to the run's state.

Every long-running participant — a streaming build, the distributed
coordinator, each dist worker — runs a :class:`StatusReporter`: a daemon
thread that atomically rewrites one small JSON snapshot per interval
under ``<dir>/status/``.  ``langcrux status --queue-dir DIR`` reads the
directory mid-run and renders a fleet table: who is alive (snapshot
age), what they have done (windows, records, cache hit rate) and what
they weigh (peak RSS) — without touching the run itself.

Snapshots are whole-file atomic (temp + ``os.replace``), so a reader can
never observe a torn one; liveness is inferred from snapshot age exactly
like lease heartbeats in :mod:`repro.dist.workqueue`.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Callable

from repro import perf
from repro.obs.trace import process_label

STATUS_SCHEMA = 1
STATUS_DIR_NAME = "status"


def _write_snapshot(path: Path, payload: dict) -> None:
    descriptor, partial = tempfile.mkstemp(dir=path.parent,
                                           prefix=f".{path.name}.",
                                           suffix=".partial")
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, ensure_ascii=False,
                      separators=(",", ":"), default=str)
        os.replace(partial, path)
    except BaseException:
        try:
            os.unlink(partial)
        except OSError:
            pass
        raise


class StatusReporter:
    """Periodically snapshots a ``snapshot()`` callable to disk.

    Args:
        directory: Where the run keeps its state (queue dir, trace dir,
            output dir); snapshots land under ``directory/status/``.
        role: ``"build"``, ``"coordinator"`` or ``"worker"`` — the table
            groups by it.
        snapshot: Returns the role-specific progress fields merged into
            each heartbeat.  Called on the reporter thread; must be cheap
            and must not raise (exceptions are swallowed so a broken
            snapshot can never kill a run).
        interval_s: Heartbeat period.
        ident: Stable identity (defaults to ``host:pid``); also names the
            snapshot file.
    """

    def __init__(self, directory: str | Path, role: str,
                 snapshot: Callable[[], dict], *,
                 interval_s: float = 1.0, ident: str | None = None) -> None:
        self.directory = Path(directory) / STATUS_DIR_NAME
        self.role = role
        self.ident = ident or process_label()
        self._snapshot = snapshot
        self._interval_s = interval_s
        safe = self.ident.replace(os.sep, "_").replace(":", "-")
        self.path = self.directory / f"{role}-{safe}.json"
        self._stopped = threading.Event()
        self._thread: threading.Thread | None = None

    def _payload(self) -> dict:
        payload = {"schema": STATUS_SCHEMA, "role": self.role,
                   "id": self.ident, "pid": os.getpid(),
                   "ts": round(time.time(), 3)}
        peak_rss = perf.memory_gauges().get("mem.peak_rss_kb")
        if peak_rss is not None:
            payload["peak_rss_kb"] = round(peak_rss, 1)
        try:
            payload.update(self._snapshot())
        except Exception:  # noqa: BLE001 - a status bug must not kill the run
            pass
        return payload

    def write_now(self) -> None:
        """Write one snapshot immediately (also used as the final state)."""
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            _write_snapshot(self.path, self._payload())
        except OSError:  # pragma: no cover - status is best-effort
            pass

    def _run(self) -> None:
        self.write_now()
        while not self._stopped.wait(self._interval_s):
            self.write_now()

    def start(self) -> "StatusReporter":
        if self._thread is None:
            self._thread = threading.Thread(target=self._run, daemon=True,
                                            name=f"status-{self.role}")
            self._thread.start()
        return self

    def stop(self, *, final: dict | None = None) -> None:
        """Stop heartbeating; write a last snapshot (optionally amended)."""
        self._stopped.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if final is not None:
            base = self._snapshot
            self._snapshot = lambda: {**base(), **final}
        self.write_now()

    def __enter__(self) -> "StatusReporter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def read_statuses(directory: str | Path) -> list[dict]:
    """Every parseable status snapshot under ``directory`` (or its
    ``status/`` child), sorted by role then identity."""
    root = Path(directory)
    status_dir = root if root.name == STATUS_DIR_NAME else root / STATUS_DIR_NAME
    snapshots: list[dict] = []
    try:
        paths = sorted(status_dir.glob("*.json"))
    except OSError:
        return snapshots
    for path in paths:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(payload, dict) and payload.get("schema") == STATUS_SCHEMA:
            snapshots.append(payload)
    snapshots.sort(key=lambda item: (item.get("role", ""), item.get("id", "")))
    return snapshots


def queue_progress(queue_dir: str | Path) -> dict | None:
    """Queue-level progress of a distributed run (``None`` if no queue).

    Counts the queue directory's files directly, so it reflects the run
    even when every participant's heartbeat is stale.
    """
    root = Path(queue_dir)
    windows_dir = root / "windows"
    if not windows_dir.is_dir():
        return None

    def _count(path: Path, pattern: str) -> int:
        try:
            return sum(1 for _ in path.glob(pattern))
        except OSError:
            return 0

    markers = root / "markers"
    return {
        "windows_planned": _count(windows_dir, "window-*.json"),
        "results_committed": _count(root / "results", "window-*.json"),
        "leases_held": _count(root / "leases", "window-*.json"),
        "countries_filled": _count(markers, "filled-*"),
        "done": (markers / "done").exists(),
    }


def render_status_lines(snapshots: list[dict], *,
                        progress: dict | None = None,
                        now: float | None = None) -> list[str]:
    """Human-readable fleet table for ``langcrux status``."""
    now = time.time() if now is None else now
    lines: list[str] = []
    if progress is not None:
        lines.append(
            f"queue: {progress['results_committed']}"
            f"/{progress['windows_planned']} windows committed,"
            f" {progress['leases_held']} leased,"
            f" {progress['countries_filled']} countries filled,"
            f" done={'yes' if progress['done'] else 'no'}")
    if not snapshots:
        lines.append("no status snapshots (is the run using --trace,"
                     " or too old to write status?)")
        return lines
    envelope = ("schema", "role", "id", "pid", "ts", "peak_rss_kb")
    for snapshot in snapshots:
        age = max(0.0, now - snapshot.get("ts", now))
        rss = snapshot.get("peak_rss_kb")
        rss_note = f" rss={rss / 1024.0:.0f}MiB" if rss is not None else ""
        detail = " ".join(f"{key}={value}"
                          for key, value in snapshot.items()
                          if key not in envelope)
        lines.append(f"{snapshot.get('role', '?'):<12}"
                     f"{snapshot.get('id', '?'):<24}"
                     f" age={age:.1f}s{rss_note}"
                     + (f"  {detail}" if detail else ""))
    return lines

"""Structured JSON-lines logging to stderr.

One log record per line, machine-parseable, written to *stderr* so logs
never interleave with report output on stdout (``langcrux analyze`` etc.
stay pipeable).  The verbosity knob is the ``LANGCRUX_LOG`` environment
variable — ``debug``, ``info``, ``warn`` (the default) or ``error`` —
read once per process and overridable in-process via :func:`set_level`
(tests) without touching the environment.

The format is deliberately tiny::

    {"ts": 1717430000.123, "level": "info", "logger": "dist.worker",
     "msg": "window executed", "window": "window-00003", ...}

``ts`` is ``time.time()``; every keyword argument of a log call lands as
a top-level JSON field.  The human-facing ``msg`` always comes first
after the envelope fields, so ``grep`` still works on raw lines.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time

#: Ordered severities; a record is emitted when its level is >= the
#: configured threshold.
LEVELS = ("debug", "info", "warn", "error")

_DEFAULT_LEVEL = "warn"

_lock = threading.Lock()
_level: int | None = None


def _parse_level(name: str | None) -> int:
    if name is None:
        return LEVELS.index(_DEFAULT_LEVEL)
    lowered = name.strip().lower()
    # Accept common aliases so LANGCRUX_LOG=warning works too.
    aliases = {"warning": "warn", "err": "error", "trace": "debug"}
    lowered = aliases.get(lowered, lowered)
    if lowered in LEVELS:
        return LEVELS.index(lowered)
    return LEVELS.index(_DEFAULT_LEVEL)


def log_level() -> str:
    """The effective log level name (env knob or :func:`set_level`)."""
    global _level
    with _lock:
        if _level is None:
            _level = _parse_level(os.environ.get("LANGCRUX_LOG"))
        return LEVELS[_level]


def set_level(name: str | None) -> None:
    """Override the process's log level; ``None`` re-reads ``LANGCRUX_LOG``."""
    global _level
    with _lock:
        _level = None if name is None else _parse_level(name)


class Logger:
    """A named emitter of structured log records.

    Cheap to construct and stateless apart from its name; modules keep one
    at import time (``LOG = get_logger("dist.worker")``).
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def _emit(self, level: str, msg: str, fields: dict) -> None:
        record = {"ts": round(time.time(), 3), "level": level,
                  "logger": self.name, "msg": msg}
        for key, value in fields.items():
            if key not in record:
                record[key] = value
        try:
            line = json.dumps(record, ensure_ascii=False, separators=(",", ":"),
                              default=str)
        except (TypeError, ValueError):  # pragma: no cover - defensive
            line = json.dumps({"ts": record["ts"], "level": level,
                               "logger": self.name, "msg": msg})
        print(line, file=sys.stderr)

    def is_enabled(self, level: str) -> bool:
        return LEVELS.index(level) >= _parse_level(log_level())

    def debug(self, msg: str, **fields) -> None:
        if self.is_enabled("debug"):
            self._emit("debug", msg, fields)

    def info(self, msg: str, **fields) -> None:
        if self.is_enabled("info"):
            self._emit("info", msg, fields)

    def warn(self, msg: str, **fields) -> None:
        if self.is_enabled("warn"):
            self._emit("warn", msg, fields)

    def error(self, msg: str, **fields) -> None:
        if self.is_enabled("error"):
            self._emit("error", msg, fields)


def get_logger(name: str) -> Logger:
    """The structured logger named ``name``."""
    return Logger(name)

"""Command-line interface.

Four subcommands cover the common workflows:

``langcrux build``
    Run the full pipeline over the synthetic web and write the dataset as
    JSON Lines.

``langcrux analyze``
    Print the Table 2 element statistics and the per-country filtering and
    language-mix breakdowns for an existing dataset file.

``langcrux mismatch``
    Print the per-country mismatch summary (Figure 5 headline numbers) and a
    few concrete Table 5 style examples.

``langcrux kizuki``
    Re-score sites with the language-aware image-alt audit and print the
    before/after distribution summary (Figure 6).

``langcrux report``
    Render the full set of figures (text charts) and Tables 1–2 for a dataset
    into a report file.

``langcrux export``
    Export per-country and per-site summaries as JSON — the data layer of the
    paper's interactive dataset explorer.

``langcrux serve``
    Serve the synthetic web over real HTTP on a loopback socket
    (:class:`~repro.webgen.server.LocalSiteServer`), so a separate
    ``langcrux build --transport http --http-gateway HOST:PORT`` crawls it
    through genuine sockets — the live-server demo of the transport
    subsystem.

``langcrux dist-build``
    Build a dataset with a file-based work-queue coordinator and N
    independent worker processes sharing one crawl cache
    (:mod:`repro.dist`).  The default role plans the build, spawns
    ``--workers`` local workers and merges their window results in rank
    order — byte-identical output to a single-host ``build``; ``--role
    worker`` joins an existing queue directory (multi-host mode: start
    workers on any machine that shares the queue and cache directories).

``langcrux cache-compact``
    Fold a crawl cache's accumulated per-writer manifests into one
    compacted manifest and sweep orphaned body files.

``langcrux api``
    Serve a built dataset as a JSON analytics API
    (:class:`~repro.api.server.AnalyticsServer`): the dataset is streamed
    once into in-memory aggregates and ``/analyze``, ``/mismatch``,
    ``/kizuki`` and the explorer endpoints answer from them — with response
    caching, ETag revalidation, bounded worker concurrency, structured
    access logs and a Prometheus ``/metrics`` exposition.

``langcrux trace``
    Reassemble the per-process trace files a traced run (``build
    --trace-dir`` / ``dist-build --trace``) wrote into one span tree —
    coordinator and workers joined by trace-id propagation — and print it
    with per-span durations plus the critical path (:mod:`repro.obs.tree`).

``langcrux status``
    Read the heartbeat snapshots the participants of a (possibly still
    running) build drop next to their queue/trace directory and print a
    fleet table: liveness by snapshot age, windows claimed/committed,
    records streamed, cache hit rate, peak RSS (:mod:`repro.obs.status`).

The ``analyze`` / ``mismatch`` / ``kizuki`` subcommands also take ``--json``
to emit the exact JSON document the API serves for the same dataset; the
parity test suite pins the two byte-identical.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro import perf
from repro.core.analysis import (
    element_statistics,
    filter_breakdown_by_country,
    uninformative_rate_by_country,
)
from repro.core.dataset import LangCrUXDataset
from repro.core.executor import EXECUTOR_KINDS
from repro.core.kizuki import rescore_dataset
from repro.core.language_mix import classify_texts
from repro.core.mismatch import mismatch_examples, mismatch_summary
from repro.core.pipeline import (
    LangCrUXPipeline,
    PipelineConfig,
    TRANSPORT_KINDS,
    build_web_for_config,
)
from repro.langid.languages import langcrux_country_codes
from repro.obs.log import get_logger

LOG = get_logger("cli")


def _positive_int(value: str) -> int:
    count = int(value)
    if count < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return count


def _positive_float(value: str) -> float:
    number = float(value)
    if number <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive number, got {value}")
    return number


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="langcrux",
        description="LangCrUX + Kizuki reproduction pipeline",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    build = subparsers.add_parser("build", help="build a dataset over the synthetic web")
    build.add_argument("--output", type=Path, default=Path("langcrux.jsonl"),
                       help="output JSONL path (default: langcrux.jsonl)")
    build.add_argument("--sites-per-country", type=int, default=30,
                       help="selection quota per country (default: 30)")
    build.add_argument("--countries", nargs="*", default=None,
                       help="country codes to include (default: all twelve)")
    build.add_argument("--seed", type=int, default=7, help="synthetic web seed")
    build.add_argument("--no-vpn", action="store_true",
                       help="crawl from a cloud vantage instead of country VPN exits")
    build.add_argument("--workers", type=_positive_int, default=1,
                       help="country shards crawled concurrently; any worker count "
                            "produces byte-identical output (default: 1)")
    build.add_argument("--executor", choices=EXECUTOR_KINDS, default="auto",
                       help="execution backend: 'auto' picks serial for one worker "
                            "and a thread pool otherwise; 'process' uses a process "
                            "pool for CPU-bound scaling (default: auto)")
    build.add_argument("--max-in-flight", type=_positive_int, default=1,
                       help="concurrent candidate fetches per country shard via the "
                            "async batched fetch layer; any value produces "
                            "byte-identical output (default: 1)")
    build.add_argument("--sub-shard-size", type=_positive_int, default=None,
                       help="split each country's candidate walk into sub-shards of "
                            "this many candidates so one country can use every "
                            "worker; sub-shards are evaluated speculatively but "
                            "committed in rank order, so any value produces "
                            "byte-identical output (default: whole-country shards)")
    build.add_argument("--stream-output", type=Path, default=None,
                       help="stream records to this JSONL as shards finish instead "
                            "of writing --output after the run; the file is "
                            "committed atomically and is byte-identical to the "
                            "in-memory write")
    build.add_argument("--transport", choices=TRANSPORT_KINDS, default="simulated",
                       help="'simulated' crawls the in-memory synthetic web; 'http' "
                            "crawls over real sockets — point --http-gateway at a "
                            "'langcrux serve' instance; both produce byte-identical "
                            "datasets for the same web (default: simulated)")
    build.add_argument("--http-gateway", default=None, metavar="HOST:PORT",
                       help="address every origin resolves to with --transport http "
                            "(a live LocalSiteServer); omit to connect to each "
                            "origin's own host")
    build.add_argument("--crawl-cache", type=Path, default=None, metavar="DIR",
                       help="on-disk crawl cache directory: a re-run replays every "
                            "already-fetched response from disk (zero network "
                            "fetches on a warm cache) and yields identical output")
    build.add_argument("--rate-limit", type=_positive_float, default=None,
                       metavar="REQ_PER_S",
                       help="per-host request rate enforced by the politeness layer")
    build.add_argument("--max-per-host", type=_positive_int, default=None,
                       help="per-host concurrent-request cap of the politeness layer")
    build.add_argument("--profile", action="store_true",
                       help="collect per-stage timings and op counters in every "
                            "shard worker and print the per-stage table after the "
                            "build; the dataset bytes are identical either way")
    build.add_argument("--profile-dump", type=Path, default=None, metavar="PATH",
                       help="additionally run the build under cProfile and dump "
                            "the stats to PATH (inspect with pstats or snakeviz); "
                            "implies --profile")
    build.add_argument("--trace-dir", type=Path, default=None, metavar="DIR",
                       help="write structured span/event trace files (one JSONL "
                            "per process) and live status snapshots under DIR; "
                            "inspect with 'langcrux trace DIR'; the dataset "
                            "bytes are identical either way")

    dist = subparsers.add_parser(
        "dist-build",
        help="build a dataset with a work-queue coordinator + worker processes")
    dist.add_argument("--queue-dir", type=Path, required=True, metavar="DIR",
                      help="shared queue directory (the only coordination "
                           "channel; put it on a shared mount for multi-host)")
    dist.add_argument("--role", choices=("coordinator", "worker"),
                      default="coordinator",
                      help="'coordinator' plans, spawns --workers local workers "
                           "and merges; 'worker' joins an existing queue "
                           "(default: coordinator)")
    dist.add_argument("--output", type=Path, default=Path("langcrux.jsonl"),
                      help="output JSONL path (default: langcrux.jsonl)")
    dist.add_argument("--workers", type=int, default=2,
                      help="local worker processes to spawn; 0 spawns none — "
                           "start workers elsewhere with --role worker "
                           "(default: 2)")
    dist.add_argument("--sites-per-country", type=int, default=30,
                      help="selection quota per country (default: 30)")
    dist.add_argument("--countries", nargs="*", default=None,
                      help="country codes to include (default: all twelve)")
    dist.add_argument("--seed", type=int, default=7, help="synthetic web seed")
    dist.add_argument("--no-vpn", action="store_true",
                      help="crawl from a cloud vantage instead of country VPN exits")
    dist.add_argument("--sub-shard-size", type=_positive_int, default=10,
                      help="candidates per window — the unit of distribution "
                           "(default: 10)")
    dist.add_argument("--max-in-flight", type=_positive_int, default=1,
                      help="concurrent candidate fetches within each window "
                           "(default: 1)")
    dist.add_argument("--transport", choices=TRANSPORT_KINDS, default="simulated",
                      help="'simulated' or 'http' (see 'build'; default: simulated)")
    dist.add_argument("--http-gateway", default=None, metavar="HOST:PORT",
                      help="address every origin resolves to with --transport http")
    dist.add_argument("--crawl-cache", type=Path, default=None, metavar="DIR",
                      help="shared crawl-cache directory; re-issued windows "
                           "replay completed fetches from it "
                           "(default: QUEUE_DIR/crawl-cache)")
    dist.add_argument("--lease-timeout", type=_positive_float, default=10.0,
                      metavar="SECONDS",
                      help="heartbeat age after which a worker's window lease "
                           "is considered dead and re-issued (default: 10)")
    dist.add_argument("--profile", action="store_true",
                      help="collect per-worker stage timings/counters and "
                           "coordinator queue counters; print the merged table")
    dist.add_argument("--trace", action="store_true",
                      help="trace the build: the coordinator stamps a trace id "
                           "into build.json, every worker joins it, and "
                           "QUEUE_DIR/trace holds one span file per process "
                           "(see 'langcrux trace')")
    dist.add_argument("--trace-dir", type=Path, default=None, metavar="DIR",
                      help="where traced runs write their span files "
                           "(default: QUEUE_DIR/trace; implies --trace)")

    trace = subparsers.add_parser(
        "trace", help="reassemble a traced run's span files into one tree")
    trace.add_argument("trace_dir", type=Path, metavar="DIR",
                       help="a trace directory, or a directory containing one "
                            "(e.g. a dist-build --trace queue dir)")
    trace.add_argument("--min-ms", type=float, default=0.0,
                       help="hide non-root spans shorter than this many "
                            "milliseconds (default: 0, show everything)")
    trace.add_argument("--depth", type=int, default=None,
                       help="maximum tree depth to print (default: unlimited)")

    status = subparsers.add_parser(
        "status", help="show live heartbeat status of a (running) build")
    status.add_argument("--queue-dir", type=Path, required=True, metavar="DIR",
                        help="the run's queue or trace directory (wherever its "
                             "status/ snapshots land)")

    compact = subparsers.add_parser(
        "cache-compact",
        help="fold a crawl cache's manifests into one and sweep orphaned bodies")
    compact.add_argument("cache_dir", type=Path, metavar="DIR",
                         help="crawl-cache directory to compact (no readers or "
                              "writers may be active)")
    compact.add_argument("--no-sweep", action="store_true",
                         help="fold manifests only; keep unreferenced body files")

    analyze = subparsers.add_parser("analyze", help="print Table 2 style statistics")
    analyze.add_argument("dataset", type=Path, help="dataset JSONL produced by 'build'")
    analyze.add_argument("--json", action="store_true",
                         help="emit the report as JSON (byte-identical to the API's "
                              "/analyze endpoint)")

    mismatch = subparsers.add_parser("mismatch", help="print the mismatch summary and examples")
    mismatch.add_argument("dataset", type=Path)
    mismatch.add_argument("--examples", type=int, default=5, help="number of examples to print")
    mismatch.add_argument("--json", action="store_true",
                          help="emit the report as JSON (byte-identical to the API's "
                               "/mismatch endpoint)")

    kizuki = subparsers.add_parser("kizuki", help="re-score with the language-aware audit")
    kizuki.add_argument("dataset", type=Path)
    kizuki.add_argument("--countries", nargs="*", default=["bd", "th"],
                        help="countries to re-score (default: bd th)")
    kizuki.add_argument("--json", action="store_true",
                        help="emit the report as JSON (byte-identical to the API's "
                             "/kizuki endpoint)")

    report = subparsers.add_parser("report", help="render tables and figures to a text report")
    report.add_argument("dataset", type=Path)
    report.add_argument("--output", type=Path, default=Path("langcrux_report.txt"),
                        help="report path (default: langcrux_report.txt)")

    export = subparsers.add_parser("export", help="export explorer JSON summaries")
    export.add_argument("dataset", type=Path)
    export.add_argument("--output", type=Path, default=Path("langcrux_summary.json"),
                        help="JSON path (default: langcrux_summary.json)")
    export.add_argument("--no-sites", action="store_true",
                        help="omit per-site rows, keep country aggregates only")

    serve = subparsers.add_parser(
        "serve", help="serve the synthetic web over real loopback HTTP")
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default: 127.0.0.1; keep it loopback)")
    serve.add_argument("--port", type=int, default=0,
                       help="port to bind; 0 picks a free ephemeral port (default: 0)")
    serve.add_argument("--seed", type=int, default=7, help="synthetic web seed")
    serve.add_argument("--countries", nargs="*", default=None,
                       help="country codes to include (default: all twelve)")
    serve.add_argument("--sites-per-country", type=int, default=30,
                       help="selection quota the served candidate pool is sized for "
                            "(match the build you will run against it; default: 30)")
    serve.add_argument("--duration", type=float, default=None,
                       help="serve for this many seconds then exit (default: until "
                            "interrupted)")

    api = subparsers.add_parser(
        "api", help="serve a built dataset as a JSON analytics API")
    api.add_argument("dataset", type=Path, help="dataset JSONL produced by 'build'")
    api.add_argument("--host", default="127.0.0.1",
                     help="interface to bind (default: 127.0.0.1; keep it loopback)")
    api.add_argument("--port", type=int, default=0,
                     help="port to bind; 0 picks a free ephemeral port (default: 0)")
    api.add_argument("--max-workers", type=_positive_int, default=8,
                     help="concurrently handled requests (default: 8)")
    api.add_argument("--cache-size", type=_positive_int, default=256,
                     help="response cache entries (default: 256)")
    api.add_argument("--skip-corrupt", action="store_true",
                     help="skip corrupt dataset lines at load instead of failing")
    api.add_argument("--no-reload", action="store_true",
                     help="don't watch the dataset file for changes")
    api.add_argument("--duration", type=float, default=None,
                     help="serve for this many seconds then exit (default: until "
                          "interrupted)")

    return parser


def _cmd_build(args: argparse.Namespace) -> int:
    countries = tuple(args.countries) if args.countries else langcrux_country_codes()
    config = PipelineConfig(
        countries=countries,
        sites_per_country=args.sites_per_country,
        seed=args.seed,
        use_vpn=not args.no_vpn,
        workers=args.workers,
        executor=args.executor,
        max_in_flight=args.max_in_flight,
        sub_shard_size=args.sub_shard_size,
        transport=args.transport,
        http_gateway=args.http_gateway,
        crawl_cache=str(args.crawl_cache) if args.crawl_cache is not None else None,
        rate_limit=args.rate_limit,
        max_per_host=args.max_per_host,
        profile=args.profile or args.profile_dump is not None,
        trace_dir=str(args.trace_dir) if args.trace_dir is not None else None,
    )

    def _run():
        if args.stream_output is not None:
            # Streaming builds don't retain records in memory: the streamed
            # file is the dataset, and the analysis subcommands load from
            # disk anyway.
            return LangCrUXPipeline(config).run(stream_to=args.stream_output,
                                                keep_in_memory=False)
        return LangCrUXPipeline(config).run()

    if args.profile_dump is not None:
        import cProfile

        profiler = cProfile.Profile()
        result = profiler.runcall(_run)
        profiler.dump_stats(args.profile_dump)
    else:
        result = _run()
    if args.stream_output is not None:
        print(f"streamed {result.streamed_records} site records to {args.stream_output}")
        memory = perf.memory_gauges()
        peak_rss_kb = memory.get("mem.peak_rss_kb")
        if peak_rss_kb is not None:
            print(f"  peak RSS: {peak_rss_kb / 1024.0:.1f} MiB")
        if result.time_to_first_record_s is not None:
            print(f"  first record on disk after {result.time_to_first_record_s:.3f}s"
                  f" (record-buffer high-water {result.record_buffer_peak})")
    else:
        count = result.dataset.save_jsonl(args.output)
        print(f"wrote {count} site records to {args.output}")
    for country, outcome in sorted(result.selection_outcomes.items()):
        print(f"  {country}: selected {len(outcome.selected)}/{outcome.quota}"
              f" (replaced {outcome.replacement_count}, examined {outcome.candidates_examined})")
    if args.workers > 1:
        shards = len(result.shard_metrics)
        sub_shards = sum(metric.sub_shards for metric in result.shard_metrics.values())
        shard_note = (f" {shards} shards ({sub_shards} sub-shards)"
                      if args.sub_shard_size is not None else f" {shards} shards")
        print(f"  shard wall-clock: {result.total_shard_seconds():.2f}s across"
              f"{shard_note}"
              f" ({result.executor_workers} workers, {result.executor_name} executor)")
    if result.transport_metrics is not None:
        for line in result.transport_metrics.summary_lines():
            print(f"  transport: {line}")
    if result.perf_metrics is not None:
        print(f"  perf: {result.perf_metrics.summary_line()}")
        for line in result.perf_metrics.table_lines():
            print(f"  {line}")
    if args.profile_dump is not None:
        print(f"  wrote cProfile stats to {args.profile_dump}")
    if args.trace_dir is not None:
        print(f"  trace written under {args.trace_dir}"
              f" (inspect with: langcrux trace {args.trace_dir})")
    return 0


def _cmd_dist_build(args: argparse.Namespace) -> int:
    from repro.dist import Coordinator, CrawlWorker, DistBuildError

    if args.role == "worker":
        stats = CrawlWorker(str(args.queue_dir)).run()
        print(f"worker {stats.worker}: {stats.windows_executed} windows"
              f" ({stats.claim_conflicts} claim conflicts,"
              f" {stats.idle_s:.1f}s idle)")
        return 0
    if args.workers < 0:
        LOG.error("--workers must be >= 0", workers=args.workers)
        return 2
    countries = tuple(args.countries) if args.countries else langcrux_country_codes()
    crawl_cache = args.crawl_cache if args.crawl_cache is not None \
        else args.queue_dir / "crawl-cache"
    trace_dir = args.trace_dir
    if trace_dir is None and args.trace:
        trace_dir = args.queue_dir / "trace"
    config = PipelineConfig(
        countries=countries,
        sites_per_country=args.sites_per_country,
        seed=args.seed,
        use_vpn=not args.no_vpn,
        max_in_flight=args.max_in_flight,
        sub_shard_size=args.sub_shard_size,
        transport=args.transport,
        http_gateway=args.http_gateway,
        crawl_cache=str(crawl_cache),
        profile=args.profile,
        trace_dir=str(trace_dir) if trace_dir is not None else None,
    )
    coordinator = Coordinator(config, args.queue_dir, args.output,
                              workers=args.workers,
                              lease_timeout_s=args.lease_timeout)
    try:
        result = coordinator.run()
    except DistBuildError as error:
        LOG.error(f"distributed build failed: {error}")
        return 1
    print(f"streamed {result.streamed_records} site records to {args.output}")
    for country, outcome in sorted(result.selection_outcomes.items()):
        print(f"  {country}: selected {len(outcome.selected)}/{outcome.quota}"
              f" (replaced {outcome.replacement_count},"
              f" examined {outcome.candidates_examined})")
    print(f"  windows: {result.windows_merged}/{result.windows_planned} merged,"
          f" {result.windows_reissued} re-issued, {result.results_torn} torn"
          f" ({result.workers_spawned} workers spawned,"
          f" {result.worker_restarts} restarts)")
    if result.transport_metrics is not None:
        for line in result.transport_metrics.summary_lines():
            print(f"  transport: {line}")
    if result.perf_metrics is not None:
        for line in result.perf_metrics.table_lines():
            print(f"  {line}")
    return 0


def _cmd_cache_compact(args: argparse.Namespace) -> int:
    from repro.crawler.transport import compact_cache

    if not args.cache_dir.is_dir():
        LOG.error(f"{args.cache_dir} is not a directory")
        return 2
    stats = compact_cache(args.cache_dir, sweep_orphans=not args.no_sweep)
    for line in stats.summary_lines():
        print(line)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time as _time

    from repro.webgen.server import LocalSiteServer

    countries = tuple(args.countries) if args.countries else langcrux_country_codes()
    config = PipelineConfig(countries=countries,
                            sites_per_country=args.sites_per_country,
                            seed=args.seed)
    web, _crux = build_web_for_config(config)
    with LocalSiteServer(web, host=args.host, port=args.port) as server:
        print(f"serving {len(web)} synthetic origins on http://{server.gateway}")
        print(f"crawl it with: langcrux build --transport http "
              f"--http-gateway {server.gateway} --seed {args.seed}"
              f" --sites-per-country {args.sites_per_country}"
              + (f" --countries {' '.join(countries)}" if args.countries else ""))
        try:
            if args.duration is not None:
                _time.sleep(args.duration)
            else:  # pragma: no cover - interactive mode
                while True:
                    _time.sleep(3600)
        except KeyboardInterrupt:  # pragma: no cover - interactive mode
            pass
    return 0


def _load_aggregates(path: Path):
    """Load a dataset into API aggregates, exiting 2 on a corrupt file."""
    from repro.api.aggregates import DatasetAggregates, DatasetLoadError

    try:
        return DatasetAggregates.load(path)
    except DatasetLoadError as error:
        LOG.error(str(error))
        raise SystemExit(2)


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.json:
        from repro.api.aggregates import render_json

        print(render_json(_load_aggregates(args.dataset).analyze_payload()))
        return 0
    dataset = LangCrUXDataset.load_jsonl(args.dataset)
    print(f"dataset: {len(dataset)} sites across {len(dataset.countries())} countries")
    print()
    print(f"{'element':<20}{'missing%':>10}{'empty%':>10}{'len':>8}{'words':>8}")
    for element_id, row in element_statistics(dataset).items():
        print(f"{element_id:<20}{row.missing_pct.mean:>10.2f}{row.empty_pct.mean:>10.2f}"
              f"{row.text_length.mean:>8.1f}{row.word_count.mean:>8.2f}")
    print()
    print("uninformative accessibility text share per country:")
    for country, rate in sorted(uninformative_rate_by_country(dataset).items()):
        print(f"  {country}: {rate * 100:.1f}%")
    print()
    print("language mix of informative accessibility texts per country:")
    for country in dataset.countries():
        texts: list[str] = []
        language = None
        for record in dataset.for_country(country):
            texts.extend(record.informative_texts())
            language = record.language_code
        if not texts or language is None:
            continue
        mix = classify_texts(texts, language).proportions()
        print(f"  {country}: native {mix['native'] * 100:.1f}%  english {mix['english'] * 100:.1f}%"
              f"  mixed {mix['mixed'] * 100:.1f}%")
    return 0


def _cmd_mismatch(args: argparse.Namespace) -> int:
    if args.json:
        from repro.api.aggregates import render_json

        print(render_json(_load_aggregates(args.dataset)
                          .mismatch_payload(examples=args.examples)))
        return 0
    dataset = LangCrUXDataset.load_jsonl(args.dataset)
    print("fraction of sites with <10% native accessibility text:")
    for country, fraction in sorted(mismatch_summary(dataset).items()):
        print(f"  {country}: {fraction * 100:.1f}%")
    examples = mismatch_examples(dataset, limit=args.examples)
    if examples:
        print()
        print("examples (native visible content, English accessibility text):")
        for example in examples:
            print(f"  {example.domain} [{example.country_code}] visible native"
                  f" {example.visible_native_pct:.0f}%, accessibility native"
                  f" {example.accessibility_native_pct:.0f}%")
            for text in example.sample_alt_texts:
                preview = text if len(text) <= 80 else text[:77] + "..."
                print(f"    alt: {preview}")
    return 0


def _cmd_kizuki(args: argparse.Namespace) -> int:
    if args.json:
        from repro.api.aggregates import render_json

        payload = _load_aggregates(args.dataset).kizuki_payload(tuple(args.countries))
        print(render_json(payload))
        return 0 if payload["sites"] else 1
    dataset = LangCrUXDataset.load_jsonl(args.dataset)
    summary = rescore_dataset(dataset, tuple(args.countries))
    if summary.sites == 0:
        print("no eligible sites (all fail the original image-alt audit)")
        return 1
    print(f"re-scored {summary.sites} sites from {', '.join(args.countries)}")
    print(f"  score > 90:  {summary.fraction_above(90, new=False) * 100:5.1f}%  ->"
          f"  {summary.fraction_above(90, new=True) * 100:5.1f}%")
    print(f"  score = 100: {summary.fraction_perfect(new=False) * 100:5.1f}%  ->"
          f"  {summary.fraction_perfect(new=True) * 100:5.1f}%")
    return 0


def _cmd_api(args: argparse.Namespace) -> int:
    import time as _time

    from repro.api.aggregates import DatasetLoadError
    from repro.api.server import AnalyticsServer

    try:
        server = AnalyticsServer(args.dataset, host=args.host, port=args.port,
                                 max_workers=args.max_workers,
                                 cache_size=args.cache_size,
                                 skip_corrupt=args.skip_corrupt,
                                 auto_reload=not args.no_reload)
    except DatasetLoadError as error:
        LOG.error(str(error))
        return 2
    with server:
        aggregates = server.service.aggregates
        print(f"serving {aggregates.site_count} sites"
              f" ({len(aggregates.countries())} countries)"
              f" from {args.dataset} on http://{server.gateway}")
        if aggregates.skipped_records:
            print(f"  skipped {aggregates.skipped_records} corrupt records at load")
        print(f"  try: curl http://{server.gateway}/analyze")
        try:
            if args.duration is not None:
                _time.sleep(args.duration)
            else:  # pragma: no cover - interactive mode
                while True:
                    _time.sleep(3600)
        except KeyboardInterrupt:  # pragma: no cover - interactive mode
            pass
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.tree import assemble_trace, load_trace_records

    if not args.trace_dir.is_dir():
        LOG.error(f"{args.trace_dir} is not a directory")
        return 2
    records = load_trace_records(args.trace_dir)
    tree = assemble_trace(records)
    if tree is None or tree.span_count == 0:
        LOG.error(f"no trace records under {args.trace_dir}"
                  " (was the run started with --trace / --trace-dir?)")
        return 1
    for line in tree.render_lines(min_duration_s=args.min_ms / 1000.0,
                                  max_depth=args.depth):
        print(line)
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.obs.status import queue_progress, read_statuses, render_status_lines

    if not args.queue_dir.is_dir():
        LOG.error(f"{args.queue_dir} is not a directory")
        return 2
    snapshots = read_statuses(args.queue_dir)
    progress = queue_progress(args.queue_dir)
    for line in render_status_lines(snapshots, progress=progress):
        print(line)
    return 0 if snapshots or progress is not None else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.report.figures import render_all_figures
    from repro.report.tables import render_table1, render_table2

    dataset = LangCrUXDataset.load_jsonl(args.dataset)
    sections = [render_table1(), render_table2(dataset), render_all_figures(dataset)]
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text("\n\n\n".join(sections), encoding="utf-8")
    print(f"wrote report for {len(dataset)} sites to {args.output}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.report.export import write_dataset_summary

    dataset = LangCrUXDataset.load_jsonl(args.dataset)
    path = write_dataset_summary(dataset, args.output, include_sites=not args.no_sites)
    print(f"exported {len(dataset)} sites to {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "build": _cmd_build,
        "dist-build": _cmd_dist_build,
        "cache-compact": _cmd_cache_compact,
        "analyze": _cmd_analyze,
        "mismatch": _cmd_mismatch,
        "kizuki": _cmd_kizuki,
        "report": _cmd_report,
        "export": _cmd_export,
        "serve": _cmd_serve,
        "api": _cmd_api,
        "trace": _cmd_trace,
        "status": _cmd_status,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # `langcrux <cmd> | head` closed the pipe mid-print; redirect
        # stdout at the devnull so the interpreter's shutdown flush does
        # not raise a second time, and exit as the consumer intended.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - direct execution convenience
    sys.exit(main())

"""Hot-path profiling and instrumentation.

The post-fetch pipeline stages (parse, DocumentIndex build, extraction, audit
rules, langid scoring, Kizuki, record build) are pure-Python CPU work; knowing
where the time goes is a prerequisite for optimising them.  This module
provides a lightweight stage timer / op counter facility modeled on
:class:`repro.crawler.metrics.TransportMetrics`:

* :class:`PerfCounters` — the accumulator.  Thread-safe, picklable (shard
  workers snapshot one and ship it back to the parent like transport
  metrics), mergeable via :meth:`PerfCounters.merge`.
* :func:`collecting` — context manager that installs a collector for the
  current thread.  Instrumented code records into whatever collector is
  active; with none installed the instrumentation reduces to one attribute
  lookup and a ``None`` check per stage entry (near-zero overhead, which is
  why profiling can stay compiled into the hot paths).
* :func:`stage` / :func:`count` / :func:`gauge` — the instrumentation points
  used throughout ``repro.html``, ``repro.langid``, ``repro.audit`` and
  ``repro.core``.

Counters sum when merged; **gauges** merge by ``max`` and capture level-style
observations where the run-wide peak is the interesting number — peak
resident set size, the record-buffer high-water mark of a streaming run,
time-to-first-record.  :func:`memory_gauges` samples the process's memory
peaks (``resource.getrusage`` RSS for self and children, plus the
``tracemalloc`` peak when tracing is active) in that shape.

Collection is thread-local on purpose: shard workers on the thread/process
executors each run their post-fetch stages on their own thread, so per-shard
collectors never observe each other's work and per-shard totals stay
deterministic.

Stages nest (e.g. ``record`` encloses ``extract`` which encloses ``index``),
so stage times are inclusive and do not sum to wall-clock time; the summary
line orders stages by total time (what matters for finding hot spots) while
the ``--profile`` table is name-sorted so its output diffs deterministically
across executors and runs.

The stage timers double as tracing hooks: when :mod:`repro.obs.trace` is
enabled it registers itself via :func:`set_tracer`, and every ``stage()``
block then also emits a span — durations and nesting identical to the
profile view, but per-occurrence and cross-process joinable.  With no
tracer registered the hook costs one module-global ``None`` check.
"""

from __future__ import annotations

import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class StageStat:
    """Aggregate of one named stage: call count and total seconds."""

    calls: int = 0
    seconds: float = 0.0

    @property
    def avg_ms(self) -> float:
        return (self.seconds / self.calls) * 1000.0 if self.calls else 0.0


@dataclass
class PerfCounters:
    """Per-stage timers, named op counters and peak gauges.

    Instances are plain picklable data (the lock is dropped on pickling and
    recreated on restore, mirroring ``TransportMetrics``), so shard workers
    can snapshot and ship them back to the parent, which merges them via
    :meth:`merge`.  Stage times and counters *sum* across merges; gauges
    merge by ``max`` — they record the highest level any contributor saw.
    """

    stages: dict[str, StageStat] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        return {"stages": self.stages, "counters": self.counters,
                "gauges": self.gauges}

    def __setstate__(self, state: dict) -> None:
        self.stages = state["stages"]
        self.counters = state["counters"]
        self.gauges = state.get("gauges", {})
        self._lock = threading.Lock()

    # -- accumulation ----------------------------------------------------------

    def add_stage(self, name: str, seconds: float, calls: int = 1) -> None:
        """Record ``calls`` invocations of ``name`` totalling ``seconds``."""
        with self._lock:
            stat = self.stages.get(name)
            if stat is None:
                stat = self.stages[name] = StageStat()
            stat.calls += calls
            stat.seconds += seconds

    def count(self, name: str, amount: int = 1) -> None:
        """Increment op counter ``name`` by ``amount`` (thread-safe)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Raise gauge ``name`` to ``value`` if higher (thread-safe).

        Gauges are high-water marks: setting a lower value than the current
        one is a no-op, and merging keeps the maximum of both sides.
        """
        with self._lock:
            current = self.gauges.get(name)
            if current is None or value > current:
                self.gauges[name] = value

    def merge(self, other: "PerfCounters") -> None:
        """Fold another collector's stages, counters and gauges into this one."""
        with self._lock:
            for name, stat in other.stages.items():
                mine = self.stages.get(name)
                if mine is None:
                    self.stages[name] = StageStat(stat.calls, stat.seconds)
                else:
                    mine.calls += stat.calls
                    mine.seconds += stat.seconds
            for name, value in other.counters.items():
                self.counters[name] = self.counters.get(name, 0) + value
            for name, value in other.gauges.items():
                current = self.gauges.get(name)
                if current is None or value > current:
                    self.gauges[name] = value

    # -- derived / reporting ---------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.stages and not self.counters and not self.gauges

    def total_seconds(self) -> float:
        """Sum of stage times (inclusive; nested stages double-count)."""
        return sum(stat.seconds for stat in self.stages.values())

    def stage_calls(self) -> dict[str, int]:
        """Deterministic {stage: calls} snapshot (seconds excluded)."""
        return {name: self.stages[name].calls for name in sorted(self.stages)}

    def as_dict(self) -> dict:
        return {
            "stages": {name: {"calls": stat.calls, "seconds": stat.seconds}
                       for name, stat in sorted(self.stages.items())},
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PerfCounters":
        """Rebuild a collector from :meth:`as_dict` output.

        The JSON round trip is what lets distributed workers ship their
        per-window counters home through window-result files; the
        coordinator merges the rebuilt collectors exactly as the process
        executor merges pickled ones.
        """
        counters = cls(
            stages={name: StageStat(calls=stat.get("calls", 0),
                                    seconds=stat.get("seconds", 0.0))
                    for name, stat in payload.get("stages", {}).items()},
            counters=dict(payload.get("counters", {})),
            gauges=dict(payload.get("gauges", {})),
        )
        return counters

    def summary_line(self) -> str:
        """One-line per-stage timing summary, hottest stage first."""
        if not self.stages:
            return "no stages recorded"
        ranked = sorted(self.stages.items(), key=lambda item: (-item[1].seconds, item[0]))
        parts = [f"{name} {stat.seconds:.3f}s/{stat.calls}" for name, stat in ranked]
        return " ".join(parts)

    def table_lines(self) -> list[str]:
        """Per-stage table plus a counters line (used by ``build --profile``).

        Deterministically ordered — stages sorted by name, then the
        counters line, gauges last — so CI greps and diffs of profile
        output are stable across executors and timing jitter (the
        hotness ranking lives in :meth:`summary_line`).
        """
        lines = [f"{'stage':<28}{'calls':>10}{'total s':>12}{'avg ms':>10}"]
        for name, stat in sorted(self.stages.items()):
            lines.append(f"{name:<28}{stat.calls:>10}{stat.seconds:>12.4f}{stat.avg_ms:>10.3f}")
        if self.counters:
            pairs = " ".join(f"{name}={value}" for name, value in sorted(self.counters.items()))
            lines.append(f"counters: {pairs}")
        if self.gauges:
            pairs = " ".join(f"{name}={value:g}" for name, value in sorted(self.gauges.items()))
            lines.append(f"gauges: {pairs}")
        return lines


# -- thread-local collection ---------------------------------------------------

_local = threading.local()

#: The process's tracer hook (set by ``repro.obs.trace`` when tracing is
#: enabled).  Typed loosely to keep this module import-cycle-free: perf is
#: imported by nearly everything, obs imports perf.
_tracer = None


def set_tracer(tracer) -> None:
    """Register (or with ``None`` deregister) the stage-span tracer hook."""
    global _tracer
    _tracer = tracer


def active() -> PerfCounters | None:
    """The collector installed for the current thread, or ``None``."""
    return getattr(_local, "collector", None)


@contextmanager
def collecting(collector: PerfCounters | None) -> Iterator[PerfCounters | None]:
    """Install ``collector`` for the current thread for the duration.

    Passing ``None`` is an explicit no-op, which lets callers write one
    ``with perf.collecting(counters_or_none):`` regardless of whether
    profiling is enabled.  Nested use restores the previous collector.
    """
    if collector is None:
        yield None
        return
    previous = getattr(_local, "collector", None)
    _local.collector = collector
    try:
        yield collector
    finally:
        _local.collector = previous


class _NullTimer:
    """Shared no-op context manager returned when no collector is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_TIMER = _NullTimer()


class StageTimer:
    """Times one ``with`` block into a collector and/or a tracer span."""

    __slots__ = ("_name", "_collector", "_tracer", "_span", "_started")

    def __init__(self, name: str, collector: PerfCounters | None,
                 tracer=None) -> None:
        self._name = name
        self._collector = collector
        self._tracer = tracer

    def __enter__(self) -> "StageTimer":
        if self._tracer is not None:
            # Perf-hook spans are non-structural: the tracer only writes
            # them past its minimum-duration threshold, bounding trace
            # volume from hot micro-stages.
            self._span = self._tracer.start_span(self._name, structural=False)
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._collector is not None:
            self._collector.add_stage(self._name,
                                      time.perf_counter() - self._started)
        if self._tracer is not None:
            self._tracer.end_span(self._span)


def stage(name: str):
    """Context manager timing ``name`` into the active collector/tracer.

    With no collector installed and no tracer registered this returns a
    shared no-op timer, so the disabled cost is one thread-local lookup
    and one global check per stage entry.
    """
    collector = getattr(_local, "collector", None)
    tracer = _tracer
    if collector is None and tracer is None:
        return _NULL_TIMER
    return StageTimer(name, collector, tracer)


def count(name: str, amount: int = 1) -> None:
    """Increment op counter ``name`` on the active collector, if any."""
    collector = getattr(_local, "collector", None)
    if collector is not None:
        collector.count(name, amount)


def gauge(name: str, value: float) -> None:
    """Raise gauge ``name`` on the active collector, if any."""
    collector = getattr(_local, "collector", None)
    if collector is not None:
        collector.gauge(name, value)


# -- memory gauges --------------------------------------------------------------


def memory_gauges() -> dict[str, float]:
    """Sample the process's peak-memory gauges.

    Returns ``mem.peak_rss_kb`` (the process's lifetime peak resident set
    size) and ``mem.peak_rss_children_kb`` (the largest peak among reaped
    child processes — the process-executor workers) from
    ``resource.getrusage``, plus ``mem.tracemalloc_peak_kb`` when
    ``tracemalloc`` is tracing (the resettable Python-heap peak the memory
    benchmark compares across runs).  On platforms without ``resource`` the
    RSS gauges are omitted.
    """
    gauges: dict[str, float] = {}
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        resource = None
    if resource is not None:
        # ru_maxrss is kilobytes on Linux, bytes on macOS; normalise to KiB.
        scale = 1024.0 if sys.platform == "darwin" else 1.0
        gauges["mem.peak_rss_kb"] = \
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / scale
        gauges["mem.peak_rss_children_kb"] = \
            resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / scale
    import tracemalloc
    if tracemalloc.is_tracing():
        gauges["mem.tracemalloc_peak_kb"] = tracemalloc.get_traced_memory()[1] / 1024.0
    return gauges

"""The distributed build coordinator.

The coordinator owns the merge — everything order-sensitive — while
workers own the crawling.  It plans the deterministic window split,
publishes it to the queue directory, optionally spawns local worker
processes, and then consumes window results *in plan order*: country by
country in configured order, windows by rank within each country, each
committed through the country's
:class:`~repro.core.site_selection.RankOrderCommitter` with accepted
record lines streamed verbatim into per-country sections of a
:class:`~repro.core.dataset.StreamingDatasetWriter`.  That is precisely
the single-host sub-sharded merge, so the output JSONL is byte-identical
to ``LangCrUXPipeline.run(stream_to=...)`` regardless of worker count,
crashes or retries.

While waiting on a window the coordinator is also the failure detector:
leases whose heartbeat stopped are reaped (re-opening the window —
counted as ``dist.windows_reissued``), torn result files are deleted
(``dist.results_torn``), and dead local workers are respawned up to a
restart budget.  A country whose quota fills mid-merge gets a filled
marker so workers stop claiming its remaining windows, and those windows
are *not* waited on.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import perf
from repro.core.dataset import StreamingDatasetWriter
from repro.core.executor import ShardMetrics
from repro.core.pipeline import (
    PipelineConfig,
    RecordSink,
    _RunTotals,
    build_web_for_config,
    plan_selection_windows,
)
from repro.core.site_selection import RankOrderCommitter, SelectionOutcome
from repro.dist.results import DecodedWindowResult, decode_window_result
from repro.dist.workqueue import QueuedWindow, WorkQueue
from repro.obs import trace as obs_trace
from repro.obs.log import get_logger
from repro.obs.status import StatusReporter

LOG = get_logger("dist.coordinator")


class DistBuildError(RuntimeError):
    """A distributed build cannot make progress (e.g. every worker died)."""


@dataclass
class DistBuildResult:
    """What a coordinated build produced, mirroring ``PipelineResult``
    where the concepts coincide."""

    output: Path
    streamed_records: int
    selection_outcomes: dict[str, SelectionOutcome]
    shard_metrics: dict[str, ShardMetrics] = field(default_factory=dict)
    windows_planned: int = 0
    windows_merged: int = 0
    windows_reissued: int = 0
    results_torn: int = 0
    workers_spawned: int = 0
    worker_restarts: int = 0
    transport_metrics: object | None = None
    perf_metrics: perf.PerfCounters | None = None
    time_to_first_record_s: float | None = None

    def qualifying_site_counts(self) -> dict[str, int]:
        return {country: len(outcome.selected)
                for country, outcome in self.selection_outcomes.items()}


class Coordinator:
    """Plans, supervises and merges one distributed build.

    Args:
        config: The pipeline configuration (``sub_shard_size`` required —
            windows are the unit of distribution).
        queue_dir: The shared queue directory (created if missing).
        output: Destination JSONL path.
        workers: Local worker processes to spawn.  0 spawns none — the
            multi-host mode, where workers are started elsewhere with
            ``--role worker`` against the same (shared) queue dir.
        lease_timeout_s: Heartbeat age after which a lease is considered
            dead and its window re-issued.
        poll_interval_s: Result-poll period of the merge loop.
        max_worker_restarts: Total respawn budget for dead local workers.
        worker_command: Override of the spawned worker argv (tests use
            this to inject crashing workers).
        stream_fsync: Fsync policy of the output writer.
    """

    def __init__(self, config: PipelineConfig, queue_dir: str | Path,
                 output: str | Path, *, workers: int = 0,
                 lease_timeout_s: float = 10.0,
                 poll_interval_s: float = 0.02,
                 max_worker_restarts: int = 3,
                 worker_command: list[str] | None = None,
                 stream_fsync: str = "commit") -> None:
        if config.sub_shard_size is None:
            raise ValueError("distributed builds require sub_shard_size: "
                             "windows are the unit of distribution")
        if config.crawl_cache is None:
            raise ValueError("distributed builds require crawl_cache: "
                             "re-issued windows replay from the shared cache")
        self.config = config
        self.queue = WorkQueue(queue_dir)
        self.output = Path(output)
        self.workers = workers
        self.lease_timeout_s = lease_timeout_s
        self.poll_interval_s = poll_interval_s
        self.max_worker_restarts = max_worker_restarts
        self.worker_command = worker_command
        self.stream_fsync = stream_fsync
        self._procs: list[subprocess.Popen] = []
        self._restarts = 0
        self._spawned = 0
        self._reissued = 0
        self._torn = 0

    # -- worker supervision -----------------------------------------------------

    def _spawn_worker(self) -> None:
        command = list(self.worker_command) if self.worker_command is not None \
            else [sys.executable, "-m", "repro.cli", "dist-build",
                  "--role", "worker", "--queue-dir", str(self.queue.root)]
        self._procs.append(subprocess.Popen(command, stdout=subprocess.DEVNULL,
                                            env=os.environ.copy()))
        self._spawned += 1

    def _check_workers(self) -> None:
        """Respawn dead local workers; raise when none can make progress."""
        if not self._procs:
            return  # multi-host mode: external workers, nothing to supervise
        alive = [proc for proc in self._procs if proc.poll() is None]
        dead = len(self._procs) - len(alive)
        self._procs = alive
        for _ in range(dead):
            if self._restarts >= self.max_worker_restarts:
                continue
            self._restarts += 1
            self._spawn_worker()
        if not self._procs:
            raise DistBuildError(
                "all local workers exited with work remaining "
                f"(restart budget {self.max_worker_restarts} exhausted)")

    def _stop_workers(self) -> None:
        for proc in self._procs:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        self._procs = []

    # -- the merge --------------------------------------------------------------

    def _await_result(self, window: QueuedWindow,
                      counters: perf.PerfCounters | None) -> DecodedWindowResult:
        """Block until ``window`` has a readable result; police the queue."""
        path = self.queue.result_path(window.window_id)
        waited = 0.0
        while True:
            if path.exists():
                payload = self.queue.read_result(window.window_id)
                if payload is not None:
                    if counters is not None and waited:
                        counters.add_stage("dist.wait", waited)
                    return decode_window_result(payload)
                # A torn result can only come from a non-conforming or
                # half-dead writer; drop it so the window is re-evaluated.
                try:
                    path.unlink()
                except OSError:
                    pass
                self._torn += 1
                LOG.warn("torn result dropped", window=window.window_id)
                obs_trace.event("dist.result_torn",
                                {"window": window.window_id})
                if counters is not None:
                    counters.count("dist.results_torn")
            reaped = self.queue.reap_stale_leases(self.lease_timeout_s)
            if reaped:
                self._reissued += len(reaped)
                LOG.warn("stale leases reaped; windows re-issued",
                         windows=",".join(reaped))
                obs_trace.event("dist.windows_reissued",
                                {"windows": ",".join(reaped)})
                if counters is not None:
                    counters.count("dist.windows_reissued", len(reaped))
            self._check_workers()
            time.sleep(self.poll_interval_s)
            waited += self.poll_interval_s

    def run(self) -> DistBuildResult:
        """Execute the build; returns once the output file is committed."""
        config = self.config
        # Tracing identity must be settled *before* the queue publishes
        # build.json — that file is how workers inherit the trace id and
        # parent span, which is what lets `langcrux trace` reassemble one
        # tree spanning the coordinator and every worker process.
        tracer = None
        root_span = None
        if config.trace_dir is not None:
            tracer = obs_trace.ensure(config.trace_dir,
                                      trace_id=config.trace_id)
            config.trace_id = tracer.trace_id
            root_span = tracer.start_span(
                "dist.build",
                {"countries": ",".join(config.countries),
                 "quota": config.sites_per_country,
                 "seed": config.seed, "workers": self.workers})
            config.trace_parent = root_span.span_id
            tracer.default_parent = root_span.span_id
        web, crux = build_web_for_config(config)
        specs = plan_selection_windows(config, crux)
        windows = self.queue.initialize(config, specs)
        by_country: dict[str, list[QueuedWindow]] = {
            country: [] for country in config.countries}
        for window in windows:
            by_country[window.spec.country_code].append(window)
        counters = perf.PerfCounters() if config.profile else None
        totals = _RunTotals()
        outcomes: dict[str, SelectionOutcome] = {}
        metrics: dict[str, ShardMetrics] = {}
        merged = 0
        merged_ids: set[str] = set()
        writer = StreamingDatasetWriter(self.output, fsync=self.stream_fsync)
        sink = RecordSink(writer, None)
        progress = {"windows_merged": 0, "records_streamed": 0,
                    "countries_done": 0}
        reporter = None
        if tracer is not None:
            reporter = StatusReporter(
                str(self.queue.root), "coordinator",
                lambda: {"trace": config.trace_id,
                         "windows_planned": len(windows),
                         "windows_reissued": self._reissued, **progress})
            reporter.start()
        try:
            for _ in range(self.workers):
                self._spawn_worker()
            for index, country in enumerate(config.countries):
                committer = RankOrderCommitter(config.sites_per_country,
                                               config.language_threshold,
                                               country_code=country)
                duration_s = 0.0
                committed = 0
                windows_merged = 0
                with obs_trace.span("merge", {"country": country}):
                    for window in by_country[country]:
                        if committer.filled:
                            break
                        decoded = self._await_result(window, counters)
                        merged += 1
                        merged_ids.add(window.window_id)
                        windows_merged += 1
                        duration_s += decoded.duration_s
                        totals.merge_transport(decoded.transport_metrics)
                        totals.merge_perf(decoded.perf_metrics)
                        accepted_lines: list[str] = []
                        for evaluation, line in zip(decoded.evaluations,
                                                    decoded.record_lines):
                            if committer.filled:
                                break
                            if committer.commit(evaluation) is not None:
                                # Workers serialize a record for exactly the
                                # candidates the committer accepts.
                                assert line is not None
                                accepted_lines.append(line)
                        sink.commit_serialized(country, accepted_lines)
                        committed += len(accepted_lines)
                        progress["windows_merged"] = merged
                        progress["records_streamed"] += len(accepted_lines)
                # Either the quota filled or the ranking is exhausted;
                # both mean workers should stop claiming this country.
                self.queue.mark_filled(country)
                sink.finish_country(country)
                outcomes[country] = committer.outcome
                metrics[country] = ShardMetrics(shard=country, index=index,
                                                duration_s=duration_s,
                                                records=committed,
                                                sub_shards=windows_merged)
                progress["countries_done"] = index + 1
            self.queue.mark_done()
            if counters is not None:
                counters.count("dist.windows_merged", merged)
            # Fold in speculative results the merge never consumed (windows
            # past a fill point that a worker evaluated before seeing the
            # marker), mirroring the single-host late-window accounting.
            for window in windows:
                if window.window_id in merged_ids:
                    continue
                payload = self.queue.read_result(window.window_id)
                if payload is not None:
                    late = decode_window_result(payload)
                    totals.merge_transport(late.transport_metrics)
                    totals.merge_perf(late.perf_metrics)
            with obs_trace.span("dataset.commit", {"path": str(self.output)}):
                streamed = writer.close()
        except BaseException:
            writer.abort()
            raise
        finally:
            self.queue.mark_done()  # even on failure: workers must exit
            self._stop_workers()
            if reporter is not None:
                reporter.stop()
            if tracer is not None:
                tracer.end_span(root_span)
                obs_trace.disable()
        if counters is not None:
            totals.merge_perf(counters)
        if totals.perf is not None:
            for name, value in perf.memory_gauges().items():
                totals.perf.gauge(name, value)
            if sink.first_record_s is not None:
                totals.perf.gauge("stream.first_record_s", sink.first_record_s)
            totals.perf.gauge("stream.buffer_peak_records", float(sink.buffer_peak))
        return DistBuildResult(
            output=self.output, streamed_records=streamed,
            selection_outcomes=outcomes, shard_metrics=metrics,
            windows_planned=len(windows), windows_merged=merged,
            windows_reissued=self._reissued, results_torn=self._torn,
            workers_spawned=self._spawned, worker_restarts=self._restarts,
            transport_metrics=totals.transport, perf_metrics=totals.perf,
            time_to_first_record_s=sink.first_record_s)


def dist_build(config: PipelineConfig, queue_dir: str | Path,
               output: str | Path, *, workers: int = 2,
               **kwargs) -> DistBuildResult:
    """Convenience wrapper: coordinate a build with ``workers`` local workers."""
    return Coordinator(config, queue_dir, output,
                       workers=workers, **kwargs).run()

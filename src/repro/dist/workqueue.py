"""The on-disk coordination protocol of a distributed crawl.

A *queue directory* — any directory every participant can reach (local
disk for ``--workers N``, a shared mount for multi-host) — is the only
channel between the coordinator and its workers.  Layout::

    queue-dir/
      build.json                 # serialized PipelineConfig + format version
      windows/window-00042.json  # one planned SelectionSubShard per file
      leases/window-00042.json   # claim marker: {worker, claimed_at}
      results/window-00042.json  # committed window result (atomic)
      markers/filled-<country>   # country quota filled; skip its windows
      markers/done               # run over; workers exit

Protocol rules, each load-bearing for crash safety:

* **Claims** are ``O_CREAT | O_EXCL`` creations of the lease file — the
  filesystem arbitrates racing workers.  The claim holder touches the
  lease file (``os.utime``) on a heartbeat; a lease whose mtime age
  exceeds the coordinator's timeout is *stale* (its worker was SIGKILLed
  or hung) and is reaped, which re-opens the window for claiming.
* **Results** are committed via temp-file + ``os.replace`` into the same
  directory, so a result file either exists completely or not at all;
  readers treat unparseable results (a torn write by a non-conforming
  writer, or partial disk) as absent and delete them.  Duplicate
  completions are harmless: window evaluation is pure, so both writers
  produce identical payloads and the second ``os.replace`` is a no-op in
  effect — this is what makes re-issued windows idempotent.
* **Markers** are empty files; creation is idempotent.  ``build.json`` is
  written *after* the window files, so a worker that sees it sees the
  whole plan.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from pathlib import Path

from repro.core.pipeline import PipelineConfig, SelectionSubShard

#: Bumped when the queue-dir layout or result payload shape changes;
#: participants refuse to join a queue speaking a different version.
QUEUE_FORMAT = 1

_WINDOW_PREFIX = "window-"

#: Config fields that identify a *trace*, not a build.  A restarted
#: coordinator resuming a crashed build allocates a fresh trace id, and
#: that must not read as "a different build" to :meth:`WorkQueue.initialize`
#: — the dataset bytes are a pure function of the non-trace fields.
TRACE_CONFIG_KEYS = ("trace_dir", "trace_id", "trace_parent")


def write_json_atomic(path: Path, payload: dict, *, fsync: bool = True) -> None:
    """Write ``payload`` as JSON so that ``path`` is never observed torn.

    The bytes go to a temp file in the destination directory first (same
    filesystem, so the final ``os.replace`` is atomic), optionally fsynced
    so a committed file cannot lose its tail to a crash.
    """
    descriptor, partial = tempfile.mkstemp(dir=path.parent,
                                           prefix=f".{path.name}.",
                                           suffix=".partial")
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, ensure_ascii=False, separators=(",", ":"))
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(partial, path)
    except BaseException:
        try:
            os.unlink(partial)
        except OSError:
            pass
        raise


def read_json(path: Path) -> dict | None:
    """Read a JSON object from ``path``; ``None`` when missing or torn."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        return None
    return payload if isinstance(payload, dict) else None


def config_to_dict(config: PipelineConfig) -> dict:
    """Serialize a :class:`PipelineConfig` for ``build.json``.

    Normalized to JSON-native types (the countries tuple becomes a list)
    so a payload compares equal before and after the disk round trip.
    """
    payload = dataclasses.asdict(config)
    payload["countries"] = list(payload["countries"])
    return payload


def config_from_dict(payload: dict) -> PipelineConfig:
    """Rebuild a :class:`PipelineConfig` from :func:`config_to_dict` output.

    Unknown keys are ignored so a queue written by a slightly newer build
    (new config knob with a default) still loads; the format version guards
    real incompatibilities.
    """
    names = {field.name for field in dataclasses.fields(PipelineConfig)}
    kwargs = {key: value for key, value in payload.items() if key in names}
    if "countries" in kwargs:
        kwargs["countries"] = tuple(kwargs["countries"])
    return PipelineConfig(**kwargs)


@dataclasses.dataclass(frozen=True)
class QueuedWindow:
    """One planned window with its queue identity.

    ``index`` is the window's position in :func:`plan_selection_windows`
    order — country-major, rank-ascending — so sorting window files by name
    recovers the exact merge order on every participant.
    """

    index: int
    spec: SelectionSubShard

    @property
    def window_id(self) -> str:
        return f"{_WINDOW_PREFIX}{self.index:05d}"

    def to_dict(self) -> dict:
        return {"index": self.index, **dataclasses.asdict(self.spec)}

    @classmethod
    def from_dict(cls, payload: dict) -> "QueuedWindow":
        return cls(index=payload["index"],
                   spec=SelectionSubShard(country_code=payload["country_code"],
                                          chunk_index=payload["chunk_index"],
                                          start=payload["start"],
                                          stop=payload["stop"]))


@dataclasses.dataclass
class Lease:
    """A held claim on one window (see :meth:`WorkQueue.try_claim`)."""

    path: Path
    worker: str

    def heartbeat(self) -> bool:
        """Refresh the lease's mtime; ``False`` if it was reaped meanwhile."""
        try:
            os.utime(self.path)
        except OSError:
            return False
        return True

    def release(self) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass


class WorkQueue:
    """One participant's handle on a queue directory.

    Stateless apart from the resolved paths: every query goes to the
    filesystem, so any number of processes (coordinator included) can hold
    a handle on the same directory concurrently.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.build_path = self.root / "build.json"
        self.windows_dir = self.root / "windows"
        self.leases_dir = self.root / "leases"
        self.results_dir = self.root / "results"
        self.markers_dir = self.root / "markers"

    # -- coordinator side -------------------------------------------------------

    def initialize(self, config: PipelineConfig,
                   specs: list[SelectionSubShard]) -> list[QueuedWindow]:
        """Lay out the queue for a build and publish its plan.

        Window files land first and ``build.json`` last, so its existence
        signals a complete plan.  Re-initializing an existing queue with
        the *same* config is allowed and keeps prior results — results are
        pure functions of (config, window), so a crashed coordinator's
        results are warm work, not hazards.  A different config raises:
        stale results would silently corrupt the merge.
        """
        def _comparable(payload: dict) -> dict:
            return {key: value for key, value in payload.items()
                    if key not in TRACE_CONFIG_KEYS}

        existing = read_json(self.build_path)
        if existing is not None:
            if (existing.get("format") != QUEUE_FORMAT
                    or _comparable(existing.get("config", {}))
                    != _comparable(config_to_dict(config))):
                raise ValueError(
                    f"queue dir {self.root} already holds a different build; "
                    "use a fresh --queue-dir (or delete this one)")
        for directory in (self.root, self.windows_dir, self.leases_dir,
                          self.results_dir, self.markers_dir):
            directory.mkdir(parents=True, exist_ok=True)
        # A leftover done marker from a previous (crashed or finished) run
        # of the same config would make fresh workers exit immediately.
        try:
            (self.markers_dir / "done").unlink()
        except OSError:
            pass
        windows = [QueuedWindow(index=index, spec=spec)
                   for index, spec in enumerate(specs)]
        for window in windows:
            write_json_atomic(self.windows_dir / f"{window.window_id}.json",
                              window.to_dict(), fsync=False)
        write_json_atomic(self.build_path,
                          {"format": QUEUE_FORMAT, "config": config_to_dict(config)})
        return windows

    def reap_stale_leases(self, timeout_s: float) -> list[str]:
        """Remove leases whose heartbeat stopped; returns their window ids.

        A reaped lease re-opens its window for claiming — the recovery
        path for SIGKILLed/hung workers.  Safe against the races inherent
        in the protocol: if the original worker was merely slow and still
        commits its result, the duplicate evaluation is byte-identical
        (window purity) and result commits are idempotent.
        """
        now = time.time()
        reaped: list[str] = []
        try:
            leases = sorted(self.leases_dir.iterdir())
        except OSError:
            return reaped
        for path in leases:
            try:
                age = now - path.stat().st_mtime
            except OSError:  # released/reaped concurrently
                continue
            if age <= timeout_s:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            reaped.append(path.stem)
        return reaped

    def mark_filled(self, country_code: str) -> None:
        (self.markers_dir / f"filled-{country_code}").touch()

    def mark_done(self) -> None:
        self.markers_dir.mkdir(parents=True, exist_ok=True)
        (self.markers_dir / "done").touch()

    # -- worker side ------------------------------------------------------------

    def wait_for_build(self, *, timeout_s: float = 60.0,
                       poll_interval_s: float = 0.05) -> PipelineConfig:
        """Block until ``build.json`` appears; returns the build's config."""
        deadline = time.monotonic() + timeout_s
        while True:
            payload = read_json(self.build_path)
            if payload is not None:
                if payload.get("format") != QUEUE_FORMAT:
                    raise ValueError(
                        f"queue format {payload.get('format')!r} != {QUEUE_FORMAT}")
                return config_from_dict(payload.get("config", {}))
            if time.monotonic() >= deadline:
                raise TimeoutError(f"no build.json in {self.root} "
                                   f"after {timeout_s:.0f}s")
            time.sleep(poll_interval_s)

    def load_windows(self) -> list[QueuedWindow]:
        """The planned windows, in plan (merge) order."""
        windows = []
        for path in sorted(self.windows_dir.glob(f"{_WINDOW_PREFIX}*.json")):
            payload = read_json(path)
            if payload is not None:
                windows.append(QueuedWindow.from_dict(payload))
        return windows

    def try_claim(self, window_id: str, worker: str) -> Lease | None:
        """Attempt to claim a window; ``None`` if someone else holds it.

        ``O_CREAT | O_EXCL`` makes the filesystem the arbiter: exactly one
        of any number of racing claimants wins.
        """
        path = self.lease_path(window_id)
        try:
            descriptor = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return None
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump({"worker": worker, "claimed_at": time.time()}, handle)
        return Lease(path=path, worker=worker)

    def commit_result(self, window_id: str, payload: dict) -> None:
        """Atomically publish a window's result (idempotent, crash-safe)."""
        write_json_atomic(self.result_path(window_id), payload)

    # -- shared queries ---------------------------------------------------------

    def lease_path(self, window_id: str) -> Path:
        return self.leases_dir / f"{window_id}.json"

    def result_path(self, window_id: str) -> Path:
        return self.results_dir / f"{window_id}.json"

    def read_result(self, window_id: str) -> dict | None:
        """The committed result payload, or ``None`` when absent/torn."""
        return read_json(self.result_path(window_id))

    def filled_countries(self) -> set[str]:
        try:
            names = [path.name for path in self.markers_dir.iterdir()]
        except OSError:
            return set()
        return {name[len("filled-"):] for name in names
                if name.startswith("filled-")}

    def is_done(self) -> bool:
        return (self.markers_dir / "done").exists()

"""Distributed crawl coordination (ROADMAP item 1).

One host's process pool tops out long before the paper's origin counts do;
this package scales the sub-sharded selection walk across *independent
worker processes* — on one machine today, on many machines tomorrow —
coordinated through nothing but a shared directory:

* :class:`~repro.dist.workqueue.WorkQueue` — the on-disk protocol: planned
  window specs, ``O_CREAT|O_EXCL`` lease files with mtime heartbeats,
  idempotent window-result files committed via temp-file + ``os.replace``,
  and marker files (per-country quota-filled, run done).
* :class:`~repro.dist.worker.CrawlWorker` — claims windows, executes them
  through the existing pure :func:`~repro.core.pipeline.execute_selection_subshard`,
  and commits serialized results.  Workers share one crawl-cache directory,
  so a re-issued window replays its fetches from disk for free.
* :class:`~repro.dist.coordinator.Coordinator` — plans the deterministic
  window split (:func:`~repro.core.pipeline.plan_selection_windows`),
  spawns/monitors local workers, re-issues windows whose leases go stale
  (a SIGKILLed worker's heartbeat stops), and merges results in strict
  rank order through the same per-country
  :class:`~repro.core.site_selection.RankOrderCommitter` + sectioned
  :class:`~repro.core.dataset.StreamingDatasetWriter` path a single-host
  build uses — so the final JSONL is byte-identical to the sequential
  single-host build, for any worker count and any crash/retry history.
"""

from repro.dist.coordinator import Coordinator, DistBuildError, DistBuildResult, dist_build
from repro.dist.worker import CrawlWorker
from repro.dist.workqueue import WorkQueue

__all__ = [
    "Coordinator",
    "CrawlWorker",
    "DistBuildError",
    "DistBuildResult",
    "WorkQueue",
    "dist_build",
]

"""The distributed crawl worker.

A worker is a plain process pointed at a queue directory (``langcrux
dist-build --role worker --queue-dir DIR``).  It loads the build config,
rebuilds the synthetic web deterministically in-process (exactly like a
process-pool worker — the web is never shipped), then loops: find the
first unclaimed, unfinished window of an unfilled country, claim it,
evaluate it through the pure
:func:`~repro.core.pipeline.execute_selection_subshard`, and commit the
encoded result.  It exits when the coordinator drops the done marker.

Crash behaviour is the whole point: while a window is being evaluated a
daemon heartbeat thread refreshes the lease's mtime, so a SIGKILLed
worker's lease goes stale within the coordinator's timeout and the window
is re-issued.  Because every participant shares one crawl-cache
directory, the replacement worker replays the dead worker's completed
fetches from disk — only the un-fetched remainder costs wire time — and
the re-evaluated result is byte-identical (window purity), keeping
duplicate completions harmless.

Workers force ``cache_fsync="entry"``: a window result must not claim
fetches whose manifest lines a crash could still lose.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, replace

from repro import perf
from repro.core.pipeline import (
    PipelineConfig,
    build_web_for_config,
    execute_selection_subshard,
)
from repro.crawler.metrics import TransportMetrics
from repro.dist.results import encode_window_result
from repro.dist.workqueue import Lease, QueuedWindow, WorkQueue
from repro.obs import trace as obs_trace
from repro.obs.log import get_logger
from repro.obs.status import StatusReporter

LOG = get_logger("dist.worker")


@dataclass
class WorkerStats:
    """What one worker did, for the CLI's exit line and the tests."""

    worker: str
    windows_executed: int = 0
    windows_skipped_filled: int = 0
    claim_conflicts: int = 0
    idle_s: float = 0.0


class _HeartbeatThread(threading.Thread):
    """Refreshes a lease's mtime until stopped (daemon: dies with the worker,
    which is exactly what lets the coordinator detect a SIGKILL)."""

    def __init__(self, lease: Lease, interval_s: float) -> None:
        super().__init__(daemon=True)
        self._lease = lease
        self._interval_s = interval_s
        self._stopped = threading.Event()

    def run(self) -> None:
        while not self._stopped.wait(self._interval_s):
            self._lease.heartbeat()

    def stop(self) -> None:
        self._stopped.set()
        self.join()


class CrawlWorker:
    """Claims and evaluates windows from a queue directory until done.

    Args:
        queue_dir: The shared queue directory.
        worker_id: Stable identity written into leases and results
            (defaults to ``host:pid``).
        heartbeat_interval_s: Lease mtime refresh period; must be well
            under the coordinator's lease timeout.
        poll_interval_s: Sleep between scans when no window is claimable.
        build_timeout_s: How long to wait for ``build.json`` to appear.
    """

    def __init__(self, queue_dir: str, *, worker_id: str | None = None,
                 heartbeat_interval_s: float = 0.5,
                 poll_interval_s: float = 0.05,
                 build_timeout_s: float = 60.0) -> None:
        self.queue = WorkQueue(queue_dir)
        self.worker_id = worker_id or f"{os.uname().nodename}:{os.getpid()}"
        self.heartbeat_interval_s = heartbeat_interval_s
        self.poll_interval_s = poll_interval_s
        self.build_timeout_s = build_timeout_s

    def run(self) -> WorkerStats:
        """The claim→evaluate→commit loop; returns on the done marker."""
        stats = WorkerStats(worker=self.worker_id)
        config = self.queue.wait_for_build(timeout_s=self.build_timeout_s)
        # A window declared complete must not be able to lose cache
        # manifest lines to a crash: later windows (possibly on other
        # workers) rely on replaying its fetches.
        config = replace(config, cache_fsync="entry")
        windows = self.queue.load_windows()
        web_and_crux = build_web_for_config(config)
        # The coordinator stamped the build's trace identity into
        # build.json; joining it here is what makes `langcrux trace`
        # see one tree spanning every process.
        tracer = None
        session_span = None
        if config.trace_dir is not None:
            tracer = obs_trace.ensure(config.trace_dir,
                                      trace_id=config.trace_id,
                                      parent_span_id=config.trace_parent)
            session_span = tracer.start_span("dist.worker",
                                             {"worker": self.worker_id})
            tracer.default_parent = session_span.span_id
        totals = TransportMetrics()

        def _snapshot() -> dict:
            payload = {
                "windows_executed": stats.windows_executed,
                "claim_conflicts": stats.claim_conflicts,
                "idle_s": round(stats.idle_s, 2),
                "network_requests": totals.network_requests,
            }
            looked = totals.cache_hits + totals.cache_misses
            if looked:
                payload["cache_hit_rate"] = round(totals.cache_hits / looked, 3)
            if config.trace_id is not None:
                payload["trace"] = config.trace_id
            return payload

        reporter = StatusReporter(str(self.queue.root), "worker", _snapshot,
                                  ident=self.worker_id)
        reporter.start()
        LOG.info("worker started", worker=self.worker_id,
                 queue=str(self.queue.root))
        try:
            while not self.queue.is_done():
                claimed = self._claim_next(windows, stats)
                if claimed is None:
                    stats.idle_s += self.poll_interval_s
                    time.sleep(self.poll_interval_s)
                    continue
                window, lease = claimed
                self._execute(config, window, lease, web_and_crux, totals)
                stats.windows_executed += 1
        finally:
            reporter.stop(final=_snapshot())
            if tracer is not None:
                tracer.end_span(session_span)
                obs_trace.disable()
        return stats

    def _claim_next(self, windows: list[QueuedWindow],
                    stats: WorkerStats) -> tuple[QueuedWindow, Lease] | None:
        """The first claimable window in plan order, claimed — or ``None``.

        Plan order keeps workers on the merge frontier (the coordinator
        consumes results in exactly this order), which minimises the time
        results sit speculative on disk.
        """
        filled = self.queue.filled_countries()
        for window in windows:
            if window.spec.country_code in filled:
                stats.windows_skipped_filled += 1
                continue
            if self.queue.result_path(window.window_id).exists():
                continue
            if self.queue.lease_path(window.window_id).exists():
                continue
            lease = self.queue.try_claim(window.window_id, self.worker_id)
            if lease is None:  # lost the claim race
                stats.claim_conflicts += 1
                continue
            return window, lease
        return None

    def _execute(self, config: PipelineConfig, window: QueuedWindow,
                 lease: Lease, web_and_crux,
                 totals: TransportMetrics | None = None) -> None:
        heartbeat = _HeartbeatThread(lease, self.heartbeat_interval_s)
        heartbeat.start()
        try:
            started = time.perf_counter()
            result = execute_selection_subshard(config, window.spec,
                                                web_and_crux=web_and_crux)
            duration_s = time.perf_counter() - started
            if totals is not None and result.transport_metrics is not None:
                totals.merge(result.transport_metrics)
            LOG.debug("window executed", window=window.window_id,
                      country=window.spec.country_code,
                      duration_s=round(duration_s, 3))
            if result.perf_metrics is not None:
                # Ship this worker's memory peaks home with the counters;
                # the coordinator's gauge merge keeps the fleet-wide max.
                for name, value in perf.memory_gauges().items():
                    result.perf_metrics.gauge(name, value)
            self.queue.commit_result(
                window.window_id,
                encode_window_result(result, worker=self.worker_id,
                                     duration_s=duration_s))
        finally:
            heartbeat.stop()
            lease.release()

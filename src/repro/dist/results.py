"""Window-result payloads: what a worker ships and a coordinator merges.

A result file carries everything the coordinator's rank-ordered merge
needs and nothing it does not:

* per-candidate evaluation facts (entry, native share, fetch verdict) and
  the *slimmed* crawl record (page HTML stripped — the committer never
  reads it, and the resulting :class:`SelectedSite`\\ s match what a
  single-host streaming run retains after
  :func:`~repro.core.pipeline.slim_selection_outcome`);
* for every would-qualify candidate, the site record **pre-serialized to
  its exact JSONL line** (``json.dumps(record.to_dict(),
  ensure_ascii=False)`` — byte-identical to what
  :meth:`~repro.core.dataset.StreamingDatasetWriter.write` emits), so the
  coordinator streams accepted lines verbatim and the distributed file is
  byte-identical to the single-host one without ever rebuilding a
  :class:`~repro.core.dataset.SiteRecord`;
* the window's transport metrics and (under ``profile=True``) perf
  counters, with the worker's peak-memory gauges folded in so the
  coordinator's ``max``-merge surfaces the hungriest worker.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

from repro import perf
from repro.core.pipeline import SelectionSubShard, SelectionSubShardResult
from repro.core.site_selection import CandidateEvaluation
from repro.crawler.metrics import TransportMetrics
from repro.crawler.records import CrawlRecord
from repro.webgen.crux import CruxEntry


def encode_window_result(result: SelectionSubShardResult, *, worker: str,
                         duration_s: float) -> dict:
    """Serialize one window's evaluation for its result file."""
    evaluations = []
    for evaluation, record in zip(result.evaluations, result.records):
        crawl = evaluation.record
        if any(page.html for page in crawl.pages):
            crawl = replace(crawl, pages=[replace(page, html="")
                                          for page in crawl.pages])
        evaluations.append({
            "entry": {"origin": evaluation.entry.origin,
                      "rank": evaluation.entry.rank,
                      "country_code": evaluation.entry.country_code},
            "native_share": evaluation.native_share,
            "fetch_succeeded": bool(evaluation.fetch_succeeded),
            "crawl": crawl.to_dict(),
            "record_line": (json.dumps(record.to_dict(), ensure_ascii=False)
                            if record is not None else None),
        })
    transport = result.transport_metrics
    counters = result.perf_metrics
    return {
        "window": {"country_code": result.spec.country_code,
                   "chunk_index": result.spec.chunk_index,
                   "start": result.spec.start, "stop": result.spec.stop},
        "worker": worker,
        "duration_s": duration_s,
        "evaluations": evaluations,
        "transport_metrics": transport.as_dict() if transport is not None else None,
        "perf_metrics": counters.as_dict() if counters is not None else None,
        # The window span's identity (trace/span/parent ids) when the
        # worker traced the evaluation — the coordinator and `langcrux
        # trace` use it to join worker spans into the build's tree.
        "trace_span": result.trace_span,
    }


@dataclass
class DecodedWindowResult:
    """A result file rebuilt into merge-ready objects."""

    spec: SelectionSubShard
    worker: str
    duration_s: float
    evaluations: list[CandidateEvaluation]
    record_lines: list[str | None]
    transport_metrics: TransportMetrics | None
    perf_metrics: perf.PerfCounters | None
    trace_span: dict | None = None


def decode_window_result(payload: dict) -> DecodedWindowResult:
    """Rebuild a :func:`encode_window_result` payload."""
    window = payload["window"]
    spec = SelectionSubShard(country_code=window["country_code"],
                             chunk_index=window["chunk_index"],
                             start=window["start"], stop=window["stop"])
    evaluations: list[CandidateEvaluation] = []
    record_lines: list[str | None] = []
    for item in payload["evaluations"]:
        entry = CruxEntry(origin=item["entry"]["origin"],
                          rank=item["entry"]["rank"],
                          country_code=item["entry"]["country_code"])
        evaluations.append(CandidateEvaluation(
            entry=entry,
            record=CrawlRecord.from_dict(item["crawl"]),
            native_share=item["native_share"],
            fetch_succeeded=item["fetch_succeeded"]))
        record_lines.append(item["record_line"])
    transport = payload.get("transport_metrics")
    transport_metrics = None
    if transport is not None:
        transport_metrics = TransportMetrics()
        for name, value in transport.items():
            if hasattr(transport_metrics, name):
                setattr(transport_metrics, name, value)
    counters = payload.get("perf_metrics")
    return DecodedWindowResult(
        spec=spec,
        worker=payload.get("worker", ""),
        duration_s=payload.get("duration_s", 0.0),
        evaluations=evaluations,
        record_lines=record_lines,
        transport_metrics=transport_metrics,
        perf_metrics=(perf.PerfCounters.from_dict(counters)
                      if counters is not None else None),
        trace_span=payload.get("trace_span"),
    )

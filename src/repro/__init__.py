"""LangCrUX + Kizuki reproduction library.

This package reproduces the measurement pipeline of *"Not All Visitors are
Bilingual: A Measurement Study of the Multilingual Web from an Accessibility
Perspective"* (IMC 2025).  It contains:

``repro.langid``
    Unicode-script and n-gram based language identification, the paper's
    primary language-detection mechanism.
``repro.html``
    An HTML parser, DOM model, visible-text extraction and accessible-name
    computation that stand in for the Puppeteer/Chromium rendering step.
``repro.webgen``
    A deterministic synthetic multilingual web: per-country site generators,
    a CrUX-style ranking table and geo-aware origin servers.  This substitutes
    for the live web, which is unavailable in the reproduction environment.
``repro.crawler``
    The crawling substrate: simulated HTTP, VPN vantage points, a URL
    frontier, robots handling and the LangCrUX crawler itself.
``repro.audit``
    A Lighthouse/Axe-core style accessibility audit engine implementing the
    twelve language-sensitive rules and Lighthouse-like weighted scoring.
``repro.core``
    The paper's contribution: LangCrUX dataset construction, accessibility
    text extraction and filtering, language-mix and mismatch analyses, and
    the Kizuki language-aware audit extension.
``repro.stats``
    Small statistics helpers (summaries, CDFs, histograms) shared by the
    analyses and benchmark harnesses.

The top-level namespace re-exports the most frequently used entry points so
that ``import repro`` is enough for the common workflows shown in
``examples/``.
"""

from __future__ import annotations

from repro.core.dataset import LangCrUXDataset, SiteRecord
from repro.core.pipeline import LangCrUXPipeline, PipelineConfig
from repro.core.kizuki import Kizuki, KizukiConfig
from repro.langid.detector import ScriptDetector, detect_language_mix
from repro.langid.classify import TextLanguageClass, classify_text_language

__all__ = [
    "LangCrUXDataset",
    "SiteRecord",
    "LangCrUXPipeline",
    "PipelineConfig",
    "Kizuki",
    "KizukiConfig",
    "ScriptDetector",
    "detect_language_mix",
    "TextLanguageClass",
    "classify_text_language",
    "__version__",
]

__version__ = "1.0.0"

"""In-memory analytics aggregates over a built dataset.

The serving layer must answer ``analyze`` / ``mismatch`` / ``kizuki`` /
explorer queries without re-reading or re-scanning the dataset per request.
:class:`DatasetAggregates` therefore streams the JSONL exactly once at load
time, folding every record into the incremental aggregation cores factored
out of :mod:`repro.core`:

* :class:`~repro.core.analysis.ElementStatsAccumulator` — Table 2 rows;
* :class:`~repro.core.analysis.DiscardCounter` — per-country Appendix H
  filter rates (Figure 3);
* :class:`~repro.core.language_mix.LanguageMixAccumulator` — per-country
  native/English/mixed rollups (Figure 4);
* :class:`~repro.core.mismatch.MismatchAccumulator` — Figure 5/8 points and
  Table 5 examples;
* :class:`~repro.core.kizuki.RescoreAccumulator` — Figure 6 re-scoring for
  every country, queryable per request for any country combination;

plus the per-site explorer rows of :func:`repro.report.export.site_summary`.
Each payload builder then assembles its JSON purely from these rollups, so a
request costs serialization, never aggregation.

A SHA-256 fingerprint over the records' canonical JSONL bytes is maintained
during the same pass.  It identifies the dataset *content* (formatting and
blank lines do not matter) and keys the response cache and the strong ETags:
reloading a changed file yields a new fingerprint, which invalidates every
cached response at once.

The payloads are shared verbatim with the CLI's ``--json`` reports
(``langcrux analyze/mismatch/kizuki --json``) and mirror ``langcrux export``
byte-for-byte, which is what the parity suite pins.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.core.analysis import DiscardCounter, ElementStatsAccumulator
from repro.core.dataset import SiteRecord
from repro.core.kizuki import RescoreAccumulator
from repro.core.language_mix import LanguageMixAccumulator
from repro.core.mismatch import MismatchAccumulator
from repro.langid.languages import get_pair
from repro.report.export import site_summary

#: Default country selection of the ``kizuki`` endpoint and CLI subcommand.
DEFAULT_KIZUKI_COUNTRIES: tuple[str, ...] = ("bd", "th")


class DatasetLoadError(Exception):
    """A dataset file could not be loaded into aggregates.

    Raised with a message naming the file and, for corrupt records, the line
    number — the serving layer's contract is that a truncated or damaged
    shard surfaces a clear error instead of a half-loaded dataset.
    """


def render_json(payload: Any) -> str:
    """Canonical JSON serialization shared by the API and the CLI reports.

    One serializer (UTF-8 text, two-space indent, no ASCII escaping — the
    same settings as :func:`repro.report.export.write_dataset_summary`) is
    what makes "byte-identical to the CLI report" a testable property.
    """
    return json.dumps(payload, ensure_ascii=False, indent=2)


class DatasetAggregates:
    """Indexed in-memory rollups over one built dataset (see module docs)."""

    def __init__(self, *, source: str | None = None) -> None:
        self.source = source
        self._digest = hashlib.sha256()
        self._records = 0
        self._skipped = 0
        self._elements = ElementStatsAccumulator()
        self._discards: dict[str, DiscardCounter] = {}
        self._mixes: dict[str, LanguageMixAccumulator] = {}
        self._informative_counts: dict[str, int] = {}
        self._mismatch = MismatchAccumulator()
        self._rescore = RescoreAccumulator()
        self._languages: dict[str, str] = {}
        self._country_counts: dict[str, int] = {}
        self._site_rows: list[dict[str, Any]] = []
        self._sites_by_domain: dict[str, dict[str, Any]] = {}

    # -- loading ---------------------------------------------------------------

    @classmethod
    def load(cls, path: str | Path, *, skip_corrupt: bool = False) -> "DatasetAggregates":
        """Stream a JSONL dataset into aggregates in a single pass.

        Args:
            path: The dataset file written by ``langcrux build``.
            skip_corrupt: Skip undecodable/malformed lines (counting them in
                :attr:`skipped_records`) instead of raising — the salvage
                path for the intact prefix of a torn partial file, mirroring
                ``LangCrUXDataset.load_jsonl(skip_corrupt=True)``.

        Raises:
            DatasetLoadError: When the file cannot be opened, or a record
                line is corrupt and ``skip_corrupt`` is false.
        """
        path = Path(path)
        aggregates = cls(source=str(path))
        try:
            handle = path.open("r", encoding="utf-8")
        except OSError as exc:
            raise DatasetLoadError(f"cannot open dataset {path}: {exc}") from exc
        with handle:
            for line_number, line in enumerate(handle, start=1):
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    payload = json.loads(stripped)
                    if not isinstance(payload, dict):
                        raise ValueError("record line is not a JSON object")
                    record = SiteRecord.from_dict(payload)
                except (json.JSONDecodeError, TypeError, ValueError) as exc:
                    if skip_corrupt:
                        aggregates._skipped += 1
                        continue
                    raise DatasetLoadError(
                        f"corrupt dataset record at {path}:{line_number}: {exc}") from exc
                aggregates.add(record)
        return aggregates

    @classmethod
    def from_records(cls, records: Iterable[SiteRecord], *,
                     source: str | None = None) -> "DatasetAggregates":
        """Build aggregates from in-memory records (tests, pipelines).

        The fingerprint is computed over the records' canonical JSONL lines,
        so it equals :meth:`load` of a file ``save_jsonl`` wrote from the
        same records.
        """
        aggregates = cls(source=source)
        for record in records:
            aggregates.add(record)
        return aggregates

    def add(self, record: SiteRecord) -> None:
        """Fold one record into every rollup (and the content fingerprint)."""
        line = json.dumps(record.to_dict(), ensure_ascii=False)
        self._digest.update(line.encode("utf-8"))
        self._digest.update(b"\n")
        self._records += 1
        country = record.country_code
        self._country_counts[country] = self._country_counts.get(country, 0) + 1
        self._languages.setdefault(country, record.language_code)
        self._elements.add(record)
        self._discards.setdefault(country, DiscardCounter()).add_many(
            record.accessibility_texts())
        informative = record.informative_texts()
        self._informative_counts[country] = (
            self._informative_counts.get(country, 0) + len(informative))
        self._mixes.setdefault(
            country, LanguageMixAccumulator(record.language_code)).add_many(informative)
        self._mismatch.add(record)
        self._rescore.add(record)
        row = site_summary(record)
        self._site_rows.append(row)
        self._sites_by_domain[row["domain"]] = row

    # -- identity ---------------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSONL content accumulated so far."""
        return self._digest.hexdigest()

    @property
    def site_count(self) -> int:
        return self._records

    @property
    def skipped_records(self) -> int:
        """Corrupt lines skipped at load time (``skip_corrupt=True`` only)."""
        return self._skipped

    def countries(self) -> tuple[str, ...]:
        return tuple(sorted(self._country_counts))

    # -- payload builders --------------------------------------------------------

    def analyze_payload(self) -> dict[str, Any]:
        """The ``langcrux analyze`` report as a JSON document.

        Element statistics (Table 2), per-country uninformative-text rates
        and per-country language mixes of informative accessibility texts —
        the same numbers the text report prints.
        """
        mix_by_country: dict[str, dict[str, float]] = {}
        for country in self.countries():
            if not self._informative_counts.get(country):
                continue
            mix_by_country[country] = self._mixes[country].summary().proportions()
        return {
            "sites": self._records,
            "countries": list(self.countries()),
            "element_statistics": {
                element_id: row.as_dict()
                for element_id, row in self._elements.rows().items()
            },
            "uninformative_rate_by_country": {
                country: self._discards[country].discard_rate()
                for country in self.countries()
            },
            "language_mix_by_country": mix_by_country,
        }

    def mismatch_payload(self, *, examples: int = 5,
                         threshold_pct: float = 10.0) -> dict[str, Any]:
        """The ``langcrux mismatch`` report as a JSON document."""
        return {
            "threshold_pct": threshold_pct,
            "low_native_fraction_by_country":
                self._mismatch.summary(threshold_pct=threshold_pct),
            "examples": [
                {
                    "domain": example.domain,
                    "country": example.country_code,
                    "visible_native_pct": example.visible_native_pct,
                    "accessibility_native_pct": example.accessibility_native_pct,
                    "sample_alt_texts": list(example.sample_alt_texts),
                }
                for example in self._mismatch.examples(limit=examples)
            ],
        }

    def kizuki_payload(self, countries: Sequence[str] = DEFAULT_KIZUKI_COUNTRIES
                       ) -> dict[str, Any]:
        """The ``langcrux kizuki`` report for ``countries`` as a JSON document."""
        summary = self._rescore.summary(tuple(countries))
        return {
            "countries": list(countries),
            "sites": summary.sites,
            "score_above_90": {
                "original": summary.fraction_above(90, new=False),
                "kizuki": summary.fraction_above(90, new=True),
            },
            "score_perfect": {
                "original": summary.fraction_perfect(new=False),
                "kizuki": summary.fraction_perfect(new=True),
            },
        }

    def country_payload(self, country_code: str) -> dict[str, Any]:
        """One country's explorer aggregates.

        Field-for-field the shape of :func:`repro.report.export.country_summary`
        — the parity suite pins the full explorer document byte-identical to
        ``langcrux export``.
        """
        if self._languages.get(country_code) and self._informative_counts.get(country_code):
            mix = self._mixes[country_code].summary().proportions()
        else:
            mix = {"native": 0.0, "english": 0.0, "mixed": 0.0}
        pair = get_pair(country_code)
        discards = self._discards.get(country_code)
        return {
            "country": country_code,
            "country_name": pair.country_name,
            "language": pair.language.code,
            "language_name": pair.language.name,
            "sites": self._country_counts.get(country_code, 0),
            "informative_text_language_mix": mix,
            "uninformative_text_rate": discards.discard_rate() if discards else 0.0,
            "low_native_accessibility_fraction":
                self._mismatch.low_native_fraction(country_code),
        }

    def explorer_payload(self, *, include_sites: bool = True) -> dict[str, Any]:
        """The full explorer document (``langcrux export``'s JSON)."""
        payload: dict[str, Any] = {
            "schema_version": 1,
            "site_count": self._records,
            "countries": [self.country_payload(country) for country in self.countries()],
            "element_statistics": {
                element_id: row.as_dict()
                for element_id, row in self._elements.rows().items() if row.sites
            },
        }
        if include_sites:
            payload["sites"] = list(self._site_rows)
        return payload

    def sites_payload(self) -> dict[str, Any]:
        """All per-site explorer rows."""
        return {"site_count": self._records, "sites": list(self._site_rows)}

    def site_payload(self, domain: str) -> dict[str, Any] | None:
        """One site's explorer row, or ``None`` when the domain is unknown."""
        return self._sites_by_domain.get(domain)

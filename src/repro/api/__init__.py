"""The ``langcrux api`` serving layer.

A built dataset is the expensive artifact; this package makes it cheap to
query.  :class:`~repro.api.aggregates.DatasetAggregates` streams a dataset's
JSONL once into indexed in-memory rollups (per-country, per-rule,
per-language) built on the incremental aggregation cores of
:mod:`repro.core`, and :class:`~repro.api.server.AnalyticsServer` serves
``analyze`` / ``mismatch`` / ``kizuki`` / explorer queries over them as JSON
endpoints — with response caching keyed on (endpoint, params, dataset
fingerprint), strong ETags with ``If-None-Match`` → 304 revalidation, and
bounded worker concurrency.  The JSON bodies are byte-identical to the CLI's
``--json`` reports and to ``langcrux export``, pinned by the service-level
test suite.
"""

from repro.api.aggregates import DatasetAggregates, DatasetLoadError, render_json
from repro.api.cache import CachedResponse, ResponseCache, etag_matches, make_etag
from repro.api.server import AnalyticsServer, AnalyticsService, ApiError

__all__ = [
    "AnalyticsServer",
    "AnalyticsService",
    "ApiError",
    "CachedResponse",
    "DatasetAggregates",
    "DatasetLoadError",
    "ResponseCache",
    "etag_matches",
    "make_etag",
    "render_json",
]

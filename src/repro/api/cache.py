"""Response caching and ETags for the analytics API.

The crawl side of the repo caches *requests* (the on-disk
:class:`~repro.crawler.transport.CachingTransport`); the serving side applies
the same pattern in reverse to *responses*: a bounded LRU of rendered JSON
bodies keyed on ``(endpoint, params, dataset fingerprint)``.  Keys embed the
dataset fingerprint, so a reload of a changed file can never serve stale
bytes — every old entry simply stops being reachable and ages out of the
LRU.

ETags are strong and content-addressed (a SHA-256 prefix of the body), which
makes ``If-None-Match`` revalidation exact: equal bytes, equal tag.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Mapping


def make_etag(body: bytes) -> str:
    """Strong, content-addressed ETag for a response body (quoted form)."""
    return '"' + hashlib.sha256(body).hexdigest()[:32] + '"'


def etag_matches(if_none_match: str, etag: str) -> bool:
    """Whether an ``If-None-Match`` header value matches ``etag``.

    Handles the ``*`` wildcard and comma-separated candidate lists; weak
    validators (``W/"..."``) compare by their opaque tag, the weak comparison
    RFC 9110 prescribes for ``If-None-Match``.
    """
    if if_none_match.strip() == "*":
        return True
    for candidate in if_none_match.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == etag:
            return True
    return False


@dataclass(frozen=True)
class CachedResponse:
    """A rendered response body plus its strong ETag."""

    body: bytes
    etag: str


class ResponseCache:
    """Bounded, thread-safe LRU cache of rendered responses."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, CachedResponse] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key(endpoint: str, params: Mapping[str, str], fingerprint: str) -> Hashable:
        """The cache key for one request against one dataset generation."""
        return (endpoint, tuple(sorted(params.items())), fingerprint)

    def get(self, key: Hashable) -> CachedResponse | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Hashable, response: CachedResponse) -> None:
        with self._lock:
            self._entries[key] = response
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

"""The ``langcrux api`` HTTP analytics service.

:class:`AnalyticsService` owns the loaded :class:`DatasetAggregates`, the
route table and the response cache; :class:`AnalyticsServer` exposes it over
real loopback HTTP, reusing the :class:`~repro.webgen.server.LocalSiteServer`
idioms (``ThreadingHTTPServer`` with daemon threads, HTTP/1.1 keep-alive,
Nagle off, a handler class specialised per server instance, ``gateway``
addressing, context-manager lifecycle) — plus what a query service needs on
top:

* **bounded worker concurrency** — a semaphore caps how many requests are
  being handled at once, independent of how many connections are open;
* **response caching** — bodies are rendered once per (endpoint, params,
  dataset fingerprint) and served from the LRU afterwards;
* **strong ETags** — every cacheable response carries a content-addressed
  ETag, and ``If-None-Match`` revalidation answers ``304`` with an empty
  body;
* **reload on change** — the dataset file's (mtime, size) stamp is checked
  per request; a changed file is re-streamed into fresh aggregates whose new
  fingerprint invalidates the whole cache at once;
* **structured errors** — unknown endpoints/domains and bad query parameters
  answer JSON ``{"error": {...}}`` documents, never HTML tracebacks, and a
  client that disconnects mid-response costs nothing but its own request.

Endpoints (all ``GET``):

========================  ====================================================
``/`` or ``/health``      service + dataset metadata
``/analyze``              Table 2 statistics, filter rates, language mixes
``/mismatch``             Figure 5 fractions + Table 5 examples
                          (``?examples=N&threshold=P``)
``/kizuki``               Figure 6 re-scoring (``?countries=bd,th``)
``/explorer``             full explorer document (``?sites=0`` omits rows)
``/explorer/countries``   per-country aggregates only
``/explorer/sites``       per-site rows only
``/explorer/site/<dom>``  one site's row
``/stats``                serving metrics (requests, cache, aggregations)
``/metrics``              the same story in Prometheus text exposition format
========================  ====================================================
"""

from __future__ import annotations

import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Mapping
from urllib.parse import parse_qsl, urlsplit

from repro.api.aggregates import (
    DEFAULT_KIZUKI_COUNTRIES,
    DatasetAggregates,
    DatasetLoadError,
    render_json,
)
from repro.api.cache import CachedResponse, ResponseCache, etag_matches, make_etag
from repro.obs.log import get_logger
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE, MetricsRegistry
from repro.obs.trace import new_trace_id

JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: Response header reporting whether the body came from the response cache.
CACHE_STATE_HEADER = "x-langcrux-cache"

#: Request/response header carrying a trace id: echoed back when the client
#: sent one, generated otherwise, and stamped into the access log either way.
TRACE_HEADER = "x-langcrux-trace"

#: The route table: path -> (builder name, cacheable).  ``/explorer/site/*``
#: is matched by prefix; ``/stats`` changes per request and is never cached.
ENDPOINTS: tuple[str, ...] = (
    "/", "/health", "/analyze", "/mismatch", "/kizuki", "/explorer",
    "/explorer/countries", "/explorer/sites", "/explorer/site/<domain>",
    "/stats", "/metrics",
)

LOG = get_logger("api.access")


class ApiError(Exception):
    """A structured HTTP error, answered as a JSON ``{"error": ...}`` document."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message

    def payload(self) -> dict[str, Any]:
        return {"error": {"status": self.status, "message": self.message}}


class ApiResponse:
    """One rendered response: status, body bytes, ETag and cache provenance.

    ``content_type`` is ``None`` for the JSON default; ``/metrics`` is the
    one route that answers a different media type.
    """

    __slots__ = ("status", "body", "etag", "cache_state", "content_type")

    def __init__(self, status: int, body: bytes, etag: str | None = None,
                 cache_state: str | None = None,
                 content_type: str | None = None) -> None:
        self.status = status
        self.body = body
        self.etag = etag
        self.cache_state = cache_state
        self.content_type = content_type


def _int_param(params: Mapping[str, str], name: str, default: int,
               *, minimum: int = 0) -> int:
    value = params.get(name)
    if value is None:
        return default
    try:
        parsed = int(value)
    except ValueError:
        raise ApiError(400, f"query parameter {name!r} must be an integer, got {value!r}")
    if parsed < minimum:
        raise ApiError(400, f"query parameter {name!r} must be >= {minimum}, got {parsed}")
    return parsed


def _float_param(params: Mapping[str, str], name: str, default: float) -> float:
    value = params.get(name)
    if value is None:
        return default
    try:
        return float(value)
    except ValueError:
        raise ApiError(400, f"query parameter {name!r} must be a number, got {value!r}")


def _bool_param(params: Mapping[str, str], name: str, default: bool) -> bool:
    value = params.get(name)
    if value is None:
        return default
    lowered = value.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ApiError(400, f"query parameter {name!r} must be a boolean flag, got {value!r}")


def _countries_param(params: Mapping[str, str], name: str,
                     default: tuple[str, ...]) -> tuple[str, ...]:
    value = params.get(name)
    if value is None:
        return default
    countries = tuple(part.strip().lower() for part in value.split(",") if part.strip())
    if not countries:
        raise ApiError(400, f"query parameter {name!r} must name at least one country")
    return countries


class AnalyticsService:
    """Dataset loading, change detection, routing and response caching.

    Thread-safe: many handler threads call :meth:`handle` concurrently.
    Payload building runs outside the service lock (so slow renders overlap);
    the lock guards the aggregates swap on reload and the counters.
    """

    def __init__(self, dataset_path: str | Path, *, cache_size: int = 256,
                 skip_corrupt: bool = False, auto_reload: bool = True) -> None:
        self.path = Path(dataset_path)
        self.skip_corrupt = skip_corrupt
        self.auto_reload = auto_reload
        self.cache = ResponseCache(cache_size)
        self._lock = threading.Lock()
        self._requests = 0
        self._aggregations = 0
        self._loads = 0
        self._inflight = 0
        self._max_workers: int | None = None  # bound by AnalyticsServer
        self.metrics = MetricsRegistry()
        self._requests_total = self.metrics.counter(
            "langcrux_api_requests_total",
            "HTTP requests handled, by endpoint and status.",
            ("endpoint", "status"))
        self._request_seconds = self.metrics.histogram(
            "langcrux_api_request_seconds",
            "Request handling latency in seconds, by endpoint.",
            ("endpoint",))
        self._cache_total = self.metrics.counter(
            "langcrux_api_cache_total",
            "Response cache lookups, by state (hit/miss).",
            ("state",))
        self.metrics.gauge(
            "langcrux_api_inflight_requests",
            "Requests currently being handled.",
            lambda: self._inflight)
        self.metrics.gauge(
            "langcrux_api_worker_saturation",
            "In-flight requests over the worker cap (0..1).",
            lambda: (self._inflight / self._max_workers
                     if self._max_workers else 0.0))
        self.metrics.gauge(
            "langcrux_api_dataset_loads",
            "Times the dataset was (re)streamed into aggregates.",
            lambda: self._loads)
        self._file_stamp = self._stamp()
        self._aggregates = self._load()

    # -- dataset lifecycle -------------------------------------------------------

    @property
    def aggregates(self) -> DatasetAggregates:
        """The currently served aggregates (a consistent snapshot)."""
        return self._aggregates

    def _stamp(self) -> tuple[int, int]:
        try:
            stat = self.path.stat()
        except OSError as exc:
            raise DatasetLoadError(f"cannot stat dataset {self.path}: {exc}") from exc
        return (stat.st_mtime_ns, stat.st_size)

    def _load(self) -> DatasetAggregates:
        aggregates = DatasetAggregates.load(self.path, skip_corrupt=self.skip_corrupt)
        self._loads += 1
        return aggregates

    def maybe_reload(self) -> bool:
        """Re-stream the dataset when the file changed; returns whether it did.

        A dataset that disappeared (deleted mid-serve, e.g. between a
        build's atomic replaces) keeps the loaded aggregates serving — the
        next successful stat with a changed stamp triggers the reload.
        """
        if not self.auto_reload:
            return False
        try:
            stamp = self._stamp()
        except DatasetLoadError:
            return False
        with self._lock:
            if stamp == self._file_stamp:
                return False
            self._aggregates = self._load()
            self._file_stamp = stamp
            return True

    def reset_cache(self) -> None:
        """Drop every cached response (benchmark cold-path helper)."""
        self.cache.clear()

    # -- request handling --------------------------------------------------------

    def request_started(self) -> None:
        with self._lock:
            self._inflight += 1

    def request_finished(self) -> None:
        with self._lock:
            self._inflight -= 1

    def normalize_endpoint(self, path: str) -> str:
        """Collapse a request path onto its route for metric labels.

        Per-domain paths share one label value — a scraper must see a
        bounded label set, not one series per domain in the dataset.
        """
        if path in ("/", "/health", "/analyze", "/mismatch", "/kizuki",
                    "/explorer", "/explorer/countries", "/explorer/sites",
                    "/stats", "/metrics"):
            return path
        if path.startswith("/explorer/site/"):
            return "/explorer/site/:domain"
        return "unknown"

    def observe_request(self, path: str, status: int, duration_s: float,
                        cache_state: str | None, *, trace: str | None = None,
                        method: str = "GET") -> None:
        """Record one finished request into the metrics and the access log."""
        endpoint = self.normalize_endpoint(path)
        self._requests_total.inc(endpoint=endpoint, status=str(status))
        self._request_seconds.observe(duration_s, endpoint=endpoint)
        if cache_state is not None:
            self._cache_total.inc(state=cache_state)
        fields = {"method": method, "path": path, "status": status,
                  "duration_ms": round(duration_s * 1000.0, 3)}
        if trace is not None:
            fields["trace"] = trace
        if cache_state is not None:
            fields["cache"] = cache_state
        LOG.info("request", **fields)

    def handle(self, path: str, params: Mapping[str, str]) -> ApiResponse:
        """Answer one request; raises :class:`ApiError` for structured failures."""
        with self._lock:
            self._requests += 1
        if path == "/metrics":
            # A scrape reads the service, it must not mutate it: no
            # reload check, no response cache, no ETag.
            return ApiResponse(200, self.metrics.render().encode("utf-8"),
                               content_type=PROMETHEUS_CONTENT_TYPE)
        self.maybe_reload()
        aggregates = self._aggregates
        builder, cacheable = self._route(path)
        key = None
        if cacheable:
            key = ResponseCache.key(path, params, aggregates.fingerprint)
            cached = self.cache.get(key)
            if cached is not None:
                return ApiResponse(200, cached.body, cached.etag, "hit")
        payload = builder(aggregates, params)
        body = render_json(payload).encode("utf-8")
        etag = make_etag(body)
        if key is not None:
            with self._lock:
                self._aggregations += 1
            self.cache.put(key, CachedResponse(body, etag))
            return ApiResponse(200, body, etag, "miss")
        return ApiResponse(200, body, etag, None)

    def _route(self, path: str) -> tuple[Callable[[DatasetAggregates, Mapping[str, str]],
                                                  dict[str, Any]], bool]:
        routes: dict[str, tuple[Callable[..., dict[str, Any]], bool]] = {
            "/": (self._build_health, True),
            "/health": (self._build_health, True),
            "/analyze": (self._build_analyze, True),
            "/mismatch": (self._build_mismatch, True),
            "/kizuki": (self._build_kizuki, True),
            "/explorer": (self._build_explorer, True),
            "/explorer/countries": (self._build_explorer_countries, True),
            "/explorer/sites": (self._build_explorer_sites, True),
            "/stats": (self._build_stats, False),
        }
        route = routes.get(path)
        if route is not None:
            return route
        if path.startswith("/explorer/site/"):
            domain = path[len("/explorer/site/"):]
            return (lambda aggregates, params: self._build_site(aggregates, domain)), True
        raise ApiError(404, f"unknown endpoint {path!r}; available: "
                            + " ".join(ENDPOINTS))

    # -- endpoint builders -------------------------------------------------------

    def _build_health(self, aggregates: DatasetAggregates,
                      params: Mapping[str, str]) -> dict[str, Any]:
        return {
            "service": "langcrux-api",
            "dataset": {
                "path": str(self.path),
                "fingerprint": aggregates.fingerprint,
                "sites": aggregates.site_count,
                "countries": list(aggregates.countries()),
                "skipped_records": aggregates.skipped_records,
            },
            "endpoints": list(ENDPOINTS),
        }

    def _build_analyze(self, aggregates: DatasetAggregates,
                       params: Mapping[str, str]) -> dict[str, Any]:
        return aggregates.analyze_payload()

    def _build_mismatch(self, aggregates: DatasetAggregates,
                        params: Mapping[str, str]) -> dict[str, Any]:
        return aggregates.mismatch_payload(
            examples=_int_param(params, "examples", 5),
            threshold_pct=_float_param(params, "threshold", 10.0),
        )

    def _build_kizuki(self, aggregates: DatasetAggregates,
                      params: Mapping[str, str]) -> dict[str, Any]:
        countries = _countries_param(params, "countries", DEFAULT_KIZUKI_COUNTRIES)
        return aggregates.kizuki_payload(countries)

    def _build_explorer(self, aggregates: DatasetAggregates,
                        params: Mapping[str, str]) -> dict[str, Any]:
        return aggregates.explorer_payload(
            include_sites=_bool_param(params, "sites", True))

    def _build_explorer_countries(self, aggregates: DatasetAggregates,
                                  params: Mapping[str, str]) -> dict[str, Any]:
        return {"countries": [aggregates.country_payload(country)
                              for country in aggregates.countries()]}

    def _build_explorer_sites(self, aggregates: DatasetAggregates,
                              params: Mapping[str, str]) -> dict[str, Any]:
        return aggregates.sites_payload()

    def _build_site(self, aggregates: DatasetAggregates, domain: str) -> dict[str, Any]:
        row = aggregates.site_payload(domain)
        if row is None:
            raise ApiError(404, f"unknown domain {domain!r} in dataset")
        return row

    def _build_stats(self, aggregates: DatasetAggregates,
                     params: Mapping[str, str]) -> dict[str, Any]:
        with self._lock:
            requests = self._requests
            aggregations = self._aggregations
            loads = self._loads
        return {
            "requests": requests,
            "aggregations": aggregations,
            "dataset_loads": loads,
            "cache": self.cache.stats(),
            "dataset": {
                "path": str(self.path),
                "fingerprint": aggregates.fingerprint,
                "sites": aggregates.site_count,
            },
        }


class _ApiRequestHandler(BaseHTTPRequestHandler):
    """Dispatches one HTTP request into the bound :class:`AnalyticsService`."""

    # Keep-alive responses: analytics clients issue many small queries over
    # one connection, exactly like the crawler against LocalSiteServer.
    protocol_version = "HTTP/1.1"

    # Nagle + delayed-ACK cost ~40ms per keep-alive round-trip on loopback;
    # a serving benchmark must not hide that behind the workload.
    disable_nagle_algorithm = True

    # Bound by AnalyticsServer when the handler class is specialised.
    service: AnalyticsService
    slots: "threading.BoundedSemaphore"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self.slots.acquire()
        self.service.request_started()
        try:
            self._respond()
        except (BrokenPipeError, ConnectionResetError):
            # The client went away mid-response: drop the connection, keep
            # the worker — the semaphore release below is what guarantees a
            # disconnecting client can never wedge a slot.
            self.close_connection = True
        finally:
            self.service.request_finished()
            self.slots.release()

    def _respond(self) -> None:
        split = urlsplit(self.path)
        params = dict(parse_qsl(split.query, keep_blank_values=True))
        path = split.path or "/"
        trace = self.headers.get(TRACE_HEADER) or new_trace_id()
        started = time.perf_counter()
        status = 500
        cache_state = None
        try:
            try:
                response = self.service.handle(path, params)
            except ApiError as error:
                status = error.status
                self._send(status, render_json(error.payload()).encode("utf-8"),
                           trace=trace)
                return
            except Exception as error:  # noqa: BLE001 - a broken route must answer, not kill the worker
                fallback = ApiError(500, f"internal error: {error}")
                self._send(500, render_json(fallback.payload()).encode("utf-8"),
                           trace=trace)
                return
            cache_state = response.cache_state
            if response.etag is not None:
                if_none_match = self.headers.get("if-none-match")
                if if_none_match and etag_matches(if_none_match, response.etag):
                    status = 304
                    self._send(304, b"", etag=response.etag,
                               cache_state=cache_state, trace=trace)
                    return
            status = response.status
            self._send(status, response.body, etag=response.etag,
                       cache_state=cache_state,
                       content_type=response.content_type, trace=trace)
        finally:
            self.service.observe_request(
                path, status, time.perf_counter() - started, cache_state,
                trace=trace, method=self.command)

    def _send(self, status: int, body: bytes, *, etag: str | None = None,
              cache_state: str | None = None, content_type: str | None = None,
              trace: str | None = None) -> None:
        self.send_response(status)
        if status != 304:
            self.send_header("content-type", content_type or JSON_CONTENT_TYPE)
        if etag is not None:
            self.send_header("etag", etag)
        if cache_state is not None:
            self.send_header(CACHE_STATE_HEADER, cache_state)
        if trace is not None:
            self.send_header(TRACE_HEADER, trace)
        self.send_header("content-length", str(len(body)))
        self.end_headers()
        if body:
            self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # structured access logs come from AnalyticsService.observe_request


class AnalyticsServer:
    """Serves an :class:`AnalyticsService` over loopback HTTP.

    Usable as a context manager, exactly like
    :class:`~repro.webgen.server.LocalSiteServer`::

        with AnalyticsServer("langcrux.jsonl") as server:
            urlopen(f"http://{server.gateway}/analyze")

    Args:
        dataset: A dataset JSONL path, or an already-built
            :class:`AnalyticsService` to serve.
        host: Interface to bind (loopback by default; keep it that way).
        port: Port to bind; 0 picks an ephemeral free port.
        max_workers: Upper bound on concurrently handled requests.
        cache_size: Response cache entries (ignored when ``dataset`` is a
            service).
        skip_corrupt: Skip corrupt dataset lines at load instead of failing.
        auto_reload: Watch the dataset file and re-stream it on change.
    """

    def __init__(self, dataset: str | Path | AnalyticsService, *,
                 host: str = "127.0.0.1", port: int = 0, max_workers: int = 8,
                 cache_size: int = 256, skip_corrupt: bool = False,
                 auto_reload: bool = True) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if isinstance(dataset, AnalyticsService):
            self.service = dataset
        else:
            self.service = AnalyticsService(dataset, cache_size=cache_size,
                                            skip_corrupt=skip_corrupt,
                                            auto_reload=auto_reload)
        self.max_workers = max_workers
        self.service._max_workers = max_workers  # saturation gauge denominator
        handler = type("_BoundApiRequestHandler", (_ApiRequestHandler,),
                       {"service": self.service,
                        "slots": threading.BoundedSemaphore(max_workers)})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def gateway(self) -> str:
        """The ``host:port`` address clients connect to."""
        return f"{self.host}:{self.port}"

    def start(self) -> "AnalyticsServer":
        """Serve on a background thread until :meth:`close` (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(target=self._server.serve_forever,
                                            name="langcrux-api-server",
                                            daemon=True)
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join()
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "AnalyticsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Crawl metrics.

Large crawls need operational visibility: how many origins succeeded, what
the failure modes were, how fast the (simulated) network answered, and how
those numbers break down per country.  :class:`CrawlMetrics` accumulates
those statistics from :class:`~repro.crawler.records.CrawlRecord` objects,
either incrementally during a crawl (via :meth:`observe`) or after the fact
from a stored record file.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields
from typing import Iterable

from repro.crawler.records import CrawlRecord
from repro.stats.summary import SummaryStats, percentile, summarize


@dataclass
class TransportMetrics:
    """Operational counters of a transport stack.

    Every layer of :mod:`repro.crawler.transport` increments the shared
    instance it was built with, so one object answers the questions a crawl
    operator asks: how many requests actually hit the network, how much was
    served from the crawl cache, how often retries and rate limiting kicked
    in.  Increments are lock-protected because wire transports dispatch
    sends from worker threads.

    Instances are plain picklable data, so shard workers can snapshot and
    ship them back to the parent, which merges them via :meth:`merge`.
    """

    network_requests: int = 0
    connections_opened: int = 0
    connections_reused: int = 0
    retries: int = 0
    retry_wait_s: float = 0.0
    rate_limit_wait_s: float = 0.0
    robots_denied: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    cache_rescans: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        return self.as_dict()

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._lock = threading.Lock()

    def add(self, counter: str, amount: float = 1) -> None:
        """Increment ``counter`` by ``amount`` (thread-safe)."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def merge(self, other: "TransportMetrics") -> None:
        """Fold another stack's counters into this one."""
        with self._lock:
            for spec in fields(self):
                setattr(self, spec.name,
                        getattr(self, spec.name) + getattr(other, spec.name))

    def as_dict(self) -> dict:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    def summary_lines(self) -> list[str]:
        """Human-readable one-liners (used by the CLI build report)."""
        lines = [f"network requests {self.network_requests}"
                 f" (connections opened {self.connections_opened},"
                 f" reused {self.connections_reused})"]
        if self.cache_hits or self.cache_misses:
            lines.append(f"crawl cache: {self.cache_hits} hits,"
                         f" {self.cache_misses} misses,"
                         f" {self.cache_stores} stored")
        if self.retries or self.robots_denied:
            lines.append(f"retries {self.retries}"
                         f" (waited {self.retry_wait_s:.2f}s),"
                         f" robots denied {self.robots_denied}")
        return lines


@dataclass
class CountryCrawlStats:
    """Per-country crawl counters."""

    origins: int = 0
    succeeded: int = 0
    blocked: int = 0
    errored: int = 0
    pages_fetched: int = 0

    @property
    def success_rate(self) -> float:
        return self.succeeded / self.origins if self.origins else 0.0


@dataclass
class CrawlMetrics:
    """Aggregate crawl statistics.

    Attributes:
        by_country: Per-country counters.
        status_counts: HTTP status code histogram over all fetched pages.
        latencies_ms: Fetch latencies of successful pages.
    """

    by_country: dict[str, CountryCrawlStats] = field(default_factory=dict)
    status_counts: dict[int, int] = field(default_factory=dict)
    latencies_ms: list[float] = field(default_factory=list)

    # -- accumulation ----------------------------------------------------------

    def observe(self, record: CrawlRecord) -> None:
        """Fold one crawl record into the metrics."""
        stats = self.by_country.setdefault(record.country_code, CountryCrawlStats())
        stats.origins += 1
        stats.pages_fetched += len(record.pages)
        if record.succeeded:
            stats.succeeded += 1
        else:
            homepage = record.homepage
            if homepage is not None and homepage.status == 403:
                stats.blocked += 1
            else:
                stats.errored += 1
        for page in record.pages:
            self.status_counts[page.status] = self.status_counts.get(page.status, 0) + 1
            if page.ok:
                self.latencies_ms.append(page.elapsed_ms)

    @classmethod
    def from_records(cls, records: Iterable[CrawlRecord]) -> "CrawlMetrics":
        metrics = cls()
        for record in records:
            metrics.observe(record)
        return metrics

    # -- derived statistics ----------------------------------------------------------

    @property
    def total_origins(self) -> int:
        return sum(stats.origins for stats in self.by_country.values())

    @property
    def total_pages(self) -> int:
        return sum(stats.pages_fetched for stats in self.by_country.values())

    @property
    def overall_success_rate(self) -> float:
        succeeded = sum(stats.succeeded for stats in self.by_country.values())
        return succeeded / self.total_origins if self.total_origins else 0.0

    def latency_summary(self) -> SummaryStats:
        return summarize(self.latencies_ms)

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th latency percentile (raises on an empty sample)."""
        return percentile(self.latencies_ms, q)

    def error_rate(self) -> float:
        """Fraction of fetched pages that did not return a 2xx status."""
        total = sum(self.status_counts.values())
        if not total:
            return 0.0
        ok = sum(count for status, count in self.status_counts.items() if 200 <= status < 300)
        return 1.0 - ok / total

    # -- reporting -------------------------------------------------------------------

    def summary_lines(self) -> list[str]:
        """Human-readable summary, one line per country plus totals."""
        lines = [f"{'country':<8}{'origins':>9}{'ok':>6}{'blocked':>9}{'errors':>8}{'pages':>8}"]
        for country, stats in sorted(self.by_country.items()):
            lines.append(f"{country:<8}{stats.origins:>9}{stats.succeeded:>6}"
                         f"{stats.blocked:>9}{stats.errored:>8}{stats.pages_fetched:>8}")
        latency = self.latency_summary()
        lines.append(f"total origins {self.total_origins}, pages {self.total_pages}, "
                     f"success rate {self.overall_success_rate * 100:.1f}%, "
                     f"page error rate {self.error_rate() * 100:.1f}%")
        if latency.count:
            lines.append(f"latency ms: median {latency.median:.0f}, mean {latency.mean:.0f}, "
                         f"p95 {self.latency_percentile(95):.0f}")
        return lines

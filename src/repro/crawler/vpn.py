"""VPN vantage points.

The paper routes all crawler traffic through VPN servers physically hosted in
the studied country, selecting the provider per country because "not all VPN
providers have servers in every target country".  This module models exactly
that decision problem:

* a :class:`VPNProvider` advertises exit countries;
* a :class:`VantagePoint` is a concrete exit (provider + country) a crawl
  session binds to;
* the :class:`VPNManager` picks a provider for each requested country,
  preferring the configured provider order, and reports countries with no
  coverage so that callers can fall back to a cloud vantage explicitly
  instead of silently crawling the wrong variant.

The simulated transport attaches the vantage's country and a ``via_vpn`` flag
to each request; geo-localizing origins use the former, VPN-blocking origins
the latter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.langid.languages import langcrux_country_codes


class VPNCoverageError(LookupError):
    """Raised when no configured provider has an exit in a requested country."""


@dataclass(frozen=True)
class VPNProvider:
    """A VPN provider and the countries it has exit servers in."""

    name: str
    exit_countries: frozenset[str]

    def covers(self, country_code: str) -> bool:
        return country_code in self.exit_countries


@dataclass(frozen=True)
class VantagePoint:
    """A concrete crawl vantage.

    Attributes:
        country_code: The exit country (``None`` for a generic cloud vantage).
        provider: The provider name, or ``"cloud"`` for the non-VPN vantage.
        via_vpn: Whether the traffic is VPN/proxy traffic (cloud vantages are
            not, which matters for VPN-blocking origins).
    """

    country_code: str | None
    provider: str
    via_vpn: bool = True

    @classmethod
    def cloud(cls) -> "VantagePoint":
        """A generic cloud-hosted vantage outside every studied country.

        This is the baseline the paper argues against: crawling from generic
        cloud IPs "risks accessing global or English-dominant versions of
        websites".  The vantage-point ablation benchmark uses it.
        """
        return cls(country_code=None, provider="cloud", via_vpn=False)

    @property
    def is_localized(self) -> bool:
        return self.country_code is not None


#: Default provider set.  Coverage is modelled after the paper's setup: one
#: provider covers most of the studied countries, the second fills the gaps,
#: so per-country provider selection is actually exercised.
DEFAULT_PROVIDERS: tuple[VPNProvider, ...] = (
    VPNProvider("proton", frozenset({"bd", "dz", "eg", "gr", "il", "in", "jp", "kr", "ru", "th"})),
    VPNProvider("hotspot-shield", frozenset({"cn", "hk", "in", "jp", "kr", "th", "gr", "ru"})),
)


class VPNManager:
    """Selects VPN exits per country and hands out vantage points."""

    def __init__(self, providers: Sequence[VPNProvider] = DEFAULT_PROVIDERS) -> None:
        if not providers:
            raise ValueError("VPNManager requires at least one provider")
        self.providers = tuple(providers)

    def provider_for(self, country_code: str) -> VPNProvider:
        """The first configured provider with an exit in ``country_code``.

        Raises:
            VPNCoverageError: When no provider covers the country.
        """
        for provider in self.providers:
            if provider.covers(country_code):
                return provider
        raise VPNCoverageError(f"no VPN provider has an exit in {country_code!r}")

    def vantage_for(self, country_code: str) -> VantagePoint:
        """A vantage point inside ``country_code``."""
        provider = self.provider_for(country_code)
        return VantagePoint(country_code=country_code, provider=provider.name)

    def coverage_report(self, country_codes: Iterable[str] | None = None) -> dict[str, str | None]:
        """Map each country to the provider serving it (``None`` = uncovered)."""
        codes = tuple(country_codes) if country_codes is not None else langcrux_country_codes()
        report: dict[str, str | None] = {}
        for code in codes:
            try:
                report[code] = self.provider_for(code).name
            except VPNCoverageError:
                report[code] = None
        return report

    def uncovered(self, country_codes: Iterable[str] | None = None) -> tuple[str, ...]:
        """Countries with no VPN coverage under the current provider set."""
        return tuple(code for code, provider in self.coverage_report(country_codes).items()
                     if provider is None)

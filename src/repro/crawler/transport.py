"""Production HTTP transport subsystem.

Everything between the crawler's :class:`~repro.crawler.fetcher.AsyncTransport`
protocol and an actual network socket lives here, as a stack of small,
independently testable layers that compose around any base transport::

    CachingTransport          on-disk crawl cache (re-runs skip the network)
      RetryingTransport       exponential backoff + deterministic jitter
        PoliteTransport       per-host token bucket, concurrency cap, robots
          InstrumentedTransport   counts what actually reaches the wire
            HttpAsyncTransport    real HTTP/1.1 with connection pooling
            (or SyncTransportAdapter over SimulatedTransport)

* :class:`HttpAsyncTransport` is the asyncio-native wire transport: stdlib
  ``http.client`` under :func:`asyncio.to_thread` (no third-party HTTP
  dependency), keep-alive connection pooling, per-request timeouts, and an
  optional *gateway* mapping that resolves every origin to one address —
  which is how the full pipeline crawls a live loopback
  :class:`~repro.webgen.server.LocalSiteServer` hosting thousands of
  synthetic domains.  Redirects are passed through untouched: redirect
  policy belongs to the fetcher, the same place it lives for the simulated
  transport, so both paths share one implementation.
* :class:`PoliteTransport` enforces crawl politeness *below* the fetcher:
  a per-host token bucket (optionally tightened by the host's
  ``Crawl-delay``), a per-host concurrency cap, and robots.txt enforcement
  through :mod:`repro.crawler.robots` with an expiring
  :class:`~repro.crawler.robots.RobotsCache`.
* :class:`RetryingTransport` retries transient failures with exponential
  backoff whose jitter draws from the same ``stable_seed(seed, "transport",
  country, host)`` per-host RNG split the simulated transport uses, so a
  retry schedule — like everything else in the pipeline — is a pure
  function of the configuration.
* :class:`CachingTransport` gives any transport an on-disk crawl cache:
  response bodies in a content-addressed store written with the
  temp-file/``os.replace`` pattern of
  :class:`~repro.core.dataset.StreamingDatasetWriter`, response metadata in
  per-writer JSONL manifests (append-only, so concurrent shard workers
  never contend), which together make re-runs and crash-resumed runs skip
  every already-fetched origin.

:func:`build_transport_stack` assembles the layers; a shared
:class:`~repro.crawler.metrics.TransportMetrics` instance threads through
them so one object reports what the stack did (the pipeline aggregates them
across shards onto the run result).
"""

from __future__ import annotations

import asyncio
import hashlib
import http.client
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable
import random

from repro.crawler.fetcher import AsyncTransport, FetchError, Transport, run_coroutine
from repro.crawler.http import (
    CLIENT_COUNTRY_HEADER,
    Headers,
    Request,
    Response,
    RETRYABLE_STATUS_CODES,
    SERVED_VARIANT_HEADER,
    URL,
    VIA_VPN_HEADER,
    parse_charset,
)
from repro.crawler.metrics import TransportMetrics
from repro.crawler.robots import RobotsCache, RobotsPolicy, parse_robots_txt
from repro.obs import trace as obs_trace


class RobotsDisallowedError(FetchError):
    """Raised when the politeness layer refuses a robots-disallowed fetch."""


# -- the wire transport --------------------------------------------------------------


def _default_port(scheme: str) -> int:
    return 443 if scheme == "https" else 80


def parse_netloc(netloc: str) -> tuple[str, int]:
    """Split a ``host:port`` gateway address (port required)."""
    host, _, port = netloc.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"gateway must be HOST:PORT, got {netloc!r}")
    return host, int(port)


class HttpAsyncTransport:
    """A real-HTTP :class:`~repro.crawler.fetcher.AsyncTransport`.

    Sends requests over actual sockets with stdlib ``http.client``,
    offloaded to worker threads via :func:`asyncio.to_thread` so in-flight
    requests overlap on one event loop.  Connections are pooled per
    ``(scheme, address)`` and kept alive across requests (HTTP/1.1); a
    stale keep-alive connection that the server closed between requests is
    detected and retried once on a fresh connection, which is invisible to
    callers.

    Args:
        gateway: Optional ``HOST:PORT`` (or ``(host, port)``) every request
            connects to regardless of its URL's host — the URL host still
            travels in the ``Host`` header.  This is the loopback-crawl
            mode: a :class:`~repro.webgen.server.LocalSiteServer` serves
            every synthetic domain on one address, and the transport treats
            it as the resolver for all of them.  ``None`` connects to each
            URL's own host (real crawling).
        timeout_s: Socket connect/read timeout per request.
        forward_vantage: Whether to encode ``Request.client_country`` /
            ``Request.via_vpn`` as the private ``x-langcrux-*`` headers the
            synthetic origin server understands.  Harmless for real
            origins; disable to crawl without them.
        metrics: Shared counters (connections opened/reused).

    Raises:
        FetchError: From :meth:`send`, for socket errors, timeouts and
            malformed responses.  HTTP error *statuses* are returned as
            normal responses — deciding what a 404 means is the caller's
            job, exactly like the simulated transport.
    """

    def __init__(self, gateway: str | tuple[str, int] | None = None, *,
                 timeout_s: float = 10.0, forward_vantage: bool = True,
                 metrics: TransportMetrics | None = None) -> None:
        if isinstance(gateway, str):
            gateway = parse_netloc(gateway)
        self.gateway = gateway
        self.timeout_s = timeout_s
        self.forward_vantage = forward_vantage
        self.metrics = metrics
        self._pool: dict[tuple[str, str, int], list[http.client.HTTPConnection]] = {}
        self._lock = threading.Lock()
        self._closed = False

    # -- connection pool ---------------------------------------------------------

    def _address_for(self, url: URL) -> tuple[str, str, int]:
        if self.gateway is not None:
            # The gateway terminates on loopback over plain HTTP regardless
            # of the URL's scheme (it is the TLS-terminating proxy of this
            # world); the logical origin still travels in the Host header.
            host, port = self.gateway
            return ("http", host, port)
        return (url.scheme, url.host, url.port or _default_port(url.scheme))

    def _connect(self, key: tuple[str, str, int]) -> http.client.HTTPConnection:
        scheme, host, port = key
        if scheme == "https":
            return http.client.HTTPSConnection(host, port, timeout=self.timeout_s)
        return http.client.HTTPConnection(host, port, timeout=self.timeout_s)

    def _acquire(self, key: tuple[str, str, int]) -> tuple[http.client.HTTPConnection, bool]:
        """A pooled connection for ``key`` (reused flag for metrics)."""
        with self._lock:
            if self._closed:
                raise FetchError("transport is closed")
            pooled = self._pool.get(key)
            if pooled:
                return pooled.pop(), True
        connection = self._connect(key)
        if self.metrics is not None:
            self.metrics.add("connections_opened")
        return connection, False

    def _release(self, key: tuple[str, str, int],
                 connection: http.client.HTTPConnection) -> None:
        with self._lock:
            if not self._closed:
                self._pool.setdefault(key, []).append(connection)
                return
        connection.close()

    def close(self) -> None:
        """Close every pooled connection; further sends raise."""
        with self._lock:
            self._closed = True
            pooled = [conn for conns in self._pool.values() for conn in conns]
            self._pool.clear()
        for connection in pooled:
            connection.close()

    # -- sending -----------------------------------------------------------------

    def _headers_for(self, request: Request) -> dict[str, str]:
        headers = request.headers.as_dict()
        netloc = request.url.host if request.url.port is None \
            else f"{request.url.host}:{request.url.port}"
        headers.setdefault("host", netloc)
        if self.forward_vantage:
            if request.client_country is not None:
                headers[CLIENT_COUNTRY_HEADER] = request.client_country
            headers[VIA_VPN_HEADER] = "1" if request.via_vpn else "0"
        return headers

    def _send_blocking(self, request: Request) -> Response:
        key = self._address_for(request.url)
        path = request.url.path or "/"
        if request.url.query:
            path = f"{path}?{request.url.query}"
        headers = self._headers_for(request)
        started = time.perf_counter()
        last_error: Exception | None = None
        # Two attempts at most: a reused keep-alive connection may have been
        # closed server-side between requests; that one failure mode gets a
        # silent retry on a fresh connection, anything else propagates.
        for _ in range(2):
            connection, reused = self._acquire(key)
            try:
                connection.request(request.method, path, headers=headers)
                raw = connection.getresponse()
                body_bytes = raw.read()
            except (http.client.BadStatusLine, http.client.RemoteDisconnected,
                    ConnectionResetError, BrokenPipeError) as error:
                connection.close()
                last_error = error
                if reused:
                    continue
                raise FetchError(f"connection failed fetching {request.url}: {error}",
                                 url=request.url) from error
            except (http.client.HTTPException, OSError) as error:
                connection.close()
                raise FetchError(f"request failed fetching {request.url}: {error}",
                                 url=request.url) from error
            if self.metrics is not None and reused:
                self.metrics.add("connections_reused")
            response_headers = Headers()
            for name, value in raw.getheaders():
                if name in response_headers:
                    response_headers[name] = f"{response_headers[name]}, {value}"
                else:
                    response_headers[name] = value
            if raw.will_close:
                connection.close()
            else:
                self._release(key, connection)
            charset = parse_charset(response_headers.get("content-type"))
            try:
                body = body_bytes.decode(charset, errors="replace")
            except LookupError:  # unknown charset label from the origin
                body = body_bytes.decode("utf-8", errors="replace")
            return Response(
                url=request.url,
                status=raw.status,
                headers=response_headers,
                body=body,
                elapsed_ms=(time.perf_counter() - started) * 1000.0,
                served_variant=response_headers.get(SERVED_VARIANT_HEADER),
            )
        raise FetchError(f"connection failed fetching {request.url}: {last_error}",
                         url=request.url) from last_error

    async def send(self, request: Request) -> Response:
        return await asyncio.to_thread(self._send_blocking, request)


class InstrumentedTransport:
    """Counts the sends that actually reach the wrapped transport.

    Sits directly above the base transport, below the caching layer, so
    ``metrics.network_requests`` is exactly the number of fetches the crawl
    cache did *not* absorb — the number the cache-effectiveness acceptance
    check pins at zero on a warm re-run.
    """

    def __init__(self, inner: AsyncTransport, metrics: TransportMetrics) -> None:
        self.inner = inner
        self.metrics = metrics

    async def send(self, request: Request) -> Response:
        self.metrics.add("network_requests")
        tracer = obs_trace.active()
        if tracer is None:
            return await self.inner.send(request)
        # Detached: concurrent sends interleave on one event loop, so
        # stack (LIFO) nesting would mis-parent siblings.
        span = tracer.start_span("transport.request",
                                 {"url": str(request.url)}, detached=True)
        try:
            response = await self.inner.send(request)
        except BaseException:
            span.attrs["error"] = True
            raise
        else:
            span.attrs["status"] = response.status
            return response
        finally:
            tracer.end_span(span)


# -- politeness ---------------------------------------------------------------------


class _TokenBucket:
    """A token bucket refilled continuously at ``rate`` tokens/second."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float]) -> None:
        self.rate = rate
        self.burst = max(burst, 1.0)
        self._clock = clock
        self._tokens = self.burst
        self._updated = clock()
        self._lock = threading.Lock()

    def reserve(self) -> float:
        """Take one token, returning how long to wait before using it."""
        with self._lock:
            now = self._clock()
            self._tokens = min(self.burst, self._tokens + (now - self._updated) * self.rate)
            self._updated = now
            self._tokens -= 1.0
            if self._tokens >= 0.0:
                return 0.0
            return -self._tokens / self.rate


class PoliteTransport:
    """Per-host politeness around any :class:`AsyncTransport`.

    Three independent behaviours, each optional:

    * **Rate limiting** — a token bucket per host, ``rate_per_host``
      requests/second with a burst of ``burst``.  A host whose robots.txt
      declares a ``Crawl-delay`` larger than the configured interval gets
      its bucket slowed to that delay.
    * **Concurrency caps** — at most ``max_per_host`` requests in flight
      per host (batched crawls fetch one origin's pages sequentially, but
      nothing stops two windows from hitting one host).
    * **robots.txt enforcement** — fetches ``/robots.txt`` once per host
      through the same limits, caches the parsed policy in an expiring
      :class:`~repro.crawler.robots.RobotsCache`, and raises
      :class:`RobotsDisallowedError` for disallowed paths.  Off by default
      because the crawl session already enforces robots at the application
      layer; turn it on when using the transport stack bare.

    The clock and sleep hooks are injectable so tests drive waiting
    virtually; production uses monotonic time and :func:`asyncio.sleep`.
    """

    def __init__(self, inner: AsyncTransport, *,
                 rate_per_host: float | None = None, burst: float = 1.0,
                 max_per_host: int | None = None,
                 respect_robots: bool = False,
                 robots_max_age_s: float | None = 3600.0,
                 user_agent: str = "LangCruxBot/1.0",
                 metrics: TransportMetrics | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], "asyncio.Future | None"] | None = None) -> None:
        if rate_per_host is not None and rate_per_host <= 0:
            raise ValueError(f"rate_per_host must be positive, got {rate_per_host}")
        if max_per_host is not None and max_per_host < 1:
            raise ValueError(f"max_per_host must be positive, got {max_per_host}")
        self.inner = inner
        self.rate_per_host = rate_per_host
        self.burst = burst
        self.max_per_host = max_per_host
        self.respect_robots = respect_robots
        self.user_agent = user_agent
        self.metrics = metrics
        self._clock = clock
        self._sleep = sleep
        self._buckets: dict[str, _TokenBucket] = {}
        self._robots = RobotsCache(max_age_s=robots_max_age_s, clock=clock)
        # Semaphores are asyncio primitives and must not leak across event
        # loops (each sync facade call runs its own loop), so the per-host
        # entry records which loop it belongs to and is rebuilt whenever a
        # different loop shows up — one live entry per host, never more.
        self._semaphores: dict[str, tuple[int, asyncio.Semaphore]] = {}

    async def _wait(self, seconds: float) -> None:
        if seconds <= 0:
            return
        if self.metrics is not None:
            self.metrics.add("rate_limit_wait_s", seconds)
        if self._sleep is not None:
            result = self._sleep(seconds)
            if asyncio.iscoroutine(result) or isinstance(result, asyncio.Future):
                await result
            return
        await asyncio.sleep(seconds)

    def _bucket_for(self, host: str) -> _TokenBucket | None:
        if self.rate_per_host is None:
            return None
        bucket = self._buckets.get(host)
        if bucket is None:
            bucket = self._buckets[host] = _TokenBucket(self.rate_per_host,
                                                        self.burst, self._clock)
        return bucket

    def _semaphore_for(self, host: str) -> asyncio.Semaphore | None:
        if self.max_per_host is None:
            return None
        loop_key = id(asyncio.get_running_loop())
        entry = self._semaphores.get(host)
        if entry is None or entry[0] != loop_key:
            entry = (loop_key, asyncio.Semaphore(self.max_per_host))
            self._semaphores[host] = entry
        return entry[1]

    def _apply_crawl_delay(self, host: str, policy: RobotsPolicy) -> None:
        delay = policy.crawl_delay(self.user_agent)
        if delay is None or delay <= 0 or self.rate_per_host is None:
            return
        bucket = self._bucket_for(host)
        if bucket is not None and 1.0 / delay < bucket.rate:
            bucket.rate = 1.0 / delay

    async def _through_limits(self, request: Request) -> Response:
        host = request.url.host
        bucket = self._bucket_for(host)
        if bucket is not None:
            await self._wait(bucket.reserve())
        semaphore = self._semaphore_for(host)
        if semaphore is None:
            return await self.inner.send(request)
        async with semaphore:
            return await self.inner.send(request)

    async def _policy_for(self, request: Request) -> RobotsPolicy:
        host = request.url.host
        policy = self._robots.get(host)
        if policy is not None:
            return policy
        robots_request = Request(url=request.url.with_path("/robots.txt"),
                                 headers=Headers({"user-agent": self.user_agent}),
                                 client_country=request.client_country,
                                 via_vpn=request.via_vpn)
        try:
            response = await self._through_limits(robots_request)
            policy = parse_robots_txt(response.body) \
                if response.ok and response.body else RobotsPolicy.allow_all()
        except FetchError:
            policy = RobotsPolicy.allow_all()
        self._robots.put(host, policy)
        self._apply_crawl_delay(host, policy)
        return policy

    async def send(self, request: Request) -> Response:
        if self.respect_robots and request.url.path != "/robots.txt":
            policy = await self._policy_for(request)
            agent = request.headers.get("user-agent") or self.user_agent
            if not policy.can_fetch(agent, request.url.path):
                if self.metrics is not None:
                    self.metrics.add("robots_denied")
                raise RobotsDisallowedError(
                    f"robots.txt disallows {request.url}", url=request.url)
        return await self._through_limits(request)


# -- retries ------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff policy of :class:`RetryingTransport`.

    ``backoff_base_s * 2**attempt`` seconds before retry ``attempt``
    (0-based), capped at ``backoff_max_s``, multiplied by a jitter factor
    drawn uniformly from ``[0.5, 1.5)``.
    """

    max_retries: int = 3
    backoff_base_s: float = 0.5
    backoff_max_s: float = 30.0
    retry_statuses: frozenset[int] = RETRYABLE_STATUS_CODES

    def backoff_s(self, attempt: int, rng: random.Random | None) -> float:
        if self.backoff_base_s <= 0:
            return 0.0
        delay = min(self.backoff_base_s * (2 ** attempt), self.backoff_max_s)
        if rng is not None:
            delay *= 0.5 + rng.random()
        return delay


class RetryingTransport:
    """Retries transient failures with deterministic exponential backoff.

    Retryable HTTP statuses *and* transport-level :class:`FetchError`\\ s
    (socket errors, timeouts) are retried up to ``policy.max_retries``
    times.  The jitter RNG is split per host through ``rng_factory`` — the
    pipeline passes the same ``stable_seed(seed, "transport", country,
    host)`` splitter the simulated transport uses — so the retry schedule
    of one host is a pure function of the configuration, independent of
    what other hosts are doing on the same loop.
    """

    def __init__(self, inner: AsyncTransport, policy: RetryPolicy | None = None, *,
                 rng_factory: Callable[[str], random.Random] | None = None,
                 metrics: TransportMetrics | None = None,
                 sleep: Callable[[float], "asyncio.Future | None"] | None = None) -> None:
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.rng_factory = rng_factory
        self.metrics = metrics
        self._sleep = sleep
        self._rngs: dict[str, random.Random] = {}
        self._lock = threading.Lock()

    def _rng_for(self, host: str) -> random.Random | None:
        if self.rng_factory is None:
            return None
        with self._lock:
            rng = self._rngs.get(host)
            if rng is None:
                rng = self._rngs[host] = self.rng_factory(host)
            return rng

    async def _backoff(self, attempt: int, host: str) -> None:
        delay = self.policy.backoff_s(attempt, self._rng_for(host))
        if self.metrics is not None:
            self.metrics.add("retries")
            self.metrics.add("retry_wait_s", delay)
        obs_trace.event("transport.retry",
                        {"host": host, "attempt": attempt,
                         "wait_s": round(delay, 4)})
        if delay <= 0:
            return
        if self._sleep is not None:
            result = self._sleep(delay)
            if asyncio.iscoroutine(result) or isinstance(result, asyncio.Future):
                await result
            return
        await asyncio.sleep(delay)

    async def send(self, request: Request) -> Response:
        host = request.url.host
        for attempt in range(self.policy.max_retries + 1):
            last_attempt = attempt == self.policy.max_retries
            try:
                response = await self.inner.send(request)
            except RobotsDisallowedError:
                raise  # a policy decision, not a transient failure
            except FetchError:
                if last_attempt:
                    raise
                await self._backoff(attempt, host)
                continue
            if response.status in self.policy.retry_statuses and not last_attempt:
                await self._backoff(attempt, host)
                continue
            return response
        raise AssertionError("unreachable")  # pragma: no cover


# -- the on-disk crawl cache --------------------------------------------------------


def _cache_key(request: Request) -> str:
    parts = (request.method, str(request.url),
             request.client_country or "", "1" if request.via_vpn else "0")
    return hashlib.sha256("\x1f".join(parts).encode("utf-8")).hexdigest()


class _ManifestIndex:
    """A key → entry view over a cache directory's manifests.

    Loading parses every ``manifest-*.jsonl`` once; :meth:`refresh_and_get`
    then picks up *growth* — manifests appended (or newly created) by other
    writers, including other processes — by re-reading only the bytes past
    each file's consumed offset.  Only complete lines are consumed: a
    concurrently flushed half-line stays pending and is read once its
    newline lands, so a rescan can never mis-parse a torn tail that a later
    rescan would have understood.

    One instance is shared per (process, directory) by
    :class:`CachingTransport`; all access is serialized on an internal
    lock, so concurrent transports (thread-backend windows) can share it.
    """

    def __init__(self, cache_dir: Path) -> None:
        self.cache_dir = cache_dir
        self._lock = threading.Lock()
        self._entries: dict[str, dict] = {}
        self._offsets: dict[str, int] = {}
        with self._lock:
            self._scan_locked()

    def get(self, key: str) -> dict | None:
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, entry: dict) -> None:
        with self._lock:
            self._entries[key] = entry

    def refresh_and_get(self, key: str) -> dict | None:
        """Rescan the directory for manifest growth, then look up ``key``."""
        with self._lock:
            self._scan_locked()
            return self._entries.get(key)

    def snapshot(self) -> dict[str, dict]:
        """A copy of the merged index (used by :func:`compact_cache`)."""
        with self._lock:
            return dict(self._entries)

    def _scan_locked(self) -> None:
        for manifest in sorted(self.cache_dir.glob("manifest-*.jsonl")):
            name = manifest.name
            offset = self._offsets.get(name, 0)
            try:
                size = manifest.stat().st_size
            except OSError:
                continue  # deleted between glob and stat (e.g. compaction)
            if size < offset:
                offset = 0  # truncated/replaced (compaction); re-read it all
            if size <= offset:
                continue
            try:
                with manifest.open("rb") as handle:
                    handle.seek(offset)
                    data = handle.read()
            except OSError:
                continue
            complete = data.rfind(b"\n")
            if complete < 0:
                continue  # nothing but a torn tail so far
            self._offsets[name] = offset + complete + 1
            for line in data[:complete].split(b"\n"):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    continue  # torn interior line of a crashed writer
                if isinstance(entry, dict) and "key" in entry:
                    self._entries[entry["key"]] = entry


class CachingTransport:
    """An on-disk crawl cache around any :class:`AsyncTransport`.

    Layout under ``cache_dir``::

        objects/<sha[:2]>/<sha>        response bodies, content-addressed
        manifest-<unique>.jsonl        response metadata, one JSON per line

    Bodies are written with the temp-file + :func:`os.replace` pattern (the
    same crash-safety idiom as
    :class:`~repro.core.dataset.StreamingDatasetWriter`): a body file either
    exists complete or not at all, and concurrent writers storing the same
    content race benignly.  Manifests are append-only and *per writer* —
    each :class:`CachingTransport` appends to its own uniquely named
    manifest, so concurrent shard workers (threads or processes) sharing
    one cache directory never interleave writes; loading merges every
    ``manifest-*.jsonl`` present, skipping torn trailing lines, which is
    what makes a crash-interrupted crawl resumable: the next run replays
    every completed fetch from disk and only fetches what is missing.

    Responses with retryable (transient) statuses are never cached, so a
    503 cannot shadow the success a retry would have seen.

    The cached entry stores everything a :class:`Response` carries —
    status, headers, body, ``served_variant``, ``elapsed_ms`` — so a warm
    run is byte-identical to the run that populated the cache.

    With ``shared_index`` (the default) every instance in the process
    pointing at one directory shares a single in-memory
    :class:`_ManifestIndex`: the manifests on disk are parsed once per
    process, not once per instance — a sub-sharded run builds one transport
    stack per window, and without sharing, window *k* would re-read the
    *k-1* manifests earlier windows wrote (O(n²) over a run).  Before
    declaring a *miss* the index rescans the directory for manifest growth,
    so entries appended by other writers — thread-backend siblings and,
    crucially, other worker *processes* of a distributed crawl — are
    observed without restarting the process; only a genuinely-new fetch
    pays the network.  Pass ``shared_index=False`` for a private index
    (same rescan behaviour, no cross-instance sharing — the persistence
    tests use it to exercise the disk path).

    ``fsync`` sets the manifest durability policy, mirroring
    :class:`~repro.core.dataset.StreamingDatasetWriter`'s knob: ``"close"``
    (the default) fsyncs the manifest once when the transport closes, so a
    crash mid-run can persist content-addressed bodies whose manifest lines
    were lost (warm re-runs re-fetch them; ``cache-compact`` sweeps them);
    ``"entry"`` fsyncs after every append, bounding the loss to the torn
    tail line — what distributed workers use, since their windows are
    declared complete while the process keeps running.
    """

    #: Accepted manifest ``fsync`` policies.
    FSYNC_POLICIES = ("close", "entry")

    #: Per-process shared manifest indexes, one per resolved cache directory.
    _SHARED_INDEXES: dict[Path, _ManifestIndex] = {}
    _SHARED_LOCK = threading.Lock()

    def __init__(self, inner: AsyncTransport, cache_dir: str | Path, *,
                 metrics: TransportMetrics | None = None,
                 refresh: bool = False, shared_index: bool = True,
                 fsync: str = "close") -> None:
        if fsync not in self.FSYNC_POLICIES:
            raise ValueError(f"unknown fsync policy {fsync!r}; "
                             f"expected one of {self.FSYNC_POLICIES}")
        self.inner = inner
        self.cache_dir = Path(cache_dir)
        self.metrics = metrics
        self.refresh = refresh
        self.fsync = fsync
        self._objects = self.cache_dir / "objects"
        self._objects.mkdir(parents=True, exist_ok=True)
        if refresh:
            # A refreshing transport deliberately ignores what is on disk
            # (and remembers only its own stores, privately).
            self._manifests: _ManifestIndex | None = None
            self._own_entries: dict[str, dict] = {}
        elif shared_index:
            key = self.cache_dir.resolve()
            with self._SHARED_LOCK:
                index = self._SHARED_INDEXES.get(key)
                if index is None:
                    index = self._SHARED_INDEXES[key] = _ManifestIndex(self.cache_dir)
            self._manifests = index
            self._own_entries = {}
        else:
            self._manifests = _ManifestIndex(self.cache_dir)
            self._own_entries = {}
        self._manifest_handle = None
        self._lock = threading.Lock()
        self._closed = False

    # -- manifest persistence ----------------------------------------------------

    def _lookup(self, key: str) -> dict | None:
        if self._manifests is None:
            return self._own_entries.get(key)
        return self._manifests.get(key)

    def _lookup_rescan(self, key: str) -> dict | None:
        """Second-chance lookup: rescan the directory before a real miss."""
        if self._manifests is None:
            return None
        if self.metrics is not None:
            self.metrics.add("cache_rescans")
        return self._manifests.refresh_and_get(key)

    def _remember(self, key: str, entry: dict) -> None:
        if self._manifests is None:
            self._own_entries[key] = entry
        else:
            self._manifests.put(key, entry)

    def _append_manifest(self, entry: dict) -> None:
        with self._lock:
            if self._closed:
                return
            if self._manifest_handle is None:
                descriptor, _name = tempfile.mkstemp(
                    dir=self.cache_dir, prefix="manifest-", suffix=".jsonl")
                self._manifest_handle = os.fdopen(descriptor, "w", encoding="utf-8")
            self._manifest_handle.write(json.dumps(entry, ensure_ascii=False))
            self._manifest_handle.write("\n")
            self._manifest_handle.flush()
            if self.fsync == "entry":
                os.fsync(self._manifest_handle.fileno())

    def close(self) -> None:
        with self._lock:
            self._closed = True
            if self._manifest_handle is not None:
                self._manifest_handle.flush()
                os.fsync(self._manifest_handle.fileno())
                self._manifest_handle.close()
                self._manifest_handle = None

    # -- the body store ----------------------------------------------------------

    def _body_path(self, body_sha: str) -> Path:
        return self._objects / body_sha[:2] / body_sha

    def _store_body(self, body: str) -> str:
        data = body.encode("utf-8")
        body_sha = hashlib.sha256(data).hexdigest()
        path = self._body_path(body_sha)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            descriptor, partial = tempfile.mkstemp(dir=path.parent,
                                                   prefix=f".{body_sha[:8]}.",
                                                   suffix=".partial")
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(data)
            os.replace(partial, path)
        return body_sha

    # -- the transport protocol --------------------------------------------------

    def _response_from(self, request: Request, entry: dict) -> Response | None:
        try:
            body = self._body_path(entry["body_sha"]).read_text(encoding="utf-8")
        except (OSError, KeyError):
            return None  # manifest without its body: treat as a miss
        return Response(url=request.url, status=entry["status"],
                        headers=Headers(entry.get("headers", {})),
                        body=body, elapsed_ms=entry.get("elapsed_ms", 0.0),
                        served_variant=entry.get("served_variant"))

    async def send(self, request: Request) -> Response:
        key = _cache_key(request)
        entry = self._lookup(key)
        if entry is None:
            # Another writer — a sibling thread's transport, or another
            # *process* sharing the cache directory — may have appended a
            # manifest since the last scan; re-reading a few file tails is
            # far cheaper than re-fetching, so check before declaring a miss.
            entry = self._lookup_rescan(key)
        if entry is not None:
            response = self._response_from(request, entry)
            if response is not None:
                if self.metrics is not None:
                    self.metrics.add("cache_hits")
                obs_trace.event("transport.cache_hit",
                                {"url": str(request.url)})
                return response
        if self.metrics is not None:
            self.metrics.add("cache_misses")
        response = await self.inner.send(request)
        if response.status not in RETRYABLE_STATUS_CODES:
            body_sha = self._store_body(response.body)
            entry = {"key": key, "url": str(request.url),
                     "status": response.status,
                     "headers": response.headers.as_dict(),
                     "body_sha": body_sha, "elapsed_ms": response.elapsed_ms,
                     "served_variant": response.served_variant}
            self._append_manifest(entry)
            self._remember(key, entry)
            if self.metrics is not None:
                self.metrics.add("cache_stores")
        return response


# -- cache maintenance --------------------------------------------------------------


#: Name of the folded manifest :func:`compact_cache` produces.
COMPACTED_MANIFEST = "manifest-00-compacted.jsonl"


@dataclass
class CacheCompactionStats:
    """What one :func:`compact_cache` pass did."""

    manifests_folded: int = 0
    entries: int = 0
    orphan_bodies_removed: int = 0
    bytes_reclaimed: int = 0

    def summary_lines(self) -> list[str]:
        return [f"folded {self.manifests_folded} manifests into 1 "
                f"({self.entries} entries)",
                f"swept {self.orphan_bodies_removed} orphaned bodies "
                f"({self.bytes_reclaimed} bytes reclaimed)"]


def compact_cache(cache_dir: str | Path, *,
                  sweep_orphans: bool = True) -> CacheCompactionStats:
    """Fold every per-writer manifest into one; optionally sweep orphans.

    A long-lived or distributed crawl leaves one ``manifest-*.jsonl`` per
    writer (every transport stack of every window of every worker process),
    so the load path re-parses an ever-growing file set.  Compaction merges
    them — same last-file-wins semantics as loading — into a single
    deterministic (key-sorted) manifest written with the temp-file +
    ``os.replace`` + fsync pattern, then deletes the originals; a crash in
    between leaves duplicates that load idempotently.

    With ``sweep_orphans`` the content-addressed body store is swept too:
    any body (or abandoned ``.partial`` temp) not referenced by the merged
    index is deleted.  Orphans are what a crash between a body store and
    its manifest fsync leaves behind — persisted payloads no manifest line
    claims, which warm re-runs would silently re-fetch forever.

    This is an *offline* maintenance operation: run it when no writer is
    actively storing into the directory, or a just-stored body whose
    manifest line is still in flight could be swept as an orphan.
    """
    cache_dir = Path(cache_dir)
    index = _ManifestIndex(cache_dir)
    entries = index.snapshot()
    target = cache_dir / COMPACTED_MANIFEST
    originals = [path for path in sorted(cache_dir.glob("manifest-*.jsonl"))
                 if path != target]
    stats = CacheCompactionStats(manifests_folded=len(originals) + int(target.exists()),
                                 entries=len(entries))
    descriptor, partial = tempfile.mkstemp(dir=cache_dir, prefix=".compact-",
                                           suffix=".partial")
    with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
        for key in sorted(entries):
            handle.write(json.dumps(entries[key], ensure_ascii=False))
            handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(partial, target)
    for path in originals:
        path.unlink(missing_ok=True)
    if sweep_orphans:
        referenced = {entry.get("body_sha") for entry in entries.values()}
        objects = cache_dir / "objects"
        if objects.is_dir():
            for path in sorted(objects.glob("*/*")):
                if not path.is_file() or path.name in referenced:
                    continue
                try:
                    size = path.stat().st_size
                    path.unlink()
                except OSError:
                    continue
                stats.orphan_bodies_removed += 1
                stats.bytes_reclaimed += size
    return stats


# -- composition --------------------------------------------------------------------


class AsyncTransportSyncAdapter:
    """Lifts an :class:`AsyncTransport` into the blocking ``Transport`` protocol.

    The inverse of :class:`~repro.crawler.fetcher.SyncTransportAdapter`:
    each ``send`` drives one event loop to completion, which lets the
    historical blocking fetch path (``CrawlSession.fetch`` →
    ``Fetcher.fetch``) run over an async-native stack unchanged.  Callers
    must not already be inside a running loop — the same contract as
    :func:`~repro.crawler.fetcher.run_coroutine`.
    """

    def __init__(self, inner: AsyncTransport) -> None:
        self.inner = inner

    def send(self, request: Request) -> Response:
        return run_coroutine(self.inner.send(request))


@dataclass
class TransportStack:
    """An assembled transport stack and the handles the pipeline needs.

    Attributes:
        transport: The outermost layer (what the fetcher sends through).
        metrics: The shared counters every layer increments.
        closers: Layer ``close()`` callbacks, outermost first.
    """

    transport: AsyncTransport
    metrics: TransportMetrics
    closers: tuple[Callable[[], None], ...] = ()

    def close(self) -> None:
        """Release pooled connections and manifest handles (idempotent)."""
        for closer in self.closers:
            closer()

    def sync_transport(self) -> Transport:
        """The stack as a blocking ``Transport`` (one event loop per send)."""
        return AsyncTransportSyncAdapter(self.transport)


def build_transport_stack(base: AsyncTransport, *,
                          metrics: TransportMetrics | None = None,
                          retry: RetryPolicy | None = None,
                          rng_factory: Callable[[str], random.Random] | None = None,
                          rate_per_host: float | None = None,
                          burst: float = 1.0,
                          max_per_host: int | None = None,
                          respect_robots: bool = False,
                          user_agent: str = "LangCruxBot/1.0",
                          cache_dir: str | Path | None = None,
                          refresh_cache: bool = False,
                          cache_fsync: str = "close") -> TransportStack:
    """Compose the transport layers around ``base``.

    Bottom-up: ``base`` → instrumentation → politeness (when rate limiting,
    concurrency caps or robots enforcement are requested) → retries (when a
    ``retry`` policy is given) → crawl cache (when ``cache_dir`` is given).
    The cache sits on top so a hit skips politeness waits and retries
    entirely — a replayed fetch costs no wall-clock and no tokens.
    """
    stack_metrics = metrics if metrics is not None else TransportMetrics()
    closers: list[Callable[[], None]] = []
    base_close = getattr(base, "close", None)
    if callable(base_close):
        closers.append(base_close)
    if getattr(base, "metrics", False) is None:
        base.metrics = stack_metrics  # adopt the stack's shared counters
    transport: AsyncTransport = InstrumentedTransport(base, stack_metrics)
    if rate_per_host is not None or max_per_host is not None or respect_robots:
        transport = PoliteTransport(transport, rate_per_host=rate_per_host,
                                    burst=burst, max_per_host=max_per_host,
                                    respect_robots=respect_robots,
                                    user_agent=user_agent, metrics=stack_metrics)
    if retry is not None:
        transport = RetryingTransport(transport, retry, rng_factory=rng_factory,
                                      metrics=stack_metrics)
    if cache_dir is not None:
        caching = CachingTransport(transport, cache_dir, metrics=stack_metrics,
                                   refresh=refresh_cache, fsync=cache_fsync)
        closers.insert(0, caching.close)
        transport = caching
    return TransportStack(transport=transport, metrics=stack_metrics,
                          closers=tuple(closers))

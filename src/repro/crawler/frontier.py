"""URL frontier with deduplication and per-host politeness.

The frontier holds URLs awaiting a visit.  It guarantees that

* a URL is handed out at most once per crawl (dedup on the normalised URL);
* requests to the same host are spaced by at least the host's politeness
  delay (a default, overridable by robots ``Crawl-delay``);
* higher-priority entries (better CrUX rank) are dispatched first among the
  hosts that are currently allowed to be contacted.

Time is injected as a callable so that tests and the simulated crawl can run
on a virtual clock instead of sleeping.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.crawler.http import URL


@dataclass(frozen=True)
class FrontierEntry:
    """A URL scheduled for crawling.

    Attributes:
        url: The URL to fetch.
        priority: Smaller is more urgent (CrUX rank is used directly).
        country_code: The country list this URL was scheduled for.
        depth: Link depth from the seed (0 = the seed itself).
    """

    url: URL
    priority: int = 0
    country_code: str | None = None
    depth: int = 0


class Frontier:
    """Priority frontier with per-host politeness.

    Args:
        default_delay: Minimum seconds between two requests to one host.
        clock: Callable returning the current time in seconds.  The crawler
            passes a virtual clock; the default is a monotonically increasing
            counter so that the frontier works standalone in tests.
    """

    def __init__(self, default_delay: float = 1.0,
                 clock: Callable[[], float] | None = None) -> None:
        self.default_delay = default_delay
        self._clock = clock or _StepClock()
        self._heap: list[tuple[int, int, FrontierEntry]] = []
        self._counter = itertools.count()
        self._seen: set[str] = set()
        self._next_allowed: dict[str, float] = {}
        self._host_delays: dict[str, float] = {}

    # -- scheduling ----------------------------------------------------------

    def add(self, entry: FrontierEntry) -> bool:
        """Schedule ``entry``; returns ``False`` when the URL was seen before."""
        key = str(entry.url)
        if key in self._seen:
            return False
        self._seen.add(key)
        heapq.heappush(self._heap, (entry.priority, next(self._counter), entry))
        return True

    def add_url(self, url: URL | str, *, priority: int = 0, country_code: str | None = None,
                depth: int = 0) -> bool:
        parsed = url if isinstance(url, URL) else URL.parse(url)
        return self.add(FrontierEntry(url=parsed, priority=priority,
                                      country_code=country_code, depth=depth))

    def set_host_delay(self, host: str, delay: float) -> None:
        """Override the politeness delay for one host (robots Crawl-delay)."""
        self._host_delays[host] = delay

    # -- retrieval -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def seen_count(self) -> int:
        return len(self._seen)

    def _delay_for(self, host: str) -> float:
        return self._host_delays.get(host, self.default_delay)

    def pop(self) -> FrontierEntry | None:
        """Next entry whose host is allowed to be contacted now.

        Entries whose host is still inside its politeness window are skipped
        over (and re-queued) in favour of the next eligible entry; when no
        entry is eligible the earliest-allowed one is returned anyway and the
        caller is expected to wait (the simulated crawler advances its clock
        instead).  Returns ``None`` when the frontier is empty.
        """
        if not self._heap:
            return None
        now = self._clock()
        deferred: list[tuple[int, int, FrontierEntry]] = []
        chosen: FrontierEntry | None = None
        while self._heap:
            priority, counter, entry = heapq.heappop(self._heap)
            allowed_at = self._next_allowed.get(entry.url.host, 0.0)
            if allowed_at <= now:
                chosen = entry
                break
            deferred.append((priority, counter, entry))
        if chosen is None:
            # Everything is throttled; hand out the overall best entry.
            deferred.sort()
            priority, counter, chosen = deferred.pop(0)
        for item in deferred:
            heapq.heappush(self._heap, item)
        self._next_allowed[chosen.url.host] = max(now, self._next_allowed.get(chosen.url.host, 0.0)) \
            + self._delay_for(chosen.url.host)
        return chosen

    def drain(self) -> list[FrontierEntry]:
        """Pop every remaining entry, in dispatch order (used by tests)."""
        entries = []
        while len(self) > 0:
            entry = self.pop()
            if entry is None:
                break
            entries.append(entry)
        return entries


class _StepClock:
    """A fallback clock that advances by one second per reading."""

    def __init__(self) -> None:
        self._now = 0.0

    def __call__(self) -> float:
        self._now += 1.0
        return self._now

"""Crawl sessions bound to a vantage point.

A :class:`CrawlSession` packages a fetcher together with the vantage point
(VPN exit) it crawls from, plus robots handling and a virtual clock.  The
LangCrUX crawler creates one session per country, mirroring the paper's
per-country VPN configuration.

Sessions expose the fetch path twice: the historical blocking methods
(:meth:`CrawlSession.fetch`, :meth:`CrawlSession.allowed`) and async
counterparts (:meth:`CrawlSession.fetch_async`,
:meth:`CrawlSession.allowed_async`) driven by an
:class:`~repro.crawler.fetcher.AsyncFetcher` over the same transport, same
retry policy and same stats counters.  :meth:`CrawlSession.fetch_batch` is
the sync facade over the async path: it issues up to ``max_in_flight``
concurrent requests and returns responses in input order.

A session's transport comes in one of two shapes:

* the historical blocking one — ``fetcher.transport`` is a sync
  ``Transport`` (the simulated web), and the async path lifts it through a
  :class:`~repro.crawler.fetcher.SyncTransportAdapter`;
* an async-native stack from :mod:`repro.crawler.transport` — set
  :attr:`CrawlSession.async_transport` (typically
  ``TransportStack.transport``) and the async path sends through it
  directly, while the blocking ``fetcher`` drives the same stack through
  its sync adapter.  :meth:`CrawlSession.close` releases the stack's pooled
  connections and cache handles when one is attached.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.crawler.fetcher import (
    AsyncFetcher,
    Fetcher,
    FetchError,
    SyncTransportAdapter,
    run_coroutine,
)
from repro.crawler.http import Response, URL
from repro.crawler.robots import RobotsPolicy, parse_robots_txt
from repro.crawler.vpn import VantagePoint


class VirtualClock:
    """A simulated clock advanced by recorded latencies instead of sleeping.

    Advancing is thread-safe so a batched crawl whose transport runs on
    worker threads can account latencies without racing the counter.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._lock = threading.Lock()

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        with self._lock:
            self._now += seconds

    @property
    def now(self) -> float:
        return self._now


@dataclass
class CrawlSession:
    """A fetcher bound to a vantage point, with robots caching.

    Attributes:
        fetcher: The underlying fetcher.
        vantage: The VPN exit (or cloud vantage) this session crawls from.
        clock: The session's virtual clock, advanced by response latencies.
        respect_robots: Whether to consult robots.txt before page fetches.
        blocking_transport: Whether the transport's ``send`` genuinely blocks
            (a real HTTP client would; the simulated transport does not).
            When true, batched fetches offload sends to worker threads so
            in-flight requests overlap.
        async_transport: An async-native transport (e.g. an assembled
            :class:`~repro.crawler.transport.TransportStack`'s outermost
            layer).  When set, :meth:`async_fetcher` sends through it
            directly instead of adapting ``fetcher.transport``.
        transport_stack: The owning stack, kept so :meth:`close` can release
            its resources (pooled connections, cache manifests).
    """

    fetcher: Fetcher
    vantage: VantagePoint
    clock: VirtualClock = field(default_factory=VirtualClock)
    respect_robots: bool = True
    blocking_transport: bool = False
    async_transport: object | None = None
    transport_stack: object | None = None
    _robots_cache: dict[str, RobotsPolicy] = field(default_factory=dict)

    def close(self) -> None:
        """Release the attached transport stack's resources (idempotent)."""
        stack = self.transport_stack
        if stack is not None and hasattr(stack, "close"):
            stack.close()

    # -- robots ----------------------------------------------------------------

    def _policy_from(self, response: Response) -> RobotsPolicy:
        if response.ok and response.body:
            return parse_robots_txt(response.body)
        return RobotsPolicy.allow_all()

    def _robots_for(self, url: URL) -> RobotsPolicy:
        if url.host in self._robots_cache:
            return self._robots_cache[url.host]
        robots_url = url.with_path("/robots.txt")
        try:
            response = self.fetcher.fetch(robots_url,
                                          client_country=self.vantage.country_code,
                                          via_vpn=self.vantage.via_vpn)
            policy = self._policy_from(response)
        except FetchError:
            policy = RobotsPolicy.allow_all()
        self._robots_cache[url.host] = policy
        return policy

    def allowed(self, url: URL | str) -> bool:
        """Whether robots rules allow fetching ``url`` from this session."""
        if not self.respect_robots:
            return True
        parsed = url if isinstance(url, URL) else URL.parse(url)
        policy = self._robots_for(parsed)
        return policy.can_fetch(self.fetcher.config.user_agent, parsed.path)

    # -- blocking fetch ---------------------------------------------------------

    def fetch(self, url: URL | str) -> Response:
        """Fetch ``url`` from this session's vantage, advancing the clock."""
        response = self.fetcher.fetch(url,
                                      client_country=self.vantage.country_code,
                                      via_vpn=self.vantage.via_vpn)
        self.clock.advance(response.elapsed_ms / 1000.0)
        return response

    # -- async fetch -------------------------------------------------------------

    def async_fetcher(self) -> AsyncFetcher:
        """An async fetcher over this session's transport and stats.

        Each call builds a fresh (cheap) instance so one event loop never
        outlives its fetcher; the transport, retry policy and stats dict are
        shared with the blocking :attr:`fetcher`.  Sessions with an
        async-native :attr:`async_transport` send through it directly;
        otherwise the blocking transport is lifted through a
        :class:`~repro.crawler.fetcher.SyncTransportAdapter`.
        """
        if self.async_transport is not None:
            return AsyncFetcher(self.async_transport, self.fetcher.config,
                                stats=self.fetcher.stats)
        adapter = SyncTransportAdapter(self.fetcher.transport,
                                       blocking=self.blocking_transport)
        return AsyncFetcher(adapter, self.fetcher.config, stats=self.fetcher.stats)

    async def _robots_for_async(self, url: URL, fetcher: AsyncFetcher) -> RobotsPolicy:
        # One candidate per origin means concurrent tasks touch distinct
        # hosts, so a per-host cache entry is filled by exactly one task.
        if url.host in self._robots_cache:
            return self._robots_cache[url.host]
        robots_url = url.with_path("/robots.txt")
        try:
            response = await fetcher.fetch(robots_url,
                                           client_country=self.vantage.country_code,
                                           via_vpn=self.vantage.via_vpn)
            policy = self._policy_from(response)
        except FetchError:
            policy = RobotsPolicy.allow_all()
        self._robots_cache[url.host] = policy
        return policy

    async def allowed_async(self, url: URL | str,
                            fetcher: AsyncFetcher | None = None) -> bool:
        """Async variant of :meth:`allowed`."""
        if not self.respect_robots:
            return True
        parsed = url if isinstance(url, URL) else URL.parse(url)
        policy = await self._robots_for_async(parsed, fetcher or self.async_fetcher())
        return policy.can_fetch(self.fetcher.config.user_agent, parsed.path)

    async def fetch_async(self, url: URL | str,
                          fetcher: AsyncFetcher | None = None) -> Response:
        """Async variant of :meth:`fetch` (advances the clock identically)."""
        response = await (fetcher or self.async_fetcher()).fetch(
            url, client_country=self.vantage.country_code,
            via_vpn=self.vantage.via_vpn)
        self.clock.advance(response.elapsed_ms / 1000.0)
        return response

    def fetch_batch(self, urls: Sequence[URL | str] | Iterable[URL | str], *,
                    max_in_flight: int = 8,
                    return_exceptions: bool = False) -> list[Response]:
        """Fetch ``urls`` concurrently from this vantage, in input order.

        The sync facade over the async stack: at most ``max_in_flight``
        requests are in flight at once, and the clock advances by every
        response's latency (batch wall-clock accounting is the scheduler's
        concern, not the session's).
        """

        async def batch() -> list[Response]:
            fetcher = self.async_fetcher()
            responses = await fetcher.fetch_many(
                urls, client_country=self.vantage.country_code,
                via_vpn=self.vantage.via_vpn, max_in_flight=max_in_flight,
                return_exceptions=return_exceptions)
            for response in responses:
                if isinstance(response, Response):
                    self.clock.advance(response.elapsed_ms / 1000.0)
            return responses

        return run_coroutine(batch())

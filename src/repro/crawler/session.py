"""Crawl sessions bound to a vantage point.

A :class:`CrawlSession` packages a fetcher together with the vantage point
(VPN exit) it crawls from, plus robots handling and a virtual clock.  The
LangCrUX crawler creates one session per country, mirroring the paper's
per-country VPN configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crawler.fetcher import Fetcher, FetchError
from repro.crawler.http import Response, URL
from repro.crawler.robots import RobotsPolicy, parse_robots_txt
from repro.crawler.vpn import VantagePoint


class VirtualClock:
    """A simulated clock advanced by recorded latencies instead of sleeping."""

    def __init__(self) -> None:
        self._now = 0.0

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds

    @property
    def now(self) -> float:
        return self._now


@dataclass
class CrawlSession:
    """A fetcher bound to a vantage point, with robots caching.

    Attributes:
        fetcher: The underlying fetcher.
        vantage: The VPN exit (or cloud vantage) this session crawls from.
        clock: The session's virtual clock, advanced by response latencies.
        respect_robots: Whether to consult robots.txt before page fetches.
    """

    fetcher: Fetcher
    vantage: VantagePoint
    clock: VirtualClock = field(default_factory=VirtualClock)
    respect_robots: bool = True
    _robots_cache: dict[str, RobotsPolicy] = field(default_factory=dict)

    def _robots_for(self, url: URL) -> RobotsPolicy:
        if url.host in self._robots_cache:
            return self._robots_cache[url.host]
        robots_url = url.with_path("/robots.txt")
        policy = RobotsPolicy.allow_all()
        try:
            response = self.fetcher.fetch(robots_url,
                                          client_country=self.vantage.country_code,
                                          via_vpn=self.vantage.via_vpn)
            if response.ok and response.body:
                policy = parse_robots_txt(response.body)
        except FetchError:
            policy = RobotsPolicy.allow_all()
        self._robots_cache[url.host] = policy
        return policy

    def allowed(self, url: URL | str) -> bool:
        """Whether robots rules allow fetching ``url`` from this session."""
        if not self.respect_robots:
            return True
        parsed = url if isinstance(url, URL) else URL.parse(url)
        policy = self._robots_for(parsed)
        return policy.can_fetch(self.fetcher.config.user_agent, parsed.path)

    def fetch(self, url: URL | str) -> Response:
        """Fetch ``url`` from this session's vantage, advancing the clock."""
        response = self.fetcher.fetch(url,
                                      client_country=self.vantage.country_code,
                                      via_vpn=self.vantage.via_vpn)
        self.clock.advance(response.elapsed_ms / 1000.0)
        return response

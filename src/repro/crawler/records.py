"""Crawl records and their on-disk format.

A crawl produces one :class:`CrawlRecord` per origin visited, containing one
:class:`PageSnapshot` per fetched page.  Records are the interface between
the crawling layer and the measurement layer: everything the analyses need
(HTML, final URL, served variant, fetch outcome, rank, country) is captured
here, so analyses can be re-run without re-crawling.

Records serialize to JSON Lines, one record per line, which is the format the
`LangCrUX` dataset files use as well.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Iterator


@dataclass
class PageSnapshot:
    """One fetched page.

    Attributes:
        url: The requested URL.
        final_url: The URL after redirects (equals ``url`` when none).
        status: Final HTTP status code (0 when the fetch raised).
        html: Page HTML ("" for non-HTML or failed fetches).
        served_variant: The variant label reported by the synthetic origin
            (``localized``/``global``), ``None`` for real origins or errors.
        elapsed_ms: Simulated fetch latency.
        error: Error description when the fetch failed, else ``None``.
    """

    url: str
    final_url: str
    status: int
    html: str = ""
    served_variant: str | None = None
    elapsed_ms: float = 0.0
    error: str | None = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300 and self.error is None


@dataclass
class CrawlRecord:
    """All pages fetched from one origin during a crawl.

    Attributes:
        domain: The origin's host name.
        country_code: The country list this origin belongs to.
        language_code: The country's target language.
        rank: CrUX-style rank of the origin.
        vantage_country: The VPN exit country used ("" for a cloud vantage).
        via_vpn: Whether the crawl used a VPN exit.
        pages: Snapshots of the fetched pages (the homepage first).
    """

    domain: str
    country_code: str
    language_code: str
    rank: int
    vantage_country: str = ""
    via_vpn: bool = True
    pages: list[PageSnapshot] = field(default_factory=list)

    @property
    def homepage(self) -> PageSnapshot | None:
        return self.pages[0] if self.pages else None

    @property
    def succeeded(self) -> bool:
        """Whether at least the homepage was fetched successfully."""
        home = self.homepage
        return home is not None and home.ok and bool(home.html)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "CrawlRecord":
        pages = [PageSnapshot(**page) for page in payload.get("pages", [])]
        fields = {key: value for key, value in payload.items() if key != "pages"}
        return cls(pages=pages, **fields)


def write_records_jsonl(records: Iterable[CrawlRecord], path: str | Path) -> int:
    """Write records to ``path`` in JSON Lines format; returns the count written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict(), ensure_ascii=False))
            handle.write("\n")
            count += 1
    return count


def read_records_jsonl(path: str | Path) -> Iterator[CrawlRecord]:
    """Stream records back from a JSON Lines file."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            yield CrawlRecord.from_dict(json.loads(line))

"""HTTP primitives for the crawler.

The crawler talks to the (synthetic) web through a small, explicit HTTP
model: :class:`URL`, :class:`Headers`, :class:`Request` and
:class:`Response`.  Keeping these types independent of the transport means a
real ``urllib``/``httpx`` transport could be dropped in without touching any
measurement code — only :mod:`repro.crawler.fetcher` adapts between
transports and these types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping
from urllib.parse import urljoin, urlsplit, urlunsplit


class Headers:
    """Case-insensitive HTTP header collection.

    Header names are stored lowercased; lookups accept any casing.  Multiple
    values per name are not needed by this crawler and are not supported.
    """

    def __init__(self, items: Mapping[str, str] | None = None) -> None:
        self._items: dict[str, str] = {}
        for name, value in (items or {}).items():
            self[name] = value

    def __setitem__(self, name: str, value: str) -> None:
        self._items[name.lower()] = value

    def __getitem__(self, name: str) -> str:
        return self._items[name.lower()]

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._items

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self._items.items())

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Headers):
            return self._items == other._items
        return NotImplemented

    def get(self, name: str, default: str | None = None) -> str | None:
        return self._items.get(name.lower(), default)

    def as_dict(self) -> dict[str, str]:
        return dict(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Headers({self._items!r})"


@dataclass(frozen=True)
class URL:
    """A parsed absolute URL.

    Only the components the crawler needs are modelled: scheme, host, port,
    path and query.  Fragments are dropped at parse time because they never
    reach the server and would otherwise defeat frontier deduplication.
    """

    scheme: str
    host: str
    path: str = "/"
    query: str = ""
    port: int | None = None

    @classmethod
    def parse(cls, raw: str) -> "URL":
        """Parse an absolute URL string.

        Raises:
            ValueError: When the URL is relative, has no host, or uses a
                scheme other than http/https.
        """
        parts = urlsplit(raw.strip())
        if parts.scheme not in ("http", "https"):
            raise ValueError(f"unsupported or missing scheme in URL {raw!r}")
        if not parts.hostname:
            raise ValueError(f"URL has no host: {raw!r}")
        return cls(
            scheme=parts.scheme,
            host=parts.hostname.lower(),
            path=parts.path or "/",
            query=parts.query,
            port=parts.port,
        )

    @classmethod
    def join(cls, base: "URL", reference: str) -> "URL":
        """Resolve ``reference`` (possibly relative) against ``base``."""
        return cls.parse(urljoin(str(base), reference))

    @property
    def origin(self) -> str:
        """Scheme plus host (plus explicit port), e.g. ``https://example.com``."""
        port = f":{self.port}" if self.port else ""
        return f"{self.scheme}://{self.host}{port}"

    def with_path(self, path: str, query: str = "") -> "URL":
        return URL(scheme=self.scheme, host=self.host, path=path or "/", query=query, port=self.port)

    def __str__(self) -> str:
        netloc = self.host if self.port is None else f"{self.host}:{self.port}"
        return urlunsplit((self.scheme, netloc, self.path, self.query, ""))


@dataclass(frozen=True)
class Request:
    """An outgoing HTTP request."""

    url: URL
    method: str = "GET"
    headers: Headers = field(default_factory=Headers)
    client_country: str | None = None
    via_vpn: bool = False

    def with_url(self, url: URL) -> "Request":
        """A copy of this request pointing at ``url`` (used for redirects)."""
        return Request(url=url, method=self.method, headers=self.headers,
                       client_country=self.client_country, via_vpn=self.via_vpn)


@dataclass(frozen=True)
class Response:
    """An HTTP response as returned by a transport."""

    url: URL
    status: int
    headers: Headers = field(default_factory=Headers)
    body: str = ""
    elapsed_ms: float = 0.0
    served_variant: str | None = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def is_redirect(self) -> bool:
        return self.status in (301, 302, 303, 307, 308) and "location" in self.headers

    @property
    def content_type(self) -> str:
        return (self.headers.get("content-type") or "").split(";")[0].strip().lower()

    @property
    def is_html(self) -> bool:
        return self.content_type in ("text/html", "application/xhtml+xml")

    def redirect_target(self) -> URL | None:
        """The absolute redirect target, or ``None`` when not a redirect."""
        if not self.is_redirect:
            return None
        location = self.headers.get("location")
        if not location:
            return None
        try:
            return URL.join(self.url, location)
        except ValueError:
            return None


#: Status codes the fetcher treats as transient and retries.
RETRYABLE_STATUS_CODES = frozenset({429, 500, 502, 503, 504})


# -- wire-level conventions ----------------------------------------------------------
#
# Real HTTP has no notion of the crawl metadata the measurement layer rides
# on (which country the client appears from, whether the hop is VPN traffic,
# which variant the origin chose to serve).  When the crawler talks to a
# live :class:`repro.webgen.server.LocalSiteServer` over loopback, that
# metadata travels in private headers; real origins simply never see or set
# them, so the same transport works against both.

#: Request header carrying the vantage country (``Request.client_country``).
CLIENT_COUNTRY_HEADER = "x-langcrux-client-country"

#: Request header flagging VPN/proxy traffic (``Request.via_vpn``), "1"/"0".
VIA_VPN_HEADER = "x-langcrux-via-vpn"

#: Response header reporting which variant the synthetic origin served.
SERVED_VARIANT_HEADER = "x-langcrux-served-variant"


def parse_charset(content_type: str | None, default: str = "utf-8") -> str:
    """The ``charset`` parameter of a Content-Type header value.

    Used by wire transports to decode response bodies; falls back to
    ``default`` when the header is absent, has no charset parameter, or the
    parameter is malformed.
    """
    if not content_type:
        return default
    for part in content_type.split(";")[1:]:
        name, _, value = part.strip().partition("=")
        if name.strip().lower() == "charset":
            charset = value.strip().strip('"').strip("'")
            return charset or default
    return default

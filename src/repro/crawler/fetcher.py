"""Fetching pages through a transport.

The :class:`Fetcher` owns the behaviours a polite, robust crawler needs on
top of a raw transport: redirect following (with a hop limit), retrying
transient failures with exponential backoff, and consistent error reporting
via :class:`FetchError`.  The transport itself is a tiny protocol —
``send(Request) -> Response`` — with two implementations:

* :class:`SimulatedTransport` over :class:`repro.webgen.server.SyntheticWeb`,
  used throughout the reproduction (it also injects configurable transient
  failures so the retry path is genuinely exercised);
* anything else a downstream user plugs in (a real HTTP client would slot in
  here without changes elsewhere).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Protocol

from repro.crawler.http import Headers, Request, Response, RETRYABLE_STATUS_CODES, URL
from repro.webgen.server import SyntheticWeb


class FetchError(Exception):
    """Raised when a URL cannot be fetched after retries/redirects."""

    def __init__(self, message: str, *, url: URL | None = None, status: int | None = None) -> None:
        super().__init__(message)
        self.url = url
        self.status = status


class Transport(Protocol):
    """Minimal transport interface the fetcher depends on."""

    def send(self, request: Request) -> Response:  # pragma: no cover - protocol
        ...


class SimulatedTransport:
    """Transport over the synthetic web.

    Args:
        web: The synthetic web to dispatch requests to.
        failure_rate: Probability that a request fails transiently with a 503
            before reaching the origin, exercising the fetcher's retry logic.
        latency_ms: Base simulated latency recorded on responses.
        rng: Random source for failure injection (seed for determinism).
    """

    def __init__(self, web: SyntheticWeb, *, failure_rate: float = 0.0,
                 latency_ms: float = 120.0, rng: random.Random | None = None) -> None:
        self.web = web
        self.failure_rate = failure_rate
        self.latency_ms = latency_ms
        self._rng = rng or random.Random(0)
        self.requests_sent = 0

    def send(self, request: Request) -> Response:
        self.requests_sent += 1
        elapsed = self.latency_ms * self._rng.uniform(0.5, 2.0)
        if self.failure_rate and self._rng.random() < self.failure_rate:
            return Response(url=request.url, status=503, headers=Headers({"retry-after": "1"}),
                            body="transient upstream error", elapsed_ms=elapsed)
        origin_response = self.web.request(
            request.url.host,
            request.url.path,
            client_country=request.client_country,
            via_vpn=request.via_vpn,
        )
        return Response(
            url=request.url,
            status=origin_response.status,
            headers=Headers(dict(origin_response.headers)),
            body=origin_response.body,
            elapsed_ms=elapsed,
            served_variant=origin_response.served_variant,
        )


@dataclass
class FetcherConfig:
    """Retry/redirect policy of the fetcher."""

    max_redirects: int = 5
    max_retries: int = 3
    backoff_base_s: float = 0.0  # kept at zero in simulation; real transports would sleep
    user_agent: str = "LangCruxBot/1.0 (+https://example.org/langcrux)"


class Fetcher:
    """Fetches URLs through a transport with retries and redirect handling."""

    def __init__(self, transport: Transport, config: FetcherConfig | None = None) -> None:
        self.transport = transport
        self.config = config or FetcherConfig()
        self.stats = {"requests": 0, "retries": 0, "redirects": 0, "failures": 0}

    def _send_once(self, request: Request) -> Response:
        self.stats["requests"] += 1
        headers = Headers(request.headers.as_dict())
        headers["user-agent"] = self.config.user_agent
        return self.transport.send(Request(url=request.url, method=request.method,
                                           headers=headers,
                                           client_country=request.client_country,
                                           via_vpn=request.via_vpn))

    def _send_with_retries(self, request: Request) -> Response:
        response = self._send_once(request)
        attempts = 0
        while response.status in RETRYABLE_STATUS_CODES and attempts < self.config.max_retries:
            attempts += 1
            self.stats["retries"] += 1
            response = self._send_once(request)
        return response

    def fetch(self, url: URL | str, *, client_country: str | None = None,
              via_vpn: bool = False) -> Response:
        """Fetch ``url``, following redirects and retrying transient errors.

        Returns the final response, which may still be an error response
        (e.g. 403 from a VPN-blocking origin or 404); the caller decides how
        to treat non-retryable failures.

        Raises:
            FetchError: When a redirect loop/chain exceeds the hop limit or a
                redirect has no usable target.
        """
        parsed = url if isinstance(url, URL) else URL.parse(url)
        request = Request(url=parsed, client_country=client_country, via_vpn=via_vpn)
        response = self._send_with_retries(request)
        hops = 0
        while response.is_redirect:
            hops += 1
            if hops > self.config.max_redirects:
                self.stats["failures"] += 1
                raise FetchError(f"too many redirects fetching {parsed}", url=parsed,
                                 status=response.status)
            target = response.redirect_target()
            if target is None:
                self.stats["failures"] += 1
                raise FetchError(f"redirect without usable location from {response.url}",
                                 url=response.url, status=response.status)
            self.stats["redirects"] += 1
            request = request.with_url(target)
            response = self._send_with_retries(request)
        if not response.ok:
            self.stats["failures"] += 1
        return response

"""Fetching pages through a transport.

The :class:`Fetcher` owns the behaviours a polite, robust crawler needs on
top of a raw transport: redirect following (with a hop limit), retrying
transient failures with exponential backoff, and consistent error reporting
via :class:`FetchError`.  The transport itself is a tiny protocol —
``send(Request) -> Response`` — with two implementations:

* :class:`SimulatedTransport` over :class:`repro.webgen.server.SyntheticWeb`,
  used throughout the reproduction (it also injects configurable transient
  failures so the retry path is genuinely exercised);
* the production stack in :mod:`repro.crawler.transport` —
  ``HttpAsyncTransport`` (real sockets, connection pooling) composed with
  politeness, retry and on-disk crawl-cache layers — which implements the
  async protocol below natively;
* anything else a downstream user plugs in.

A second, asynchronous stack lives alongside the blocking one:

* :class:`AsyncTransport` — the ``async`` twin of :class:`Transport`;
* :class:`SyncTransportAdapter` — lifts any blocking transport (including
  :class:`SimulatedTransport`, unchanged) into the async protocol, optionally
  offloading genuinely blocking ``send`` calls to worker threads;
* :class:`AsyncFetcher` — the same retry/redirect policy as
  :class:`Fetcher`, plus :meth:`AsyncFetcher.fetch_many`, which keeps up to
  ``max_in_flight`` requests in flight and returns responses in input order.

Determinism across interleavings comes from *per-host* RNG splitting: when
:class:`SimulatedTransport` is given an ``rng_factory``, every host draws its
latency and failure-injection randomness from its own stream, so the outcome
of fetching one origin no longer depends on which other origins were fetched
before (or concurrently with) it.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import threading
from dataclasses import dataclass
from typing import Awaitable, Callable, Iterable, Protocol, Sequence

from repro.crawler.http import Headers, Request, Response, RETRYABLE_STATUS_CODES, URL
from repro.webgen.server import SyntheticWeb


class FetchError(Exception):
    """Raised when a URL cannot be fetched after retries/redirects."""

    def __init__(self, message: str, *, url: URL | None = None, status: int | None = None) -> None:
        super().__init__(message)
        self.url = url
        self.status = status


class Transport(Protocol):
    """Minimal transport interface the fetcher depends on."""

    def send(self, request: Request) -> Response:  # pragma: no cover - protocol
        ...


class SimulatedTransport:
    """Transport over the synthetic web.

    Args:
        web: The synthetic web to dispatch requests to.
        failure_rate: Probability that a request fails transiently with a 503
            before reaching the origin, exercising the fetcher's retry logic.
        latency_ms: Base simulated latency recorded on responses.
        rng: Shared random source for failure injection (seed for
            determinism).  With a shared RNG the outcome of a request depends
            on how many requests preceded it, so only strictly sequential
            fetch orders are reproducible.
        rng_factory: Per-host RNG splitter — called once per host, the
            returned generator feeds every draw for that host's requests.
            This makes each origin's fetch outcome independent of the
            interleaving with other origins, which is what lets batched
            (async) and sequential crawls produce identical records.  Takes
            precedence over ``rng``.
    """

    def __init__(self, web: SyntheticWeb, *, failure_rate: float = 0.0,
                 latency_ms: float = 120.0, rng: random.Random | None = None,
                 rng_factory: Callable[[str], random.Random] | None = None) -> None:
        self.web = web
        self.failure_rate = failure_rate
        self.latency_ms = latency_ms
        self._rng = rng or random.Random(0)
        self._rng_factory = rng_factory
        self._host_rngs: dict[str, random.Random] = {}
        self._lock = threading.Lock()
        self.requests_sent = 0

    def _rng_for(self, host: str) -> random.Random:
        if self._rng_factory is None:
            return self._rng
        rng = self._host_rngs.get(host)
        if rng is None:
            rng = self._host_rngs[host] = self._rng_factory(host)
        return rng

    def send(self, request: Request) -> Response:
        # The lock keeps the counter and each host's draw sequence coherent
        # when a blocking adapter dispatches sends from worker threads; draws
        # for one request are atomic, and per-host streams make the ordering
        # across hosts irrelevant.
        with self._lock:
            self.requests_sent += 1
            rng = self._rng_for(request.url.host)
            elapsed = self.latency_ms * rng.uniform(0.5, 2.0)
            failed = bool(self.failure_rate) and rng.random() < self.failure_rate
        if failed:
            return Response(url=request.url, status=503, headers=Headers({"retry-after": "1"}),
                            body="transient upstream error", elapsed_ms=elapsed)
        origin_response = self.web.request(
            request.url.host,
            request.url.path,
            client_country=request.client_country,
            via_vpn=request.via_vpn,
        )
        return Response(
            url=request.url,
            status=origin_response.status,
            headers=Headers(dict(origin_response.headers)),
            body=origin_response.body,
            elapsed_ms=elapsed,
            served_variant=origin_response.served_variant,
        )


@dataclass
class FetcherConfig:
    """Retry/redirect policy of the fetcher."""

    max_redirects: int = 5
    max_retries: int = 3
    backoff_base_s: float = 0.0  # kept at zero in simulation; real transports would sleep
    user_agent: str = "LangCruxBot/1.0 (+https://example.org/langcrux)"


class Fetcher:
    """Fetches URLs through a transport with retries and redirect handling."""

    def __init__(self, transport: Transport, config: FetcherConfig | None = None) -> None:
        self.transport = transport
        self.config = config or FetcherConfig()
        self.stats = {"requests": 0, "retries": 0, "redirects": 0, "failures": 0}

    def _send_once(self, request: Request) -> Response:
        self.stats["requests"] += 1
        headers = Headers(request.headers.as_dict())
        headers["user-agent"] = self.config.user_agent
        return self.transport.send(Request(url=request.url, method=request.method,
                                           headers=headers,
                                           client_country=request.client_country,
                                           via_vpn=request.via_vpn))

    def _send_with_retries(self, request: Request) -> Response:
        response = self._send_once(request)
        attempts = 0
        while response.status in RETRYABLE_STATUS_CODES and attempts < self.config.max_retries:
            attempts += 1
            self.stats["retries"] += 1
            response = self._send_once(request)
        return response

    def fetch(self, url: URL | str, *, client_country: str | None = None,
              via_vpn: bool = False) -> Response:
        """Fetch ``url``, following redirects and retrying transient errors.

        Returns the final response, which may still be an error response
        (e.g. 403 from a VPN-blocking origin or 404); the caller decides how
        to treat non-retryable failures.

        Raises:
            FetchError: When a redirect loop/chain exceeds the hop limit or a
                redirect has no usable target.
        """
        parsed = url if isinstance(url, URL) else URL.parse(url)
        request = Request(url=parsed, client_country=client_country, via_vpn=via_vpn)
        response = self._send_with_retries(request)
        hops = 0
        while response.is_redirect:
            hops += 1
            if hops > self.config.max_redirects:
                self.stats["failures"] += 1
                raise FetchError(f"too many redirects fetching {parsed}", url=parsed,
                                 status=response.status)
            target = response.redirect_target()
            if target is None:
                self.stats["failures"] += 1
                raise FetchError(f"redirect without usable location from {response.url}",
                                 url=response.url, status=response.status)
            self.stats["redirects"] += 1
            request = request.with_url(target)
            response = self._send_with_retries(request)
        if not response.ok:
            self.stats["failures"] += 1
        return response


# -- asynchronous stack -------------------------------------------------------------


class AsyncTransport(Protocol):
    """Asynchronous twin of :class:`Transport`."""

    async def send(self, request: Request) -> Response:  # pragma: no cover - protocol
        ...


class SyncTransportAdapter:
    """Lifts a blocking :class:`Transport` into the :class:`AsyncTransport` protocol.

    Args:
        transport: The blocking transport to adapt.
        blocking: Whether ``transport.send`` genuinely blocks the calling
            thread.  ``False`` (the default) runs it inline on the event
            loop, which is correct for :class:`SimulatedTransport` — its
            latency is virtual, recorded on the response rather than slept.
            ``True`` offloads each send to a worker thread via
            :func:`asyncio.to_thread`, so a transport that really sleeps or
            does socket I/O overlaps across in-flight requests.
    """

    def __init__(self, transport: Transport, *, blocking: bool = False) -> None:
        self.transport = transport
        self.blocking = blocking

    async def send(self, request: Request) -> Response:
        if self.blocking:
            return await asyncio.to_thread(self.transport.send, request)
        return self.transport.send(request)


class AsyncFetcher:
    """Asynchronous counterpart of :class:`Fetcher`.

    Applies the identical retry/redirect policy (the two implementations are
    deliberate mirrors; behavioural changes must land in both), and adds
    :meth:`fetch_many` for issuing a bounded number of concurrent requests.

    Args:
        transport: The async transport to send through.
        config: Retry/redirect policy (shared with the sync fetcher).
        stats: Optional stats dict to update in place — pass a
            :class:`Fetcher`'s ``stats`` so sequential and batched fetches
            aggregate into one set of counters.
    """

    def __init__(self, transport: AsyncTransport, config: FetcherConfig | None = None,
                 *, stats: dict[str, int] | None = None) -> None:
        self.transport = transport
        self.config = config or FetcherConfig()
        self.stats = stats if stats is not None else {
            "requests": 0, "retries": 0, "redirects": 0, "failures": 0}

    async def _send_once(self, request: Request) -> Response:
        self.stats["requests"] += 1
        headers = Headers(request.headers.as_dict())
        headers["user-agent"] = self.config.user_agent
        return await self.transport.send(Request(url=request.url, method=request.method,
                                                 headers=headers,
                                                 client_country=request.client_country,
                                                 via_vpn=request.via_vpn))

    async def _send_with_retries(self, request: Request) -> Response:
        response = await self._send_once(request)
        attempts = 0
        while response.status in RETRYABLE_STATUS_CODES and attempts < self.config.max_retries:
            attempts += 1
            self.stats["retries"] += 1
            response = await self._send_once(request)
        return response

    async def fetch(self, url: URL | str, *, client_country: str | None = None,
                    via_vpn: bool = False) -> Response:
        """Async variant of :meth:`Fetcher.fetch` (same contract).

        Raises:
            FetchError: When a redirect loop/chain exceeds the hop limit or a
                redirect has no usable target.
        """
        parsed = url if isinstance(url, URL) else URL.parse(url)
        request = Request(url=parsed, client_country=client_country, via_vpn=via_vpn)
        response = await self._send_with_retries(request)
        hops = 0
        while response.is_redirect:
            hops += 1
            if hops > self.config.max_redirects:
                self.stats["failures"] += 1
                raise FetchError(f"too many redirects fetching {parsed}", url=parsed,
                                 status=response.status)
            target = response.redirect_target()
            if target is None:
                self.stats["failures"] += 1
                raise FetchError(f"redirect without usable location from {response.url}",
                                 url=response.url, status=response.status)
            self.stats["redirects"] += 1
            request = request.with_url(target)
            response = await self._send_with_retries(request)
        if not response.ok:
            self.stats["failures"] += 1
        return response

    async def fetch_many(self, urls: Sequence[URL | str] | Iterable[URL | str], *,
                         client_country: str | None = None, via_vpn: bool = False,
                         max_in_flight: int = 8, return_exceptions: bool = False,
                         window: tuple[int, int] | None = None) -> list[Response]:
        """Fetch ``urls`` with at most ``max_in_flight`` requests in flight.

        Responses come back in input order regardless of completion order.
        With ``return_exceptions`` a failed fetch yields its
        :class:`FetchError` in place of a response instead of aborting the
        whole batch.  ``window`` restricts the batch to the ``[start, stop)``
        slice of ``urls`` (a sub-shard window), returning only that slice's
        responses.
        """
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be positive, got {max_in_flight}")
        if window is not None:
            start, stop = window
            if start < 0 or stop < start:
                raise ValueError(f"window must satisfy 0 <= start <= stop, got {window}")
            urls = itertools.islice(urls, start, stop)
        semaphore = asyncio.Semaphore(max_in_flight)

        async def bounded(url: URL | str) -> Response:
            async with semaphore:
                return await self.fetch(url, client_country=client_country, via_vpn=via_vpn)

        return await asyncio.gather(*(bounded(url) for url in urls),
                                    return_exceptions=return_exceptions)


def run_coroutine(coroutine: Awaitable):
    """Drive ``coroutine`` to completion from synchronous code.

    Thin wrapper over :func:`asyncio.run` so every sync→async entry point in
    the crawling layer goes through one place.  Callers must not already be
    inside a running event loop (the batched crawl APIs are sync facades used
    by the per-shard pipeline functions, which never are).
    """
    return asyncio.run(coroutine)

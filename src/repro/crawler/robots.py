"""robots.txt handling.

Large-scale crawls are expected to honour robots exclusion rules.  The
synthetic origins rarely publish a robots.txt (they answer 404), in which
case everything is allowed — the same default real crawlers use — but the
parser implements the subset of the robots exclusion protocol needed to
behave correctly when one is present:

* ``User-agent`` groups, with ``*`` as fallback;
* ``Disallow`` and ``Allow`` rules with longest-match precedence, including
  the ``*`` (any run of characters) and trailing ``$`` (end anchor) pattern
  operators real-world robots files rely on;
* ``Crawl-delay`` as a per-host politeness hint consumed by the frontier and
  the transport politeness layer.

:class:`RobotsCache` adds the expiry policy a long-lived crawl needs: real
crawlers re-fetch robots.txt periodically (origins change their rules), so
cached policies age out after ``max_age_s`` and the caller re-fetches.  The
clock is injectable, which is how the tests — and the virtual-clock crawl
sessions — drive expiry deterministically.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Callable


def _compile_rule(pattern: str) -> re.Pattern:
    """Compile one Allow/Disallow pattern into an anchored-prefix regex.

    ``*`` matches any run of characters, a trailing ``$`` anchors the match
    at the end of the path; everything else is literal.  The compiled regex
    matches from the start of the path (robots rules are path prefixes).
    """
    anchored = pattern.endswith("$")
    if anchored:
        pattern = pattern[:-1]
    parts = [re.escape(part) for part in pattern.split("*")]
    return re.compile(".*".join(parts) + ("$" if anchored else ""))


@dataclass
class RuleGroup:
    """Rules applying to one set of user agents."""

    user_agents: list[str] = field(default_factory=list)
    allows: list[str] = field(default_factory=list)
    disallows: list[str] = field(default_factory=list)
    crawl_delay: float | None = None

    def applies_to(self, user_agent: str) -> bool:
        agent = user_agent.lower()
        return any(pattern == "*" or pattern in agent for pattern in self.user_agents)


@dataclass
class RobotsPolicy:
    """A parsed robots.txt, queryable per user agent and path."""

    groups: list[RuleGroup] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._rule_cache: dict[str, re.Pattern] = {}

    @classmethod
    def allow_all(cls) -> "RobotsPolicy":
        """The policy used when no robots.txt is served (or it is empty)."""
        return cls(groups=[])

    def _group_for(self, user_agent: str) -> RuleGroup | None:
        specific = [group for group in self.groups
                    if group.applies_to(user_agent) and "*" not in group.user_agents]
        if specific:
            return specific[0]
        wildcard = [group for group in self.groups if "*" in group.user_agents]
        return wildcard[0] if wildcard else None

    def _matches(self, rule: str, path: str) -> bool:
        compiled = self._rule_cache.get(rule)
        if compiled is None:
            compiled = self._rule_cache[rule] = _compile_rule(rule)
        return compiled.match(path) is not None

    def can_fetch(self, user_agent: str, path: str) -> bool:
        """Whether ``user_agent`` may fetch ``path``.

        Longest-match wins between Allow and Disallow (rule length measures
        specificity, wildcards included, as in Google's reference
        implementation); an empty Disallow pattern means "allow everything"
        per the protocol.
        """
        group = self._group_for(user_agent)
        if group is None:
            return True
        best_allow = max((len(rule) for rule in group.allows
                          if rule and self._matches(rule, path)), default=-1)
        best_disallow = max((len(rule) for rule in group.disallows
                             if rule and self._matches(rule, path)), default=-1)
        return best_allow >= best_disallow

    def crawl_delay(self, user_agent: str) -> float | None:
        group = self._group_for(user_agent)
        return group.crawl_delay if group else None


def parse_robots_txt(content: str) -> RobotsPolicy:
    """Parse robots.txt ``content`` into a :class:`RobotsPolicy`.

    The parser is forgiving: unknown directives are ignored, and malformed
    lines never raise — a broken robots.txt should not break the crawl.
    """
    policy = RobotsPolicy()
    current: RuleGroup | None = None
    last_directive_was_agent = False
    for raw_line in content.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line or ":" not in line:
            continue
        directive, _, value = line.partition(":")
        directive = directive.strip().lower()
        value = value.strip()
        if directive == "user-agent":
            if current is None or not last_directive_was_agent:
                current = RuleGroup()
                policy.groups.append(current)
            current.user_agents.append(value.lower())
            last_directive_was_agent = True
            continue
        last_directive_was_agent = False
        if current is None:
            continue
        if directive == "disallow":
            if value:
                current.disallows.append(value)
            continue
        if directive == "allow":
            if value:
                current.allows.append(value)
            continue
        if directive == "crawl-delay":
            try:
                current.crawl_delay = float(value)
            except ValueError:
                pass
    return policy


@dataclass
class _CacheEntry:
    policy: RobotsPolicy
    fetched_at: float


class RobotsCache:
    """Per-host robots policies with age-based expiry.

    A crawl that runs for days cannot trust a robots.txt fetched at its
    start: origins change their rules, and the protocol expects crawlers to
    re-fetch periodically.  Entries therefore expire ``max_age_s`` seconds
    after they were stored — :meth:`get` returns ``None`` for an expired (or
    absent) host, which is the caller's cue to re-fetch and :meth:`put` the
    fresh policy.

    Args:
        max_age_s: Seconds a stored policy stays valid.  ``None`` disables
            expiry (entries live for the cache's lifetime).
        clock: Monotonic time source; injectable so virtual-clock sessions
            and tests can drive expiry without sleeping.
    """

    def __init__(self, *, max_age_s: float | None = 3600.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_age_s is not None and max_age_s <= 0:
            raise ValueError(f"max_age_s must be positive or None, got {max_age_s}")
        self.max_age_s = max_age_s
        self._clock = clock
        self._entries: dict[str, _CacheEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, host: str) -> bool:
        return self.get(host) is not None

    def get(self, host: str) -> RobotsPolicy | None:
        """The cached policy for ``host``, or ``None`` when absent/expired.

        Expired entries are evicted on access, so a long run's cache does
        not accumulate stale policies for hosts it never revisits.
        """
        entry = self._entries.get(host)
        if entry is None:
            return None
        if self.max_age_s is not None and \
                self._clock() - entry.fetched_at >= self.max_age_s:
            del self._entries[host]
            return None
        return entry.policy

    def put(self, host: str, policy: RobotsPolicy) -> None:
        """Store ``policy`` for ``host``, stamped with the current clock."""
        self._entries[host] = _CacheEntry(policy=policy, fetched_at=self._clock())

    def invalidate(self, host: str) -> None:
        """Drop the cached policy for ``host`` (no-op when absent)."""
        self._entries.pop(host, None)

"""robots.txt handling.

Large-scale crawls are expected to honour robots exclusion rules.  The
synthetic origins rarely publish a robots.txt (they answer 404), in which
case everything is allowed — the same default real crawlers use — but the
parser implements the subset of the robots exclusion protocol needed to
behave correctly when one is present:

* ``User-agent`` groups, with ``*`` as fallback;
* ``Disallow`` and ``Allow`` rules with longest-match precedence;
* ``Crawl-delay`` as a per-host politeness hint consumed by the frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RuleGroup:
    """Rules applying to one set of user agents."""

    user_agents: list[str] = field(default_factory=list)
    allows: list[str] = field(default_factory=list)
    disallows: list[str] = field(default_factory=list)
    crawl_delay: float | None = None

    def applies_to(self, user_agent: str) -> bool:
        agent = user_agent.lower()
        return any(pattern == "*" or pattern in agent for pattern in self.user_agents)


@dataclass
class RobotsPolicy:
    """A parsed robots.txt, queryable per user agent and path."""

    groups: list[RuleGroup] = field(default_factory=list)

    @classmethod
    def allow_all(cls) -> "RobotsPolicy":
        """The policy used when no robots.txt is served (or it is empty)."""
        return cls(groups=[])

    def _group_for(self, user_agent: str) -> RuleGroup | None:
        specific = [group for group in self.groups
                    if group.applies_to(user_agent) and "*" not in group.user_agents]
        if specific:
            return specific[0]
        wildcard = [group for group in self.groups if "*" in group.user_agents]
        return wildcard[0] if wildcard else None

    def can_fetch(self, user_agent: str, path: str) -> bool:
        """Whether ``user_agent`` may fetch ``path``.

        Longest-match wins between Allow and Disallow; an empty Disallow
        pattern means "allow everything" per the protocol.
        """
        group = self._group_for(user_agent)
        if group is None:
            return True
        best_allow = max((len(rule) for rule in group.allows if rule and path.startswith(rule)),
                         default=-1)
        best_disallow = max((len(rule) for rule in group.disallows if rule and path.startswith(rule)),
                            default=-1)
        return best_allow >= best_disallow

    def crawl_delay(self, user_agent: str) -> float | None:
        group = self._group_for(user_agent)
        return group.crawl_delay if group else None


def parse_robots_txt(content: str) -> RobotsPolicy:
    """Parse robots.txt ``content`` into a :class:`RobotsPolicy`.

    The parser is forgiving: unknown directives are ignored, and malformed
    lines never raise — a broken robots.txt should not break the crawl.
    """
    policy = RobotsPolicy()
    current: RuleGroup | None = None
    last_directive_was_agent = False
    for raw_line in content.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line or ":" not in line:
            continue
        directive, _, value = line.partition(":")
        directive = directive.strip().lower()
        value = value.strip()
        if directive == "user-agent":
            if current is None or not last_directive_was_agent:
                current = RuleGroup()
                policy.groups.append(current)
            current.user_agents.append(value.lower())
            last_directive_was_agent = True
            continue
        last_directive_was_agent = False
        if current is None:
            continue
        if directive == "disallow":
            if value:
                current.disallows.append(value)
            continue
        if directive == "allow":
            if value:
                current.allows.append(value)
            continue
        if directive == "crawl-delay":
            try:
                current.crawl_delay = float(value)
            except ValueError:
                pass
    return policy

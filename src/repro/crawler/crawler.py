"""The LangCrUX crawler.

Ties the crawling substrate together: given CrUX entries for a country and a
crawl session bound to that country's VPN exit, the crawler visits each
origin, fetches its homepage (and optionally a bounded number of same-origin
subpages discovered from links), and emits one
:class:`~repro.crawler.records.CrawlRecord` per origin.

The crawler deliberately does *not* interpret page content beyond link
discovery: language validation, accessibility extraction and all analyses
happen downstream on the records, so a crawl can be stored once and
re-analysed many times (the same separation the paper's pipeline uses).

Two dispatch modes share the per-origin logic:

* :meth:`LangCruxCrawler.crawl_origin` / :meth:`LangCruxCrawler.crawl` — the
  historical blocking walk, one origin at a time;
* :meth:`LangCruxCrawler.crawl_batch` — the async batched walk: up to
  ``max_in_flight`` origins are crawled concurrently on one event loop, and
  records come back in entry order.  With a per-host RNG-split transport
  (see :class:`~repro.crawler.fetcher.SimulatedTransport`) every record is
  identical to what the sequential walk would have produced.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.crawler.fetcher import AsyncFetcher, FetchError, run_coroutine
from repro.crawler.frontier import Frontier, FrontierEntry
from repro.crawler.http import Response, URL
from repro.crawler.records import CrawlRecord, PageSnapshot
from repro.crawler.session import CrawlSession
from repro.html.parser import parse_html
from repro.webgen.crux import CruxEntry


@dataclass
class CrawlerConfig:
    """Crawl policy.

    Attributes:
        max_pages_per_site: Upper bound on pages fetched per origin
            (homepage included).
        follow_links: Whether to discover and fetch same-origin subpages.
        politeness_delay_s: Per-host delay fed to the frontier.
        respect_robots: Whether to consult robots.txt (on by default).
    """

    max_pages_per_site: int = 1
    follow_links: bool = False
    politeness_delay_s: float = 1.0
    respect_robots: bool = True


class LangCruxCrawler:
    """Crawls the origins of one country through one session."""

    def __init__(self, session: CrawlSession, config: CrawlerConfig | None = None,
                 *, progress: Callable[[CrawlRecord], None] | None = None) -> None:
        self.session = session
        self.config = config or CrawlerConfig()
        self.session.respect_robots = self.config.respect_robots
        self._progress = progress

    # -- single origin ---------------------------------------------------------

    @staticmethod
    def _snapshot_of(url: URL, response: Response) -> PageSnapshot:
        return PageSnapshot(
            url=str(url),
            final_url=str(response.url),
            status=response.status,
            html=response.body if response.ok and response.is_html else "",
            served_variant=response.served_variant,
            elapsed_ms=response.elapsed_ms,
            error=None if response.ok else f"HTTP {response.status}",
        )

    @staticmethod
    def _error_snapshot(url: URL, error: FetchError) -> PageSnapshot:
        return PageSnapshot(url=str(url), final_url=str(url), status=error.status or 0,
                            error=str(error))

    def _snapshot(self, url: URL) -> PageSnapshot:
        try:
            response = self.session.fetch(url)
        except FetchError as error:
            return self._error_snapshot(url, error)
        return self._snapshot_of(url, response)

    async def _snapshot_async(self, url: URL, fetcher: AsyncFetcher) -> PageSnapshot:
        try:
            response = await self.session.fetch_async(url, fetcher)
        except FetchError as error:
            return self._error_snapshot(url, error)
        return self._snapshot_of(url, response)

    def _discover_links(self, snapshot: PageSnapshot, origin: URL) -> list[URL]:
        """Same-origin links found on a fetched page, in document order."""
        if not snapshot.html:
            return []
        document = parse_html(snapshot.html, url=snapshot.final_url)
        links: list[URL] = []
        seen: set[str] = set()
        for anchor in document.find_all("a"):
            href = anchor.get("href")
            if not href:
                continue
            try:
                target = URL.join(origin, href)
            except ValueError:
                continue
            if target.host != origin.host:
                continue
            key = str(target)
            if key in seen:
                continue
            seen.add(key)
            links.append(target)
        return links

    def _start_record(self, entry: CruxEntry, language_code: str
                      ) -> tuple[CrawlRecord, Frontier]:
        record = CrawlRecord(
            domain=entry.origin,
            country_code=entry.country_code,
            language_code=language_code,
            rank=entry.rank,
            vantage_country=self.session.vantage.country_code or "",
            via_vpn=self.session.vantage.via_vpn,
        )
        origin = URL.parse(f"https://{entry.origin}/")
        frontier = Frontier(default_delay=self.config.politeness_delay_s,
                            clock=self.session.clock)
        frontier.add(FrontierEntry(url=origin, priority=entry.rank,
                                   country_code=entry.country_code, depth=0))
        return record, frontier

    def _schedule_links(self, frontier: Frontier, snapshot: PageSnapshot,
                        origin: URL, entry: CruxEntry, depth: int) -> None:
        if not self.config.follow_links or not snapshot.ok:
            return
        for link in self._discover_links(snapshot, origin):
            frontier.add(FrontierEntry(url=link, priority=entry.rank,
                                       country_code=entry.country_code,
                                       depth=depth + 1))

    def crawl_origin(self, entry: CruxEntry, language_code: str) -> CrawlRecord:
        """Crawl one origin and return its record."""
        origin = URL.parse(f"https://{entry.origin}/")
        record, frontier = self._start_record(entry, language_code)
        while len(record.pages) < self.config.max_pages_per_site:
            frontier_entry = frontier.pop()
            if frontier_entry is None:
                break
            if not self.session.allowed(frontier_entry.url):
                continue
            snapshot = self._snapshot(frontier_entry.url)
            record.pages.append(snapshot)
            self._schedule_links(frontier, snapshot, origin, entry, frontier_entry.depth)
        return record

    async def crawl_origin_async(self, entry: CruxEntry, language_code: str,
                                 fetcher: AsyncFetcher | None = None) -> CrawlRecord:
        """Async twin of :meth:`crawl_origin` — same walk, awaitable fetches.

        Pages of one origin are still fetched strictly in sequence (the
        frontier's politeness contract); concurrency lives one level up, in
        :meth:`crawl_batch`, where independent origins overlap.
        """
        fetcher = fetcher or self.session.async_fetcher()
        origin = URL.parse(f"https://{entry.origin}/")
        record, frontier = self._start_record(entry, language_code)
        while len(record.pages) < self.config.max_pages_per_site:
            frontier_entry = frontier.pop()
            if frontier_entry is None:
                break
            if not await self.session.allowed_async(frontier_entry.url, fetcher):
                continue
            snapshot = await self._snapshot_async(frontier_entry.url, fetcher)
            record.pages.append(snapshot)
            self._schedule_links(frontier, snapshot, origin, entry, frontier_entry.depth)
        return record

    # -- many origins ------------------------------------------------------------

    def crawl(self, entries: Iterable[CruxEntry], language_code: str) -> Iterator[CrawlRecord]:
        """Crawl ``entries`` in order, yielding one record per origin."""
        for entry in entries:
            record = self.crawl_origin(entry, language_code)
            if self._progress is not None:
                self._progress(record)
            yield record

    def crawl_batch(self, entries: Sequence[CruxEntry] | Iterable[CruxEntry],
                    language_code: str, *, max_in_flight: int = 8,
                    window: tuple[int, int] | None = None) -> list[CrawlRecord]:
        """Crawl ``entries`` with up to ``max_in_flight`` origins in flight.

        Returns records in entry order; progress callbacks also fire in entry
        order, once the whole batch has settled.  Determinism relative to the
        sequential walk requires a per-host RNG-split transport — with a
        shared transport RNG the interleaving would change each origin's
        draws.

        ``window`` restricts the batch to the ``[start, stop)`` slice of
        ``entries`` — the shape a sub-sharded selection walk hands out — so
        callers can point several batch calls at disjoint windows of one
        ranking without slicing it themselves.
        """
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be positive, got {max_in_flight}")
        if window is not None:
            start, stop = window
            if start < 0 or stop < start:
                raise ValueError(f"window must satisfy 0 <= start <= stop, got {window}")
            entries = itertools.islice(entries, start, stop)
        entry_list = list(entries)

        async def batch() -> list[CrawlRecord]:
            fetcher = self.session.async_fetcher()
            semaphore = asyncio.Semaphore(max_in_flight)

            async def one(entry: CruxEntry) -> CrawlRecord:
                async with semaphore:
                    return await self.crawl_origin_async(entry, language_code, fetcher)

            return list(await asyncio.gather(*(one(entry) for entry in entry_list)))

        records = run_coroutine(batch())
        if self._progress is not None:
            for record in records:
                self._progress(record)
        return records

"""Crawling substrate.

The paper crawls 120,000 sites with Puppeteer, routing traffic through
country-specific VPN exits.  This subpackage implements the crawling side of
that methodology against the synthetic web:

* :mod:`repro.crawler.http` — URL handling, requests, responses and headers.
* :mod:`repro.crawler.vpn` — VPN providers, vantage points and per-country
  exit selection (the ProtonVPN / Hotspot Shield combination of the paper).
* :mod:`repro.crawler.robots` — robots.txt parsing and politeness decisions.
* :mod:`repro.crawler.frontier` — a deduplicating URL frontier with per-host
  politeness delays.
* :mod:`repro.crawler.fetcher` — the transport abstraction (sync and async)
  plus the simulated transport over
  :class:`repro.webgen.server.SyntheticWeb`, retries, redirect handling and
  batched concurrent fetching.
* :mod:`repro.crawler.session` — a crawl session bound to a country vantage.
* :mod:`repro.crawler.records` — crawl records (page snapshots) and JSONL IO.
* :mod:`repro.crawler.crawler` — the LangCrUX crawler tying it all together.
"""

from repro.crawler.http import URL, Request, Response, Headers
from repro.crawler.vpn import VantagePoint, VPNProvider, VPNManager, DEFAULT_PROVIDERS
from repro.crawler.fetcher import (
    AsyncFetcher,
    AsyncTransport,
    Fetcher,
    FetchError,
    SimulatedTransport,
    SyncTransportAdapter,
    Transport,
)
from repro.crawler.frontier import Frontier, FrontierEntry
from repro.crawler.records import PageSnapshot, CrawlRecord, write_records_jsonl, read_records_jsonl
from repro.crawler.crawler import LangCruxCrawler, CrawlerConfig

__all__ = [
    "URL",
    "Request",
    "Response",
    "Headers",
    "VantagePoint",
    "VPNProvider",
    "VPNManager",
    "DEFAULT_PROVIDERS",
    "AsyncFetcher",
    "AsyncTransport",
    "Fetcher",
    "FetchError",
    "SimulatedTransport",
    "SyncTransportAdapter",
    "Transport",
    "Frontier",
    "FrontierEntry",
    "PageSnapshot",
    "CrawlRecord",
    "write_records_jsonl",
    "read_records_jsonl",
    "LangCruxCrawler",
    "CrawlerConfig",
]

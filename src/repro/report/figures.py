"""Text renderings of the paper's figures from a LangCrUX dataset.

Each ``render_figure*`` function computes the same series the corresponding
paper figure plots and renders it with :mod:`repro.report.text_charts`;
:func:`render_all_figures` stitches everything into one report document.
"""

from __future__ import annotations

from repro.core.analysis import (
    filter_breakdown_by_country,
    filter_breakdown_by_element,
    visible_text_script_summary,
)
from repro.core.dataset import LangCrUXDataset
from repro.core.kizuki import KizukiConfig, rescore_dataset
from repro.core.language_mix import classify_texts
from repro.core.mismatch import country_cdfs, low_native_accessibility_fraction
from repro.report.text_charts import bar_chart, cdf_chart, grouped_bar_chart, histogram_chart
from repro.stats.histogram import histogram
from repro.webgen.crux import CruxTable, RANK_BUCKETS

CDF_GRID = (0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
SCORE_BINS = (0, 30, 40, 50, 60, 70, 80, 90, 100.0001)


def render_figure2(dataset: LangCrUXDataset) -> str:
    """Figure 2: native-language share of visible text per country."""
    summary = visible_text_script_summary(dataset)
    values = {country: stats.mean for country, stats in sorted(summary.items())}
    return bar_chart(values, title="Figure 2 — mean native share of visible text (%)",
                     unit="%")


def render_figure3(dataset: LangCrUXDataset) -> str:
    """Figure 3: filtered accessibility texts by discard reason, per country."""
    breakdown = filter_breakdown_by_country(dataset)
    groups = {
        country: {category.display_name: share for category, share in sorted(
            categories.items(), key=lambda item: item[1], reverse=True)}
        for country, categories in sorted(breakdown.items())
    }
    return grouped_bar_chart(groups, unit="%",
                             title="Figure 3 — filtered accessibility texts by discard reason (%)")


def render_figure4(dataset: LangCrUXDataset) -> str:
    """Figure 4: native/English/mixed share of informative accessibility texts."""
    groups: dict[str, dict[str, float]] = {}
    for country in dataset.countries():
        texts: list[str] = []
        language = None
        for record in dataset.for_country(country):
            texts.extend(record.informative_texts())
            language = record.language_code
        if not texts or language is None:
            continue
        proportions = classify_texts(texts, language).proportions()
        groups[country] = {key: value * 100 for key, value in proportions.items()}
    return grouped_bar_chart(groups, unit="%",
                             title="Figure 4 — language of informative accessibility texts (%)")


def render_figure5(dataset: LangCrUXDataset) -> str:
    """Figure 5: CDFs of native share in visible vs accessibility text."""
    sections = ["Figure 5 — CDFs of native-language usage (visible vs accessibility)"]
    for country in dataset.countries():
        cdfs = country_cdfs(dataset, country)
        low = low_native_accessibility_fraction(dataset, country)
        sections.append(cdf_chart(
            {"visible": cdfs.visible, "accessibility": cdfs.accessibility}, CDF_GRID,
            title=f"[{country}] sites with <10% native accessibility text: {low * 100:.1f}%"))
    return "\n\n".join(sections)


def render_figure6(dataset: LangCrUXDataset, countries: tuple[str, ...] = ("bd", "th"),
                   config: KizukiConfig | None = None) -> str:
    """Figure 6: accessibility score distributions before/after Kizuki."""
    summary = rescore_dataset(dataset, countries, config=config)
    if summary.sites == 0:
        return "Figure 6 — no sites eligible for re-scoring"
    old_hist = histogram(summary.old_scores, SCORE_BINS)
    new_hist = histogram(summary.new_scores, SCORE_BINS)
    parts = [
        f"Figure 6 — accessibility scores before/after Kizuki ({', '.join(countries)}; "
        f"{summary.sites} sites)",
        histogram_chart(old_hist, title="original (language-unaware) scores"),
        histogram_chart(new_hist, title="Kizuki (language-aware) scores"),
        (f"score > 90: {summary.fraction_above(90, new=False) * 100:.1f}% -> "
         f"{summary.fraction_above(90, new=True) * 100:.1f}%   |   score = 100: "
         f"{summary.fraction_perfect(new=False) * 100:.1f}% -> "
         f"{summary.fraction_perfect(new=True) * 100:.1f}%"),
    ]
    return "\n\n".join(parts)


def render_figure7(crux_table: CruxTable) -> str:
    """Figure 7: rank-bucket distribution per country."""
    lines = ["Figure 7 — website rank distribution per country",
             f"{'country':<8}" + "".join(f"{f'<={bucket // 1000}k':>9}" for bucket in RANK_BUCKETS)]
    for country in crux_table.countries():
        buckets = crux_table.bucket_histogram(country)
        lines.append(f"{country:<8}" + "".join(f"{buckets.get(bucket, 0):>9}"
                                               for bucket in RANK_BUCKETS))
    return "\n".join(lines)


def render_figure8(dataset: LangCrUXDataset) -> str:
    """Figure 8: per-country summary of the visible vs accessibility scatter."""
    values: dict[str, float] = {}
    for country in dataset.countries():
        values[country] = low_native_accessibility_fraction(dataset, country) * 100
    return bar_chart(values, unit="%", sort=True,
                     title="Figure 8 — sites with <10% native accessibility text "
                           "despite native visible content (%)")


def render_figure9(dataset: LangCrUXDataset) -> str:
    """Figure 9: uninformative accessibility text by HTML element."""
    breakdown = filter_breakdown_by_element(dataset)
    groups = {
        element_id: {category.display_name: share for category, share in sorted(
            categories.items(), key=lambda item: item[1], reverse=True)}
        for element_id, categories in breakdown.items() if categories
    }
    return grouped_bar_chart(groups, unit="%",
                             title="Figure 9 — uninformative accessibility text by element (%)")


def render_all_figures(dataset: LangCrUXDataset, *, crux_table: CruxTable | None = None,
                       kizuki_countries: tuple[str, ...] = ("bd", "th")) -> str:
    """Render every figure that can be derived from ``dataset`` into one report."""
    sections = [
        render_figure2(dataset),
        render_figure3(dataset),
        render_figure4(dataset),
        render_figure5(dataset),
    ]
    available = tuple(country for country in kizuki_countries if country in dataset.countries())
    if available:
        sections.append(render_figure6(dataset, available))
    if crux_table is not None:
        sections.append(render_figure7(crux_table))
    sections.append(render_figure8(dataset))
    sections.append(render_figure9(dataset))
    return "\n\n\n".join(sections) + "\n"

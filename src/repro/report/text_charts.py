"""Plain-text chart rendering.

The renderers are intentionally simple: fixed-width labels, a scaled run of
``#`` characters, and explicit numeric values, so that a report remains
meaningful when pasted into an issue, a log or a terminal.  They cover the
chart types the paper's figures use: horizontal bars (Figures 3/4/9), grouped
bars, CDF curves sampled on a grid (Figure 5), and histograms (Figure 6).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.stats.cdf import EmpiricalCDF
from repro.stats.histogram import Histogram

DEFAULT_WIDTH = 40


def _bar(value: float, maximum: float, width: int = DEFAULT_WIDTH) -> str:
    if maximum <= 0:
        return ""
    length = int(round(width * value / maximum))
    return "#" * max(length, 1 if value > 0 else 0)


def bar_chart(values: Mapping[str, float], *, title: str = "", unit: str = "",
              width: int = DEFAULT_WIDTH, sort: bool = False) -> str:
    """Render a horizontal bar chart from a label → value mapping."""
    lines: list[str] = []
    if title:
        lines.append(title)
    if not values:
        lines.append("(no data)")
        return "\n".join(lines)
    items = sorted(values.items(), key=lambda item: item[1], reverse=True) if sort \
        else list(values.items())
    maximum = max(value for _, value in items)
    label_width = max(len(str(label)) for label, _ in items)
    for label, value in items:
        lines.append(f"{str(label):<{label_width}}  {value:8.2f}{unit} "
                     f"{_bar(value, maximum, width)}")
    return "\n".join(lines)


def grouped_bar_chart(groups: Mapping[str, Mapping[str, float]], *, title: str = "",
                      unit: str = "", width: int = DEFAULT_WIDTH) -> str:
    """Render grouped bars: one block per group, one bar per series member.

    Used for the per-country category breakdowns (Figures 3 and 4), where
    each country is a group and each category a series member.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
    if not groups:
        lines.append("(no data)")
        return "\n".join(lines)
    maximum = max((value for series in groups.values() for value in series.values()), default=0.0)
    series_labels = sorted({label for series in groups.values() for label in series})
    label_width = max((len(label) for label in series_labels), default=1)
    for group, series in groups.items():
        lines.append(f"{group}:")
        for label in series_labels:
            value = series.get(label, 0.0)
            lines.append(f"  {label:<{label_width}}  {value:7.2f}{unit} "
                         f"{_bar(value, maximum, width)}")
    return "\n".join(lines)


def cdf_chart(cdfs: Mapping[str, EmpiricalCDF], grid: Sequence[float], *, title: str = "",
              value_format: str = "{:.2f}") -> str:
    """Tabulate one or more CDFs over a shared grid (Figure 5 style)."""
    lines: list[str] = []
    if title:
        lines.append(title)
    header = f"{'x':>8} " + " ".join(f"{name:>14}" for name in cdfs)
    lines.append(header)
    for x in grid:
        row = f"{x:>8g} "
        for cdf in cdfs.values():
            row += f"{value_format.format(cdf.evaluate(float(x))):>15}"
        lines.append(row)
    return "\n".join(lines)


def histogram_chart(histogram: Histogram, *, title: str = "",
                    width: int = DEFAULT_WIDTH) -> str:
    """Render a histogram as labelled bars (Figure 6 style)."""
    lines: list[str] = []
    if title:
        lines.append(title)
    maximum = max(histogram.counts, default=0)
    for label, count in zip(histogram.bin_labels(), histogram.counts):
        lines.append(f"{label:<14}{count:>6}  {_bar(count, maximum, width)}")
    lines.append(f"{'total':<14}{histogram.total:>6}")
    return "\n".join(lines)


def comparison_table(rows: Mapping[str, tuple[float, float]], *, title: str = "",
                     left: str = "measured", right: str = "paper") -> str:
    """Two-column numeric comparison, used to put measured values next to the
    paper's reported ones in generated reports."""
    lines: list[str] = []
    if title:
        lines.append(title)
    label_width = max((len(label) for label in rows), default=5)
    lines.append(f"{'':<{label_width}}  {left:>12} {right:>12}")
    for label, (measured, paper) in rows.items():
        lines.append(f"{label:<{label_width}}  {measured:>12.2f} {paper:>12.2f}")
    return "\n".join(lines)

"""Text renderings of the paper's tables."""

from __future__ import annotations

from repro.core.analysis import element_statistics
from repro.core.dataset import LangCrUXDataset
from repro.core.elements import LANGUAGE_SENSITIVE_ELEMENTS


def render_table1() -> str:
    """Table 1: the twelve language-sensitive accessibility elements."""
    lines = [
        "Table 1 — Web elements requiring natural language",
        f"{'element':<20}{'HTML element':<34}description",
    ]
    for spec in LANGUAGE_SENSITIVE_ELEMENTS:
        lines.append(f"{spec.element_id:<20}{spec.html_element:<34}{spec.description}")
    return "\n".join(lines)


def render_table2(dataset: LangCrUXDataset) -> str:
    """Table 2: per-element statistics, in the paper's column layout.

    For each element the row shows median / standard deviation / mean of the
    per-site missing and empty percentages, followed by median / std / mean of
    text length (characters) and word count over individual texts.
    """
    rows = element_statistics(dataset)
    header = (f"{'element':<20}"
              f"{'missing med/std/mean':>26}"
              f"{'empty med/std/mean':>24}"
              f"{'length med/std/mean':>26}"
              f"{'words med/std/mean':>24}")
    lines = ["Table 2 — Accessibility element statistics", header]
    for element_id, row in rows.items():
        if row.sites == 0:
            continue
        lines.append(
            f"{element_id:<20}"
            f"{row.missing_pct.median:>9.2f}/{row.missing_pct.std_dev:>6.2f}/{row.missing_pct.mean:>7.2f}"
            f"{row.empty_pct.median:>9.2f}/{row.empty_pct.std_dev:>5.2f}/{row.empty_pct.mean:>6.2f}"
            f"{row.text_length.median:>10.0f}/{row.text_length.std_dev:>7.1f}/{row.text_length.mean:>6.1f}"
            f"{row.word_count.median:>9.1f}/{row.word_count.std_dev:>5.1f}/{row.word_count.mean:>6.2f}"
        )
    return "\n".join(lines)

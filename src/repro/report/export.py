"""JSON export of dataset summaries.

The paper accompanies LangCrUX with an interactive website where users can
"explore the dataset in greater detail, including language distribution
across individual websites, with sampling and filtering options".  This
module produces the data layer for such an explorer: a JSON document with
per-country aggregates and per-site rows (language shares, element coverage,
audit outcome), ready to be served to a front end or loaded into a notebook.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.analysis import element_statistics, uninformative_rate_by_country
from repro.core.dataset import LangCrUXDataset, SiteRecord
from repro.core.elements import ELEMENT_IDS
from repro.core.language_mix import classify_texts
from repro.core.mismatch import low_native_accessibility_fraction
from repro.langid.languages import get_pair


def site_summary(record: SiteRecord) -> dict[str, Any]:
    """Per-site explorer row: language shares and element coverage."""
    mix = record.accessibility_language_mix()
    return {
        "domain": record.domain,
        "country": record.country_code,
        "language": record.language_code,
        "rank": record.rank,
        "visible_native_pct": round(record.visible_native_share * 100, 2),
        "accessibility_native_pct": round(record.accessibility_native_share() * 100, 2),
        "declared_lang": record.declared_lang,
        "accessibility_texts": len(record.accessibility_texts()),
        "informative_texts": len(record.informative_texts()),
        "language_mix": mix.proportions(),
        "elements": {
            element_id: {
                "total": record.element(element_id).total,
                "missing": record.element(element_id).missing,
                "empty": record.element(element_id).empty,
            }
            for element_id in ELEMENT_IDS if record.element(element_id).total
        },
        "audit_failures": sorted(rule_id for rule_id in record.audit
                                 if not record.audit_passed(rule_id)),
    }


def country_summary(dataset: LangCrUXDataset, country_code: str) -> dict[str, Any]:
    """Per-country aggregates matching the paper's figures."""
    subset = dataset.for_country(country_code)
    texts: list[str] = []
    language = None
    for record in subset:
        texts.extend(record.informative_texts())
        language = record.language_code
    mix = classify_texts(texts, language).proportions() if language and texts else \
        {"native": 0.0, "english": 0.0, "mixed": 0.0}
    pair = get_pair(country_code)
    return {
        "country": country_code,
        "country_name": pair.country_name,
        "language": pair.language.code,
        "language_name": pair.language.name,
        "sites": len(subset),
        "informative_text_language_mix": mix,
        "uninformative_text_rate": uninformative_rate_by_country(dataset).get(country_code, 0.0),
        "low_native_accessibility_fraction":
            low_native_accessibility_fraction(dataset, country_code),
    }


def export_dataset_summary(dataset: LangCrUXDataset, *, include_sites: bool = True
                           ) -> dict[str, Any]:
    """Build the full explorer document as a plain dictionary."""
    rows = element_statistics(dataset)
    payload: dict[str, Any] = {
        "schema_version": 1,
        "site_count": len(dataset),
        "countries": [country_summary(dataset, country) for country in dataset.countries()],
        "element_statistics": {
            element_id: row.as_dict() for element_id, row in rows.items() if row.sites
        },
    }
    if include_sites:
        payload["sites"] = [site_summary(record) for record in dataset]
    return payload


def write_dataset_summary(dataset: LangCrUXDataset, path: str | Path, *,
                          include_sites: bool = True) -> Path:
    """Write the explorer document to ``path`` as UTF-8 JSON and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = export_dataset_summary(dataset, include_sites=include_sites)
    path.write_text(json.dumps(payload, ensure_ascii=False, indent=2), encoding="utf-8")
    return path

"""Reporting and export.

The paper ships an interactive website for exploring LangCrUX and renders a
dozen figures from the dataset.  This subpackage provides the equivalent
offline tooling:

* :mod:`repro.report.text_charts` — dependency-free text renderings of the
  chart types the paper uses (bar charts, grouped/stacked bars, CDF plots,
  histograms);
* :mod:`repro.report.tables` — text/markdown renderings of Tables 1 and 2;
* :mod:`repro.report.figures` — one renderer per figure, producing the same
  series the paper plots from a :class:`~repro.core.dataset.LangCrUXDataset`;
* :mod:`repro.report.export` — JSON export of per-country and per-site
  summaries (the data behind the paper's interactive explorer).

Everything renders to plain strings so reports can be printed, written to a
file, or embedded in CI logs.
"""

from repro.report.figures import render_all_figures
from repro.report.tables import render_table1, render_table2
from repro.report.export import export_dataset_summary

__all__ = [
    "render_all_figures",
    "render_table1",
    "render_table2",
    "export_dataset_summary",
]

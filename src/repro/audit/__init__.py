"""Lighthouse/Axe-core style accessibility auditing.

The paper's measurements and its Kizuki extension are defined relative to the
Lighthouse accessibility audits (which internally rely on the Axe-core
engine).  This subpackage implements the twelve language-sensitive audits
from Table 1 of the paper, an engine to run them over parsed documents, and
Lighthouse-style weighted scoring:

* :mod:`repro.audit.rules` — one module per audit rule.  Pass/fail behaviour
  under the *missing element*, *empty value* and *incorrect language*
  conditions reproduces the observed Lighthouse behaviour of Appendix D
  (Table 3).
* :mod:`repro.audit.engine` — the :class:`AuditEngine` running a rule set
  over a :class:`~repro.html.dom.Document`.
* :mod:`repro.audit.scoring` — weighted aggregation into a 0–100 score.
* :mod:`repro.audit.report` — report dataclasses and serialization.

Kizuki (:mod:`repro.core.kizuki`) plugs into this engine by replacing the
``image-alt`` rule with a language-aware variant, exactly as the paper
extends Lighthouse.
"""

from repro.audit.engine import AuditEngine
from repro.audit.report import AuditReport, RuleResult, ElementOutcome
from repro.audit.rules import ALL_RULES, get_rule, rule_ids
from repro.audit.scoring import lighthouse_score, DEFAULT_WEIGHTS

__all__ = [
    "AuditEngine",
    "AuditReport",
    "RuleResult",
    "ElementOutcome",
    "ALL_RULES",
    "get_rule",
    "rule_ids",
    "lighthouse_score",
    "DEFAULT_WEIGHTS",
]

"""The audit engine.

Runs a set of audit rules over parsed documents and produces
:class:`~repro.audit.report.AuditReport` objects.  The rule set is
configurable: Kizuki builds an engine in which the stock ``image-alt`` rule
is replaced by its language-aware variant, which is exactly how the paper
describes extending Lighthouse.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro import perf
from repro.audit.report import AuditReport
from repro.audit.rules import ALL_RULES
from repro.audit.rules.base import AuditRule
from repro.html.dom import Document
from repro.html.index import DocumentAccessor, NaiveDocumentAccessor, ensure_index
from repro.html.parser import parse_html


class AuditEngine:
    """Runs accessibility audits over documents."""

    def __init__(self, rules: Sequence[AuditRule] | None = None) -> None:
        self.rules: tuple[AuditRule, ...] = tuple(rules) if rules is not None else ALL_RULES
        if not self.rules:
            raise ValueError("AuditEngine requires at least one rule")
        seen: set[str] = set()
        for rule in self.rules:
            if rule.rule_id in seen:
                raise ValueError(f"duplicate rule id {rule.rule_id!r} in engine")
            seen.add(rule.rule_id)

    def with_rule_replaced(self, replacement: AuditRule) -> "AuditEngine":
        """A new engine with the rule of the same id replaced by ``replacement``.

        Raises:
            KeyError: When no existing rule has the replacement's id.
        """
        if replacement.rule_id not in {rule.rule_id for rule in self.rules}:
            raise KeyError(f"engine has no rule {replacement.rule_id!r} to replace")
        rules = tuple(replacement if rule.rule_id == replacement.rule_id else rule
                      for rule in self.rules)
        return AuditEngine(rules)

    def audit_document(self, document: Document | DocumentAccessor, *,
                       use_index: bool = True) -> AuditReport:
        """Run every rule over ``document``.

        The document is coerced to its cached
        :class:`~repro.html.index.DocumentIndex` once, and every rule selects
        targets and resolves names through it — one traversal for the whole
        audit (shared with extraction when both see the same document).
        ``use_index=False`` routes through the naive-traversal reference
        path instead; it exists for parity tests and benchmarks.
        """
        if use_index:
            context = ensure_index(document)
        else:
            # Unwrap accessors so a DocumentIndex argument cannot silently
            # ride through what is supposed to be the naive reference path.
            naive_source = document if isinstance(document, Document) else document.document
            context = NaiveDocumentAccessor(naive_source)
        with perf.stage("audit"):
            perf.count("audit.documents")
            report = AuditReport(url=context.url)
            for rule in self.rules:
                with perf.stage("audit." + rule.rule_id):
                    report.add(rule.evaluate(context))
            return report

    def audit_html(self, markup: str, url: str | None = None) -> AuditReport:
        """Parse ``markup`` and audit the resulting document."""
        return self.audit_document(parse_html(markup, url=url))

    def audit_many(self, documents: Iterable[Document]) -> list[AuditReport]:
        return [self.audit_document(document) for document in documents]

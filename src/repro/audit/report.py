"""Audit result and report models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True)
class ElementOutcome:
    """The audit outcome for a single target element.

    Attributes:
        element_tag: Tag name of the evaluated element (``"document"`` for
            document-level audits such as ``document-title``).
        text: The accessibility text considered by the audit: ``None`` when
            missing, ``""`` when present-but-empty, the text otherwise.
        passed: Whether this element passes the audit.
        reason: Machine-readable reason: ``"ok"``, ``"missing"``, ``"empty"``
            or ``"language-mismatch"`` (the last only from Kizuki rules).
    """

    element_tag: str
    text: str | None
    passed: bool
    reason: str


@dataclass(frozen=True)
class RuleResult:
    """Result of one audit rule over one document.

    Attributes:
        rule_id: The audit identifier (e.g. ``image-alt``).
        applicable: ``False`` when the page has no target elements; such
            audits are excluded from scoring, mirroring Lighthouse's
            "not applicable" outcome.
        passed: Binary outcome: every target element passes.
        score: Fraction of target elements that pass (1.0 when not
            applicable).  The base Lighthouse behaviour scores audits
            binarily; the proportional score is exposed for Kizuki-style
            scoring and for diagnostics.
        outcomes: Per-element outcomes.
    """

    rule_id: str
    applicable: bool
    passed: bool
    score: float
    outcomes: tuple[ElementOutcome, ...] = ()

    @property
    def total_elements(self) -> int:
        return len(self.outcomes)

    @property
    def failing_elements(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.passed)


@dataclass
class AuditReport:
    """All rule results for one document."""

    url: str | None
    results: dict[str, RuleResult] = field(default_factory=dict)

    def add(self, result: RuleResult) -> None:
        self.results[result.rule_id] = result

    def result(self, rule_id: str) -> RuleResult | None:
        return self.results.get(rule_id)

    def passed(self, rule_id: str) -> bool:
        """Whether ``rule_id`` passed (not-applicable counts as a pass)."""
        result = self.results.get(rule_id)
        if result is None or not result.applicable:
            return True
        return result.passed

    def applicable_results(self) -> tuple[RuleResult, ...]:
        return tuple(result for result in self.results.values() if result.applicable)

    def failing_rules(self) -> tuple[str, ...]:
        return tuple(sorted(result.rule_id for result in self.applicable_results()
                            if not result.passed))

    def to_dict(self) -> dict:
        """JSON-serializable representation (element outcomes summarised)."""
        return {
            "url": self.url,
            "results": {
                rule_id: {
                    "applicable": result.applicable,
                    "passed": result.passed,
                    "score": result.score,
                    "total_elements": result.total_elements,
                    "failing_elements": result.failing_elements,
                }
                for rule_id, result in sorted(self.results.items())
            },
        }


def summarize_pass_rates(reports: Iterable[AuditReport]) -> dict[str, float]:
    """Fraction of documents passing each rule, over applicable documents only."""
    applicable: dict[str, int] = {}
    passing: dict[str, int] = {}
    for report in reports:
        for rule_id, result in report.results.items():
            if not result.applicable:
                continue
            applicable[rule_id] = applicable.get(rule_id, 0) + 1
            if result.passed:
                passing[rule_id] = passing.get(rule_id, 0) + 1
    return {rule_id: passing.get(rule_id, 0) / count for rule_id, count in applicable.items()}

"""Lighthouse-style accessibility scoring.

Lighthouse computes its accessibility category score as a weighted average of
audit scores, rescaled to 0–100, counting only audits that are applicable to
the page.  The real Lighthouse accessibility category spreads its weight over
roughly forty audits; this engine implements only the twelve
language-sensitive ones, so the weights below are chosen to keep the same
*relative* importance (image, button and link naming weigh the most) while
letting the rarely-annotated minor elements (frames, objects, selects)
contribute roughly what they would contribute inside the full audit set.  The
exact values matter less than their ordering because the paper's Figure 6
compares *distributions* of the same metric before and after Kizuki rather
than absolute scores.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.audit.report import AuditReport

#: Audit weights (Lighthouse-style).
DEFAULT_WEIGHTS: dict[str, float] = {
    "button-name": 10.0,
    "document-title": 7.0,
    "image-alt": 10.0,
    "frame-title": 3.0,
    "summary-name": 2.0,
    "label": 7.0,
    "input-image-alt": 3.0,
    "select-name": 3.0,
    "link-name": 7.0,
    "input-button-name": 3.0,
    "svg-img-alt": 2.0,
    "object-alt": 3.0,
}


def lighthouse_score(report: AuditReport, *, weights: Mapping[str, float] | None = None,
                     proportional: bool = False) -> float:
    """Aggregate an audit report into a 0–100 accessibility score.

    Args:
        report: The audit report to score.
        weights: Per-audit weights; unknown audits get weight 1.0.
        proportional: When false (the Lighthouse default), every applicable
            audit contributes its binary outcome (pass = 1, fail = 0).  When
            true, audits contribute the fraction of passing elements, which
            is the scoring mode Kizuki's re-scoring uses so that a single
            mismatching image does not zero out an otherwise consistent page.

    Returns:
        The weighted score in [0, 100].  A report with no applicable audits
        scores 100 (nothing to fail).
    """
    weights = weights if weights is not None else DEFAULT_WEIGHTS
    total_weight = 0.0
    achieved = 0.0
    for result in report.applicable_results():
        weight = weights.get(result.rule_id, 1.0)
        total_weight += weight
        value = result.score if proportional else (1.0 if result.passed else 0.0)
        achieved += weight * value
    if total_weight == 0:
        return 100.0
    return 100.0 * achieved / total_weight


def score_distribution(reports: Iterable[AuditReport], *, proportional: bool = False,
                       weights: Mapping[str, float] | None = None) -> list[float]:
    """Scores of many reports (helper for Figure 6 style histograms)."""
    return [lighthouse_score(report, weights=weights, proportional=proportional)
            for report in reports]


def fraction_above(scores: Iterable[float], threshold: float) -> float:
    """Fraction of scores strictly above ``threshold`` (e.g. the 'good' bar at 90)."""
    scores = list(scores)
    if not scores:
        return 0.0
    return sum(1 for score in scores if score > threshold) / len(scores)


def fraction_perfect(scores: Iterable[float]) -> float:
    """Fraction of scores equal to 100 (within floating-point tolerance)."""
    scores = list(scores)
    if not scores:
        return 0.0
    return sum(1 for score in scores if score >= 100.0 - 1e-9) / len(scores)

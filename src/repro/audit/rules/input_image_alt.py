"""``input-image-alt``: image inputs have alternative text."""

from __future__ import annotations

from repro.audit.rules.base import AuditContext, AuditRule, explicit_only_text
from repro.html.dom import Element
from repro.html.index import ensure_index


class InputImageAltRule(AuditRule):
    """``<input type=image>`` elements need ``alt`` text."""

    rule_id = "input-image-alt"
    description = "<input type=image> elements have alt text"
    fails_on_missing = True
    fails_on_empty = True

    def select_targets(self, document: AuditContext) -> list[Element]:
        return ensure_index(document).elements(
            "input",
            predicate=lambda el: (el.get("type") or "").lower() == "image",
        )

    def target_text(self, element: Element, document: AuditContext) -> str | None:
        return explicit_only_text(element, document)

"""``frame-title``: frames and iframes have a title."""

from __future__ import annotations

from repro.audit.rules.base import AuditRule, explicit_name_text
from repro.html.dom import Document, Element


class FrameTitleRule(AuditRule):
    """``<frame>`` and ``<iframe>`` elements need a title."""

    rule_id = "frame-title"
    description = "Frames and iframes have a title"
    fails_on_missing = True
    fails_on_empty = True

    def select_targets(self, document: Document) -> list[Element]:
        return document.find_all("iframe") + document.find_all("frame")

    def target_text(self, element: Element, document: Document) -> str | None:
        return explicit_name_text(element, document)

"""``frame-title``: frames and iframes have a title."""

from __future__ import annotations

from repro.audit.rules.base import AuditContext, AuditRule, explicit_name_text
from repro.html.dom import Element
from repro.html.index import ensure_index


class FrameTitleRule(AuditRule):
    """``<frame>`` and ``<iframe>`` elements need a title."""

    rule_id = "frame-title"
    description = "Frames and iframes have a title"
    fails_on_missing = True
    fails_on_empty = True

    def select_targets(self, document: AuditContext) -> list[Element]:
        # One merged, document-ordered list — not all iframes followed by
        # all frames (pinned by tests/test_audit_rules.py).
        return ensure_index(document).elements_of("iframe", "frame")

    def target_text(self, element: Element, document: AuditContext) -> str | None:
        return explicit_name_text(element, document)

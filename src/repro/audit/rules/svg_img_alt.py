"""``svg-img-alt``: ``<svg>`` images have alternative text.

Appendix D behaviour: the observed Lighthouse run passes the isolated test
page under every condition; the rule still computes names so extraction and
Kizuki can inspect them.
"""

from __future__ import annotations

from repro.audit.rules.base import AuditContext, AuditRule, explicit_only_text
from repro.html.dom import Element
from repro.html.index import ensure_index


class SvgImgAltRule(AuditRule):
    """``<svg>`` elements used as images should have alternative text."""

    rule_id = "svg-img-alt"
    description = "SVG images have alternative text"
    fails_on_missing = False
    fails_on_empty = False

    def select_targets(self, document: AuditContext) -> list[Element]:
        return ensure_index(document).elements("svg")

    def target_text(self, element: Element, document: AuditContext) -> str | None:
        return explicit_only_text(element, document)

"""``object-alt``: ``<object>`` elements have alternative text."""

from __future__ import annotations

from repro.audit.rules.base import AuditContext, AuditRule, context_name
from repro.html.accessibility import NameSource
from repro.html.dom import Element
from repro.html.index import ensure_index


class ObjectAltRule(AuditRule):
    """``<object>`` elements need alternative text (ARIA name or fallback content)."""

    rule_id = "object-alt"
    description = "<object> elements have alternative text"
    fails_on_missing = True
    fails_on_empty = True

    def select_targets(self, document: AuditContext) -> list[Element]:
        return ensure_index(document).elements("object")

    def target_text(self, element: Element, document: AuditContext) -> str | None:
        result = context_name(element, document)
        if result.source is NameSource.NONE:
            # Distinguish "no fallback content at all" (missing) from
            # "fallback content present but blank" (empty).
            raw = element.text_content()
            return "" if raw and not raw.strip() else None
        return result.name

"""``summary-name``: ``<summary>`` elements have a discernible name.

Appendix D behaviour: the observed Lighthouse run passes the isolated test
page under every condition, so neither missing nor empty names fail here.
"""

from __future__ import annotations

from repro.audit.rules.base import AuditContext, AuditRule, explicit_name_text
from repro.html.dom import Element
from repro.html.index import ensure_index


class SummaryNameRule(AuditRule):
    """``<summary>`` elements should have a discernible name."""

    rule_id = "summary-name"
    description = "Summary elements have a discernible name"
    fails_on_missing = False
    fails_on_empty = False

    def select_targets(self, document: AuditContext) -> list[Element]:
        return ensure_index(document).elements("summary")

    def target_text(self, element: Element, document: AuditContext) -> str | None:
        return explicit_name_text(element, document)

"""Registry of the twelve language-sensitive audit rules (Table 1)."""

from __future__ import annotations

from repro.audit.rules.base import AuditRule
from repro.audit.rules.button_name import ButtonNameRule
from repro.audit.rules.document_title import DocumentTitleRule
from repro.audit.rules.frame_title import FrameTitleRule
from repro.audit.rules.image_alt import ImageAltRule
from repro.audit.rules.input_button_name import InputButtonNameRule
from repro.audit.rules.input_image_alt import InputImageAltRule
from repro.audit.rules.label import LabelRule
from repro.audit.rules.link_name import LinkNameRule
from repro.audit.rules.object_alt import ObjectAltRule
from repro.audit.rules.select_name import SelectNameRule
from repro.audit.rules.summary_name import SummaryNameRule
from repro.audit.rules.svg_img_alt import SvgImgAltRule

#: One instance of every rule, in the order of Table 1 of the paper.
ALL_RULES: tuple[AuditRule, ...] = (
    ButtonNameRule(),
    DocumentTitleRule(),
    ImageAltRule(),
    FrameTitleRule(),
    SummaryNameRule(),
    LabelRule(),
    InputImageAltRule(),
    SelectNameRule(),
    LinkNameRule(),
    InputButtonNameRule(),
    SvgImgAltRule(),
    ObjectAltRule(),
)

_RULES_BY_ID: dict[str, AuditRule] = {rule.rule_id: rule for rule in ALL_RULES}


def rule_ids() -> tuple[str, ...]:
    """Identifiers of all registered rules, in Table 1 order."""
    return tuple(rule.rule_id for rule in ALL_RULES)


def get_rule(rule_id: str) -> AuditRule:
    """Look up a rule by id; raises ``KeyError`` for unknown ids."""
    return _RULES_BY_ID[rule_id]


__all__ = [
    "AuditRule",
    "ALL_RULES",
    "rule_ids",
    "get_rule",
    "ButtonNameRule",
    "DocumentTitleRule",
    "FrameTitleRule",
    "ImageAltRule",
    "InputButtonNameRule",
    "InputImageAltRule",
    "LabelRule",
    "LinkNameRule",
    "ObjectAltRule",
    "SelectNameRule",
    "SummaryNameRule",
    "SvgImgAltRule",
]

"""``input-button-name``: input buttons have a discernible name.

Appendix D behaviour: a missing value passes (browsers supply a default
label for submit/reset buttons), an explicitly empty value fails.
"""

from __future__ import annotations

from repro.audit.rules.base import AuditContext, AuditRule, explicit_name_text
from repro.html.dom import Element
from repro.html.index import ensure_index

_BUTTON_TYPES = frozenset({"button", "submit", "reset"})


class InputButtonNameRule(AuditRule):
    """``<input type=button|submit|reset>`` elements need a name."""

    rule_id = "input-button-name"
    description = "Input buttons have a discernible name"
    fails_on_missing = False
    fails_on_empty = True

    def select_targets(self, document: AuditContext) -> list[Element]:
        return ensure_index(document).elements(
            "input",
            predicate=lambda el: (el.get("type") or "").lower() in _BUTTON_TYPES,
        )

    def target_text(self, element: Element, document: AuditContext) -> str | None:
        return explicit_name_text(element, document)

"""``label``: form fields have associated labels.

Appendix D behaviour: both the missing and the empty condition pass, i.e.
the observed Lighthouse run never flags the isolated test page for this rule;
the audit is nevertheless implemented fully so that extraction and Kizuki can
reason about label text.
"""

from __future__ import annotations

from repro.audit.rules.base import AuditContext, AuditRule, explicit_only_text
from repro.html.dom import Element
from repro.html.index import ensure_index

#: Input types that do not take a visible label.
_UNLABELLED_TYPES = frozenset({"hidden", "button", "submit", "reset", "image"})


def _labellable(element: Element) -> bool:
    if element.tag == "textarea":
        return True
    return (element.get("type") or "text").lower() not in _UNLABELLED_TYPES


class LabelRule(AuditRule):
    """Text inputs and textareas need an associated ``<label>``."""

    rule_id = "label"
    description = "Form elements have associated labels"
    fails_on_missing = False
    fails_on_empty = False

    def select_targets(self, document: AuditContext) -> list[Element]:
        # One merged, document-ordered list — not all inputs followed by all
        # textareas (pinned by tests/test_audit_rules.py).
        return [element
                for element in ensure_index(document).elements_of("input", "textarea")
                if _labellable(element)]

    def target_text(self, element: Element, document: AuditContext) -> str | None:
        return explicit_only_text(element, document)

"""``label``: form fields have associated labels.

Appendix D behaviour: both the missing and the empty condition pass, i.e.
the observed Lighthouse run never flags the isolated test page for this rule;
the audit is nevertheless implemented fully so that extraction and Kizuki can
reason about label text.
"""

from __future__ import annotations

from repro.audit.rules.base import AuditRule, explicit_only_text
from repro.html.dom import Document, Element

#: Input types that do not take a visible label.
_UNLABELLED_TYPES = frozenset({"hidden", "button", "submit", "reset", "image"})


class LabelRule(AuditRule):
    """Text inputs and textareas need an associated ``<label>``."""

    rule_id = "label"
    description = "Form elements have associated labels"
    fails_on_missing = False
    fails_on_empty = False

    def select_targets(self, document: Document) -> list[Element]:
        inputs = document.find_all(
            "input",
            predicate=lambda el: (el.get("type") or "text").lower() not in _UNLABELLED_TYPES,
        )
        return inputs + document.find_all("textarea")

    def target_text(self, element: Element, document: Document) -> str | None:
        return explicit_only_text(element, document)

"""``link-name``: links have a discernible name."""

from __future__ import annotations

from repro.audit.rules.base import AuditContext, AuditRule, explicit_name_text
from repro.html.dom import Element
from repro.html.index import ensure_index


class LinkNameRule(AuditRule):
    """``<a href>`` elements need a discernible name."""

    rule_id = "link-name"
    description = "Links have a discernible name"
    fails_on_missing = True
    fails_on_empty = True

    def select_targets(self, document: AuditContext) -> list[Element]:
        return ensure_index(document).elements(
            "a", predicate=lambda el: el.has_attr("href"))

    def target_text(self, element: Element, document: AuditContext) -> str | None:
        return explicit_name_text(element, document)

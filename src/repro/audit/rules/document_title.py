"""``document-title``: the document has a ``<title>``.

Lighthouse behaviour reproduced from Appendix D (Table 3): a missing
``<title>`` element passes the audit, an empty one fails, and a title in a
different language than the page content passes.
"""

from __future__ import annotations

from repro.audit.rules.base import AuditRule
from repro.html.dom import Document, Element


class DocumentTitleRule(AuditRule):
    """The document declares a non-empty title."""

    rule_id = "document-title"
    description = "Document has a <title> element"
    fails_on_missing = False
    fails_on_empty = True

    def select_targets(self, document: Document) -> list[Element]:
        # The audit is document-level; the root element stands in as the
        # single target so that reports have a consistent shape.
        return [document.root]

    def target_text(self, element: Element, document: Document) -> str | None:
        return document.title

"""``document-title``: the document has a ``<title>``.

Lighthouse behaviour reproduced from Appendix D (Table 3): a missing
``<title>`` element passes the audit, an empty one fails, and a title in a
different language than the page content passes.
"""

from __future__ import annotations

from repro.audit.rules.base import AuditContext, AuditRule
from repro.html.dom import Element
from repro.html.index import ensure_index


class DocumentTitleRule(AuditRule):
    """The document declares a non-empty title."""

    rule_id = "document-title"
    description = "Document has a <title> element"
    fails_on_missing = False
    fails_on_empty = True

    def select_targets(self, document: AuditContext) -> list[Element]:
        # The audit is document-level; the root element stands in as the
        # single target so that reports have a consistent shape.
        return [ensure_index(document).root]

    def target_text(self, element: Element, document: AuditContext) -> str | None:
        return ensure_index(document).title

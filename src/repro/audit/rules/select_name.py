"""``select-name``: ``<select>`` elements have an accessible name."""

from __future__ import annotations

from repro.audit.rules.base import AuditContext, AuditRule, explicit_only_text
from repro.html.dom import Element
from repro.html.index import ensure_index


class SelectNameRule(AuditRule):
    """``<select>`` elements need an accessible name (label or ARIA)."""

    rule_id = "select-name"
    description = "Select elements have an accessible name"
    fails_on_missing = True
    fails_on_empty = True

    def select_targets(self, document: AuditContext) -> list[Element]:
        return ensure_index(document).elements("select")

    def target_text(self, element: Element, document: AuditContext) -> str | None:
        return explicit_only_text(element, document)

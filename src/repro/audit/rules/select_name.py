"""``select-name``: ``<select>`` elements have an accessible name."""

from __future__ import annotations

from repro.audit.rules.base import AuditRule, explicit_only_text
from repro.html.dom import Document, Element


class SelectNameRule(AuditRule):
    """``<select>`` elements need an accessible name (label or ARIA)."""

    rule_id = "select-name"
    description = "Select elements have an accessible name"
    fails_on_missing = True
    fails_on_empty = True

    def select_targets(self, document: Document) -> list[Element]:
        return document.find_all("select")

    def target_text(self, element: Element, document: Document) -> str | None:
        return explicit_only_text(element, document)

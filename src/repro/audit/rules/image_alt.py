"""``image-alt``: images have alternative text.

This is the rule Kizuki extends.  The base behaviour reproduced from
Appendix D (Table 3): a missing ``alt`` attribute fails; ``alt=""`` passes
(it marks the image as decorative, which the paper notes is enough to satisfy
Lighthouse even when it conveys nothing); the language of the text is never
considered.
"""

from __future__ import annotations

from repro.audit.rules.base import AuditContext, AuditRule, explicit_only_text
from repro.html.dom import Element
from repro.html.index import ensure_index


class ImageAltRule(AuditRule):
    """``<img>`` elements need an ``alt`` attribute (or ARIA name)."""

    rule_id = "image-alt"
    description = "Image elements have alternative text"
    fails_on_missing = True
    fails_on_empty = False

    def select_targets(self, document: AuditContext) -> list[Element]:
        return ensure_index(document).elements("img")

    def target_text(self, element: Element, document: AuditContext) -> str | None:
        if (element.get("role") or "").strip().lower() in ("presentation", "none"):
            # Explicitly decorative images are treated like alt="".
            return element.get("alt") or ""
        return explicit_only_text(element, document)

"""``button-name``: buttons must have an accessible name.

Lighthouse behaviour reproduced from Appendix D (Table 3): a button with no
name at all fails; a present-but-empty value passes; language is ignored.
"""

from __future__ import annotations

from repro.audit.rules.base import AuditContext, AuditRule, explicit_name_text
from repro.html.dom import Element
from repro.html.index import ensure_index


class ButtonNameRule(AuditRule):
    """Buttons (``<button>`` and ``role=button``) need an accessible name."""

    rule_id = "button-name"
    description = "Buttons have an accessible name"
    fails_on_missing = True
    fails_on_empty = False

    def select_targets(self, document: AuditContext) -> list[Element]:
        index = ensure_index(document)
        # Real buttons first, then role-carrying non-buttons, each group in
        # document order (the historical report shape).
        targets = index.elements("button")
        targets.extend(element for element in index.elements_with_role("button")
                       if element.tag not in ("button", "input"))
        return targets

    def target_text(self, element: Element, document: AuditContext) -> str | None:
        return explicit_name_text(element, document)

"""``button-name``: buttons must have an accessible name.

Lighthouse behaviour reproduced from Appendix D (Table 3): a button with no
name at all fails; a present-but-empty value passes; language is ignored.
"""

from __future__ import annotations

from repro.audit.rules.base import AuditRule, explicit_name_text
from repro.html.dom import Document, Element


class ButtonNameRule(AuditRule):
    """Buttons (``<button>`` and ``role=button``) need an accessible name."""

    rule_id = "button-name"
    description = "Buttons have an accessible name"
    fails_on_missing = True
    fails_on_empty = False

    def select_targets(self, document: Document) -> list[Element]:
        targets = document.find_all("button")
        for element in document.iter_elements():
            if element.tag != "button" and element.role == "button" and element.tag != "input":
                targets.append(element)
        return targets

    def target_text(self, element: Element, document: Document) -> str | None:
        return explicit_name_text(element, document)

"""Audit rule framework.

Every audit rule answers three questions for a document:

1. *Which elements does the rule target?* (``select_targets``)
2. *What accessibility text does each target carry?* (``target_text`` —
   ``None`` when missing, ``""`` when present-but-empty, the text otherwise)
3. *Does a given text pass?*  The base behaviour is controlled by two flags,
   ``fails_on_missing`` and ``fails_on_empty``, whose per-rule values
   reproduce the Lighthouse behaviour measured in the paper's Appendix D
   (Table 3).  Language is never considered by base rules — that is exactly
   the gap Kizuki fills by overriding :meth:`AuditRule.text_passes`.

Rules are stateless; one instance can audit any number of documents.

Rules select their targets from a :class:`~repro.html.index.DocumentIndex`
rather than re-traversing the tree: every hook accepts either a plain
:class:`~repro.html.dom.Document` (coerced to its cached index via
:func:`~repro.html.index.ensure_index`) or an accessor directly, so twelve
rules auditing one page share a single traversal — and share it with the
extraction layer when both are handed the same document.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.audit.report import ElementOutcome, RuleResult
from repro.html.accessibility import AccessibleNameResult, NameSource, accessible_name
from repro.html.dom import Document, Element
from repro.html.index import DocumentAccessor, ensure_index

#: What the rule hooks accept: a document or either access path over one.
AuditContext = Document | DocumentAccessor


def context_name(element: Element, context: AuditContext) -> AccessibleNameResult:
    """Accessible name of ``element`` through ``context``.

    Routes through the accessor's memo when one is available, so repeated
    name computations (several rules, extraction + audit) are free after the
    first; a plain :class:`~repro.html.dom.Document` computes naively.
    """
    if isinstance(context, DocumentAccessor):
        return context.accessible_name(element)
    return accessible_name(element, context)


class AuditRule(ABC):
    """Base class for the twelve language-sensitive audits."""

    #: Audit identifier, e.g. ``"image-alt"``; must match Table 1 of the paper.
    rule_id: str = ""
    #: Human-readable description shown in reports.
    description: str = ""
    #: Whether an element with *no* accessibility text fails the audit.
    fails_on_missing: bool = True
    #: Whether an element with an *empty* accessibility text fails the audit.
    fails_on_empty: bool = True

    # -- to implement per rule -------------------------------------------------

    @abstractmethod
    def select_targets(self, document: AuditContext) -> list[Element]:
        """Elements this rule applies to, in document order."""

    @abstractmethod
    def target_text(self, element: Element, document: AuditContext) -> str | None:
        """Accessibility text of ``element``: ``None`` missing, ``""`` empty."""

    # -- shared evaluation --------------------------------------------------------

    def text_passes(self, text: str, element: Element,
                    document: AuditContext) -> tuple[bool, str]:
        """Whether a non-empty accessibility text passes the audit.

        Base rules accept any non-empty text regardless of language or
        informativeness — the behaviour the paper criticises.  Kizuki rules
        override this hook.
        """
        return True, "ok"

    def evaluate_element(self, element: Element, document: AuditContext) -> ElementOutcome:
        text = self.target_text(element, document)
        tag = element.tag
        if text is None:
            return ElementOutcome(tag, None, passed=not self.fails_on_missing, reason="missing")
        if not text.strip():
            return ElementOutcome(tag, text, passed=not self.fails_on_empty, reason="empty")
        passed, reason = self.text_passes(text, element, document)
        return ElementOutcome(tag, text, passed=passed, reason=reason)

    def evaluate(self, document: AuditContext) -> RuleResult:
        """Evaluate the rule over a whole document."""
        context = ensure_index(document)
        targets = self.select_targets(context)
        if not targets:
            return RuleResult(rule_id=self.rule_id, applicable=False, passed=True, score=1.0)
        outcomes = tuple(self.evaluate_element(element, context) for element in targets)
        passing = sum(1 for outcome in outcomes if outcome.passed)
        return RuleResult(
            rule_id=self.rule_id,
            applicable=True,
            passed=passing == len(outcomes),
            score=passing / len(outcomes),
            outcomes=outcomes,
        )


def explicit_name_text(element: Element, document: AuditContext) -> str | None:
    """Accessibility text from explicit metadata only (no visible-text fallback).

    Returns ``None`` when the element has no explicit accessibility markup,
    matching the "missing" condition of Table 2/3.
    """
    result = context_name(element, document)
    if result.source is NameSource.NONE:
        return None
    if not result.explicit and result.source is NameSource.VISIBLE_TEXT:
        # For audit purposes the visible-text fallback still provides a name;
        # callers that need metadata-only extraction use the extraction
        # module instead.  Here the fallback counts as a name.
        return result.name
    return result.name


def explicit_only_text(element: Element, document: AuditContext) -> str | None:
    """Accessibility text from explicit metadata, ignoring visible text entirely."""
    result = context_name(element, document)
    if result.explicit:
        return result.name
    return None

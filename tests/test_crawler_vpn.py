"""Tests for VPN vantage management (repro.crawler.vpn)."""

from __future__ import annotations

import pytest

from repro.crawler.vpn import (
    DEFAULT_PROVIDERS,
    VantagePoint,
    VPNCoverageError,
    VPNManager,
    VPNProvider,
)
from repro.langid.languages import langcrux_country_codes


class TestProviders:
    def test_default_providers_cover_all_countries(self) -> None:
        manager = VPNManager(DEFAULT_PROVIDERS)
        assert manager.uncovered() == ()

    def test_provider_covers(self) -> None:
        provider = VPNProvider("p", frozenset({"bd"}))
        assert provider.covers("bd")
        assert not provider.covers("th")

    def test_provider_selection_is_per_country(self) -> None:
        manager = VPNManager(DEFAULT_PROVIDERS)
        report = manager.coverage_report()
        # China and Hong Kong are only reachable through the second provider.
        assert report["cn"] == "hotspot-shield"
        assert report["hk"] == "hotspot-shield"
        assert report["bd"] == "proton"

    def test_first_matching_provider_wins(self) -> None:
        manager = VPNManager([
            VPNProvider("first", frozenset({"jp"})),
            VPNProvider("second", frozenset({"jp"})),
        ])
        assert manager.provider_for("jp").name == "first"

    def test_missing_coverage_raises(self) -> None:
        manager = VPNManager([VPNProvider("only-jp", frozenset({"jp"}))])
        with pytest.raises(VPNCoverageError):
            manager.provider_for("bd")
        assert "bd" in manager.uncovered(langcrux_country_codes())

    def test_empty_provider_list_rejected(self) -> None:
        with pytest.raises(ValueError):
            VPNManager([])


class TestVantagePoints:
    def test_vantage_for_country(self) -> None:
        vantage = VPNManager(DEFAULT_PROVIDERS).vantage_for("th")
        assert vantage.country_code == "th"
        assert vantage.via_vpn
        assert vantage.is_localized

    def test_cloud_vantage(self) -> None:
        cloud = VantagePoint.cloud()
        assert cloud.country_code is None
        assert not cloud.via_vpn
        assert not cloud.is_localized
        assert cloud.provider == "cloud"

"""Tests for native/English/mixed classification (repro.langid.classify)."""

from __future__ import annotations

import pytest

from repro.langid.classify import (
    ClassificationThresholds,
    TextLanguageClass,
    classify_share,
    classify_text_language,
    is_language_consistent,
)
from repro.langid.detector import LanguageShare


class TestClassifyTextLanguage:
    def test_native_label(self) -> None:
        assert classify_text_language("ছাত্রদের বার্ষিক অনুষ্ঠান", "bn") is TextLanguageClass.NATIVE

    def test_english_label(self) -> None:
        assert classify_text_language("students at the annual ceremony", "bn") \
            is TextLanguageClass.ENGLISH

    def test_mixed_label(self) -> None:
        assert classify_text_language("বার্ষিক অনুষ্ঠান annual ceremony", "bn") \
            is TextLanguageClass.MIXED

    def test_other_label(self) -> None:
        assert classify_text_language("новости дня сегодня", "bn") is TextLanguageClass.OTHER

    def test_empty_label(self) -> None:
        assert classify_text_language("", "bn") is TextLanguageClass.EMPTY
        assert classify_text_language("12345", "bn") is TextLanguageClass.EMPTY

    def test_incidental_minority_script_ignored(self) -> None:
        # One Latin brand token inside a long native label stays NATIVE.
        text = "বাংলাদেশের শিক্ষা মন্ত্রণালয়ের বার্ষিক প্রতিবেদন PDF"
        assert classify_text_language(text, "bn") is TextLanguageClass.NATIVE


class TestClassifyShare:
    def test_dominance_threshold_respected(self) -> None:
        share = LanguageShare(native=0.92, english=0.08, other=0.0, textual_chars=100)
        assert classify_share(share) is TextLanguageClass.NATIVE

    def test_mix_floor_respected(self) -> None:
        share = LanguageShare(native=0.5, english=0.5, other=0.0, textual_chars=100)
        assert classify_share(share) is TextLanguageClass.MIXED

    def test_custom_thresholds(self) -> None:
        thresholds = ClassificationThresholds(dominance=0.99, mix_floor=0.4)
        share = LanguageShare(native=0.95, english=0.05, other=0.0, textual_chars=100)
        # Under stricter thresholds 0.95 is no longer dominant and english is
        # below the mix floor, so the larger side wins.
        assert classify_share(share, thresholds) is TextLanguageClass.NATIVE

    def test_other_dominant(self) -> None:
        share = LanguageShare(native=0.1, english=0.2, other=0.7, textual_chars=50)
        assert classify_share(share) is TextLanguageClass.OTHER

    def test_empty_share(self) -> None:
        share = LanguageShare(native=0.0, english=0.0, other=0.0, textual_chars=0)
        assert classify_share(share) is TextLanguageClass.EMPTY


class TestLanguageConsistency:
    def test_native_text_on_native_page_is_consistent(self) -> None:
        assert is_language_consistent("ছবি: বার্ষিক অনুষ্ঠান", "bn", page_native_share=0.9)

    def test_english_text_on_native_page_is_inconsistent(self) -> None:
        assert not is_language_consistent("annual ceremony photo", "bn", page_native_share=0.9)

    def test_mixed_text_counts_as_consistent(self) -> None:
        assert is_language_consistent("বার্ষিক অনুষ্ঠান ceremony", "bn", page_native_share=0.9)

    def test_non_native_page_accepts_any_nonempty_text(self) -> None:
        assert is_language_consistent("annual ceremony photo", "bn", page_native_share=0.2)

    def test_non_native_page_rejects_empty_text(self) -> None:
        assert not is_language_consistent("   ", "bn", page_native_share=0.2)

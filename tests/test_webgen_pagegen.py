"""Tests for the synthetic page generator (repro.webgen.pagegen)."""

from __future__ import annotations

import random

import pytest

from repro.core.extraction import extract_page
from repro.html.parser import parse_html
from repro.html.visibility import extract_visible_text
from repro.langid.detector import ScriptDetector
from repro.webgen.pagegen import PageGenerator, PageSpec
from repro.webgen.profiles import get_profile


def _spec(language: str = "bn", *, visible_native: float = 0.9,
          a11y=None, uninformative: float = 0.2, declare_lang: str | None = "en") -> PageSpec:
    profile = get_profile({"bn": "bd", "th": "th", "ja": "jp"}.get(language, "bd"))
    return PageSpec(
        language_code=language,
        visible_native_share=visible_native,
        a11y_language_weights=a11y or {"native": 0.2, "english": 0.6, "mixed": 0.2},
        uninformative_rate=uninformative,
        discard_mix=dict(profile.discard_mix),
        declare_lang=declare_lang,
    )


class TestPageStructure:
    @pytest.fixture(scope="class")
    def document(self):
        generator = PageGenerator(_spec(), random.Random(42))
        return generator.generate_document(url="https://example.com.bd/")

    def test_has_head_and_body(self, document) -> None:
        assert document.head is not None
        assert document.body is not None

    def test_declared_lang_respected(self, document) -> None:
        assert document.html_lang == "en"

    def test_contains_all_core_element_types(self, document) -> None:
        body = document.body
        assert body is not None
        assert body.find_all("img")
        assert body.find_all("a")
        assert body.find_all("button")
        assert body.find_all("form")
        assert body.find_all("svg") is not None  # may be empty but query works

    def test_serialized_html_is_parseable(self) -> None:
        generator = PageGenerator(_spec(), random.Random(3))
        markup = generator.generate_html()
        reparsed = parse_html(markup)
        assert reparsed.body is not None
        assert reparsed.body.find_all("img")

    def test_no_lang_attribute_when_not_declared(self) -> None:
        generator = PageGenerator(_spec(declare_lang=None), random.Random(1))
        assert generator.generate_document().html_lang is None


class TestLanguageComposition:
    def test_visible_text_matches_native_share(self) -> None:
        generator = PageGenerator(_spec(visible_native=0.95), random.Random(7))
        document = generator.generate_document()
        share = ScriptDetector("bn").share(extract_visible_text(document))
        assert share.native > 0.7

    def test_english_heavy_page(self) -> None:
        generator = PageGenerator(_spec(visible_native=0.05), random.Random(7))
        document = generator.generate_document()
        share = ScriptDetector("bn").share(extract_visible_text(document))
        assert share.english > 0.7

    def test_accessibility_language_follows_weights(self) -> None:
        spec = _spec(a11y={"native": 1.0, "english": 0.0, "mixed": 0.0}, uninformative=0.0)
        generator = PageGenerator(spec, random.Random(11))
        extraction = extract_page(generator.generate_document())
        texts = extraction.texts("image-alt")
        assert texts, "expected at least one informative alt text"
        detector = ScriptDetector("bn")
        native_like = sum(1 for text in texts if detector.share(text).native > 0.5)
        assert native_like / len(texts) > 0.7


class TestAccessibilityBehaviour:
    def test_zero_missing_rate_spec_yields_alt_on_every_image(self) -> None:
        spec = _spec()
        # Force a profile where image alt text is always present.
        from dataclasses import replace
        profiles = dict(spec.element_profiles)
        profiles["image-alt"] = replace(profiles["image-alt"], missing_rate=0.0, empty_rate=0.0)
        spec.element_profiles = profiles
        generator = PageGenerator(spec, random.Random(5))
        document = generator.generate_document()
        for image in document.body.find_all("img"):
            assert image.has_attr("alt")
            assert image.get("alt")

    def test_full_missing_rate_spec_yields_no_alt(self) -> None:
        spec = _spec()
        from dataclasses import replace
        profiles = dict(spec.element_profiles)
        profiles["image-alt"] = replace(profiles["image-alt"], missing_rate=1.0, empty_rate=0.0)
        spec.element_profiles = profiles
        generator = PageGenerator(spec, random.Random(5))
        document = generator.generate_document()
        assert all(not image.has_attr("alt") for image in document.body.find_all("img"))

    def test_uninformative_rate_one_produces_discardable_texts(self) -> None:
        from repro.core.filtering import classify_text
        spec = _spec(uninformative=1.0)
        generator = PageGenerator(spec, random.Random(13))
        extraction = extract_page(generator.generate_document())
        texts = extraction.texts()
        assert texts
        uninformative = sum(1 for text in texts if not classify_text(text).informative)
        assert uninformative / len(texts) > 0.8

    def test_extreme_alt_rate_produces_long_alt(self) -> None:
        spec = _spec()
        spec.extreme_alt_rate = 1.0
        generator = PageGenerator(spec, random.Random(17))
        extraction = extract_page(generator.generate_document())
        alts = extraction.texts("image-alt")
        assert any(len(text) > 1000 for text in alts)


class TestDeterminism:
    def test_same_seed_same_page(self) -> None:
        markup_a = PageGenerator(_spec(), random.Random(99)).generate_html()
        markup_b = PageGenerator(_spec(), random.Random(99)).generate_html()
        assert markup_a == markup_b

    def test_different_seed_different_page(self) -> None:
        markup_a = PageGenerator(_spec(), random.Random(1)).generate_html()
        markup_b = PageGenerator(_spec(), random.Random(2)).generate_html()
        assert markup_a != markup_b

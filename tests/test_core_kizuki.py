"""Tests for Kizuki, the language-aware audit extension (repro.core.kizuki)."""

from __future__ import annotations

import pytest

from repro.audit.engine import AuditEngine
from repro.audit.scoring import lighthouse_score
from repro.core.dataset import ElementObservation, LangCrUXDataset, SiteRecord
from repro.core.kizuki import Kizuki, KizukiConfig, KizukiImageAltRule, rescore_dataset
from repro.html.parser import parse_html


THAI_PAGE_ENGLISH_ALTS = """
<html lang="th"><head><title>ข่าววันนี้</title></head><body>
  <h1>ข่าวล่าสุดประจำวัน</h1>
  <p>รัฐมนตรีประกาศโครงการพัฒนาใหม่ในจังหวัดเชียงใหม่ และมีการประชุมประจำปี</p>
  <img src="/a.jpg" alt="Minister announcing the new project">
  <img src="/b.jpg" alt="Annual meeting in the province">
  <a href="/x">อ่านต่อ</a>
  <button>ค้นหา</button>
</body></html>
"""

THAI_PAGE_THAI_ALTS = THAI_PAGE_ENGLISH_ALTS \
    .replace("Minister announcing the new project", "รัฐมนตรีประกาศโครงการใหม่") \
    .replace("Annual meeting in the province", "ภาพการประชุมประจำปีของจังหวัด")

ENGLISH_PAGE = """
<html lang="en"><head><title>Daily news</title></head><body>
  <h1>Latest daily news</h1>
  <p>The minister announced a new development project in the northern province.</p>
  <img src="/a.jpg" alt="Minister announcing the new project">
  <a href="/x">read more</a>
</body></html>
"""


class TestKizukiImageAltRule:
    def test_mismatching_alt_fails(self) -> None:
        rule = KizukiImageAltRule("th")
        result = rule.evaluate(parse_html(THAI_PAGE_ENGLISH_ALTS))
        assert result.applicable
        assert not result.passed
        assert {outcome.reason for outcome in result.outcomes} == {"language-mismatch"}

    def test_matching_alt_passes(self) -> None:
        rule = KizukiImageAltRule("th")
        result = rule.evaluate(parse_html(THAI_PAGE_THAI_ALTS))
        assert result.passed

    def test_english_page_not_penalised(self) -> None:
        # When the visible content is not predominantly native, the base
        # Lighthouse behaviour applies and English alt text is fine.
        rule = KizukiImageAltRule("th")
        assert rule.evaluate(parse_html(ENGLISH_PAGE)).passed

    def test_base_semantics_preserved_for_missing_and_empty(self) -> None:
        rule = KizukiImageAltRule("th")
        missing = rule.evaluate(parse_html("<body><p>ข่าว</p><img src='/a.jpg'></body>"))
        assert not missing.passed
        empty = rule.evaluate(parse_html("<body><p>ข่าว</p><img src='/a.jpg' alt=''></body>"))
        assert empty.passed

    def test_mixed_alt_accepted_by_default(self) -> None:
        page = THAI_PAGE_ENGLISH_ALTS.replace(
            "Minister announcing the new project", "รัฐมนตรี announcing the project ประกาศโครงการ")
        rule = KizukiImageAltRule("th")
        reasons = [o.reason for o in rule.evaluate(parse_html(page)).outcomes]
        assert "ok" in reasons

    def test_mixed_alt_rejected_when_configured(self) -> None:
        page = THAI_PAGE_THAI_ALTS
        strict = KizukiImageAltRule("th", KizukiConfig(accept_mixed=False))
        assert strict.evaluate(parse_html(page)).passed  # fully native still fine

    def test_uninformative_text_exempt_by_default(self) -> None:
        page = "<body><p>ข่าวล่าสุดประจำวันนี้</p><img src='/a.jpg' alt='logo.png'></body>"
        assert KizukiImageAltRule("th").evaluate(parse_html(page)).passed
        strict = KizukiImageAltRule("th", KizukiConfig(skip_uninformative=False))
        assert not strict.evaluate(parse_html(page)).passed


class TestKizukiEngine:
    def test_engine_replaces_image_alt_rule(self) -> None:
        kizuki = Kizuki("th")
        assert any(isinstance(rule, KizukiImageAltRule) for rule in kizuki.engine.rules)
        assert len(kizuki.engine.rules) == len(AuditEngine().rules)

    def test_score_shift_drops_for_mismatching_page(self) -> None:
        kizuki = Kizuki("th")
        old, new = kizuki.score_shift(parse_html(THAI_PAGE_ENGLISH_ALTS))
        assert old == pytest.approx(100.0)
        assert new < old

    def test_score_shift_stable_for_consistent_page(self) -> None:
        kizuki = Kizuki("th")
        old, new = kizuki.score_shift(parse_html(THAI_PAGE_THAI_ALTS))
        assert old == pytest.approx(100.0)
        assert new == pytest.approx(100.0)

    def test_audit_html_reports_language_mismatch(self) -> None:
        report = Kizuki("th").audit_html(THAI_PAGE_ENGLISH_ALTS)
        assert "image-alt" in report.failing_rules()
        base_report = AuditEngine().audit_html(THAI_PAGE_ENGLISH_ALTS)
        assert "image-alt" not in base_report.failing_rules()
        assert lighthouse_score(base_report) > lighthouse_score(report)


def _site_record(domain: str, alt_texts: list[str], *, missing: int = 0, empty: int = 0,
                 visible_native: float = 0.9, passed_image_alt: bool = True,
                 country: str = "th", language: str = "th") -> SiteRecord:
    record = SiteRecord(domain=domain, country_code=country, language_code=language, rank=5,
                        visible_native_share=visible_native, visible_text_chars=1500)
    record.elements["image-alt"] = ElementObservation(
        "image-alt", total=len(alt_texts) + missing + empty, missing=missing, empty=empty,
        texts=list(alt_texts))
    record.audit = {
        "image-alt": {"applicable": True, "passed": passed_image_alt,
                      "score": 1.0 if passed_image_alt else 0.5},
        "button-name": {"applicable": True, "passed": True, "score": 1.0},
        "link-name": {"applicable": True, "passed": True, "score": 1.0},
        "document-title": {"applicable": True, "passed": True, "score": 1.0},
    }
    return record


class TestDatasetRescoring:
    def test_consistent_site_keeps_its_score(self) -> None:
        kizuki = Kizuki("th")
        record = _site_record("good.co.th", ["ภาพการประชุมประจำปีของจังหวัด"])
        old, new = kizuki.rescore_record(record)
        assert old == pytest.approx(100.0)
        assert new == pytest.approx(100.0)

    def test_mismatching_site_loses_points(self) -> None:
        kizuki = Kizuki("th")
        record = _site_record("bad.co.th", ["Minister announcing the project",
                                            "Annual meeting photo"])
        old, new = kizuki.rescore_record(record)
        assert new < old

    def test_image_alt_consistency_result(self) -> None:
        kizuki = Kizuki("th")
        record = _site_record("half.co.th", ["ภาพการประชุม", "Annual meeting photo"], empty=2)
        result = kizuki.image_alt_consistency(record)
        assert result.applicable
        assert result.score == pytest.approx(3 / 4)

    def test_site_without_images_not_applicable(self) -> None:
        kizuki = Kizuki("th")
        record = SiteRecord(domain="noimg.co.th", country_code="th", language_code="th", rank=1)
        assert not kizuki.image_alt_consistency(record).applicable

    def test_rescore_dataset_excludes_original_failures(self) -> None:
        dataset = LangCrUXDataset([
            _site_record("a.co.th", ["English description of the photo"]),
            _site_record("b.co.th", ["another English description"], passed_image_alt=False),
        ])
        summary = rescore_dataset(dataset, ("th",))
        assert summary.sites == 1
        summary_all = rescore_dataset(dataset, ("th",), exclude_original_failures=False)
        assert summary_all.sites == 2

    def test_rescore_summary_fractions(self) -> None:
        dataset = LangCrUXDataset([
            _site_record("a.co.th", ["คำอธิบายภาพอย่างละเอียด"]),
            _site_record("b.co.th", ["English only description"]),
        ])
        summary = rescore_dataset(dataset, ("th",))
        assert summary.fraction_perfect(new=False) == pytest.approx(1.0)
        assert summary.fraction_perfect(new=True) == pytest.approx(0.5)
        assert summary.fraction_above(90, new=True) <= summary.fraction_above(90, new=False)

    def test_rescore_empty_dataset(self) -> None:
        summary = rescore_dataset(LangCrUXDataset(), ("bd", "th"))
        assert summary.sites == 0
        assert summary.fraction_above(90, new=False) == 0.0
        assert summary.fraction_perfect(new=True) == 0.0

"""Property-based tests for the HTML parser, URL handling and the frontier."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.crawler.frontier import Frontier, FrontierEntry
from repro.crawler.http import URL
from repro.html.parser import parse_html
from repro.html.visibility import extract_visible_text

# -- HTML parser robustness ---------------------------------------------------

markup_fragments = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)),  # any non-surrogate text
    max_size=300,
)

tag_names = st.sampled_from(["p", "div", "img", "a", "button", "span", "li", "iframe"])


@st.composite
def nested_markup(draw) -> str:
    """Generate small well-formed-ish documents with random nesting."""
    pieces = []
    for _ in range(draw(st.integers(min_value=1, max_value=8))):
        tag = draw(tag_names)
        text = draw(st.text(max_size=30))
        if tag == "img":
            pieces.append(f"<img alt='{text}'>")
        else:
            pieces.append(f"<{tag}>{text}</{tag}>")
    return "".join(pieces)


class TestParserProperties:
    @settings(max_examples=80)
    @given(markup_fragments)
    def test_parser_never_raises(self, markup: str) -> None:
        document = parse_html(markup)
        assert document.root.tag == "html"
        assert document.body is not None

    @settings(max_examples=80)
    @given(markup_fragments)
    def test_visible_text_extraction_never_raises(self, markup: str) -> None:
        text = extract_visible_text(parse_html(markup))
        assert isinstance(text, str)

    @settings(max_examples=60)
    @given(nested_markup())
    def test_structured_markup_round_trips_through_serializer(self, markup: str) -> None:
        document = parse_html(markup)
        reparsed = parse_html(document.root.to_html())
        # Element counts per tag are stable across a parse/serialize cycle.
        for tag in ("p", "div", "img", "a", "button"):
            assert len(document.root.find_all(tag)) == len(reparsed.root.find_all(tag))


# -- URL properties ---------------------------------------------------------------

hostnames = st.from_regex(r"[a-z]([a-z0-9-]{0,20}[a-z0-9])?(\.[a-z]{2,6}){1,2}", fullmatch=True)
# Path segments are non-empty so a generated reference can never start with
# "//" (which would be a protocol-relative, cross-host reference).
paths = st.from_regex(r"(/[a-z0-9._-]{1,10}){0,4}", fullmatch=True)


class TestURLProperties:
    @settings(max_examples=80)
    @given(hostnames, paths)
    def test_parse_str_round_trip(self, host: str, path: str) -> None:
        url = URL.parse(f"https://{host}{path}")
        assert URL.parse(str(url)) == url
        assert url.host == host

    @settings(max_examples=80)
    @given(hostnames, paths, paths)
    def test_join_stays_on_host_for_relative_references(self, host: str, base: str,
                                                        reference: str) -> None:
        base_url = URL.parse(f"https://{host}{base or '/'}")
        joined = URL.join(base_url, reference or "/")
        assert joined.host == host


# -- Frontier properties ---------------------------------------------------------------

entries_strategy = st.lists(
    st.tuples(hostnames, paths, st.integers(min_value=0, max_value=1000)),
    max_size=40,
)


class TestFrontierProperties:
    @settings(max_examples=50)
    @given(entries_strategy)
    def test_each_url_dispatched_at_most_once(self, raw_entries) -> None:
        frontier = Frontier(default_delay=0.0)
        for host, path, priority in raw_entries:
            frontier.add(FrontierEntry(url=URL.parse(f"https://{host}{path or '/'}"),
                                       priority=priority))
        dispatched = [str(entry.url) for entry in frontier.drain()]
        assert len(dispatched) == len(set(dispatched))

    @settings(max_examples=50)
    @given(entries_strategy)
    def test_drain_returns_every_unique_url(self, raw_entries) -> None:
        frontier = Frontier(default_delay=0.0)
        unique = {f"https://{host}{path or '/'}" for host, path, _ in raw_entries}
        for host, path, priority in raw_entries:
            frontier.add(FrontierEntry(url=URL.parse(f"https://{host}{path or '/'}"),
                                       priority=priority))
        assert {str(entry.url) for entry in frontier.drain()} == unique

"""Tests for crawl records and their JSONL round trip (repro.crawler.records)."""

from __future__ import annotations

from pathlib import Path

from repro.crawler.records import CrawlRecord, PageSnapshot, read_records_jsonl, write_records_jsonl


def _record(domain: str = "a.example.bd", ok: bool = True) -> CrawlRecord:
    page = PageSnapshot(
        url=f"https://{domain}/",
        final_url=f"https://{domain}/home",
        status=200 if ok else 403,
        html="<html lang='bn'><body><p>খবর</p></body></html>" if ok else "",
        served_variant="localized" if ok else None,
        elapsed_ms=123.4,
        error=None if ok else "HTTP 403",
    )
    return CrawlRecord(domain=domain, country_code="bd", language_code="bn", rank=42,
                       vantage_country="bd", via_vpn=True, pages=[page])


class TestRecordModel:
    def test_homepage_accessor(self) -> None:
        record = _record()
        assert record.homepage is not None
        assert record.homepage.final_url.endswith("/home")
        assert CrawlRecord(domain="x", country_code="bd", language_code="bn", rank=1).homepage is None

    def test_succeeded(self) -> None:
        assert _record(ok=True).succeeded
        assert not _record(ok=False).succeeded

    def test_snapshot_ok(self) -> None:
        assert _record().pages[0].ok
        assert not _record(ok=False).pages[0].ok

    def test_dict_round_trip(self) -> None:
        record = _record()
        assert CrawlRecord.from_dict(record.to_dict()) == record


class TestJsonlIO:
    def test_write_and_read_back(self, tmp_path: Path) -> None:
        records = [_record("a.example.bd"), _record("b.example.bd", ok=False)]
        path = tmp_path / "out" / "crawl.jsonl"
        written = write_records_jsonl(records, path)
        assert written == 2
        loaded = list(read_records_jsonl(path))
        assert loaded == records

    def test_unicode_preserved(self, tmp_path: Path) -> None:
        path = tmp_path / "crawl.jsonl"
        write_records_jsonl([_record()], path)
        raw = path.read_text(encoding="utf-8")
        assert "খবর" in raw  # ensure_ascii=False keeps the native script readable
        loaded = next(iter(read_records_jsonl(path)))
        assert "খবর" in loaded.pages[0].html

    def test_blank_lines_ignored(self, tmp_path: Path) -> None:
        path = tmp_path / "crawl.jsonl"
        write_records_jsonl([_record()], path)
        path.write_text(path.read_text(encoding="utf-8") + "\n\n", encoding="utf-8")
        assert len(list(read_records_jsonl(path))) == 1

"""Tests for the fetcher and simulated transport (repro.crawler.fetcher)."""

from __future__ import annotations

import random

import pytest

from repro.crawler.fetcher import Fetcher, FetcherConfig, FetchError, SimulatedTransport
from repro.crawler.http import Headers, Request, Response, URL
from repro.webgen.profiles import get_profile
from repro.webgen.server import SyntheticWeb
from repro.webgen.sitegen import SiteGenerator


@pytest.fixture(scope="module")
def web() -> SyntheticWeb:
    sites = SiteGenerator(get_profile("il"), seed=21).generate_sites(15)
    return SyntheticWeb(sites)


@pytest.fixture(scope="module")
def domains(web) -> list[str]:
    return list(web.domains())


class TestSimulatedTransport:
    def test_successful_fetch(self, web, domains) -> None:
        transport = SimulatedTransport(web)
        response = transport.send(Request(url=URL.parse(f"https://{domains[0]}/"),
                                          client_country="il"))
        assert response.status in (200, 302, 403)
        assert transport.requests_sent == 1

    def test_failure_injection(self, web, domains) -> None:
        transport = SimulatedTransport(web, failure_rate=1.0, rng=random.Random(0))
        response = transport.send(Request(url=URL.parse(f"https://{domains[0]}/")))
        assert response.status == 503

    def test_unknown_host_is_502(self, web) -> None:
        transport = SimulatedTransport(web)
        response = transport.send(Request(url=URL.parse("https://missing.example/")))
        assert response.status == 502

    def test_latency_recorded(self, web, domains) -> None:
        transport = SimulatedTransport(web, latency_ms=200.0, rng=random.Random(1))
        response = transport.send(Request(url=URL.parse(f"https://{domains[0]}/")))
        assert response.elapsed_ms > 0


class _ScriptedTransport:
    """A transport returning a scripted sequence of responses."""

    def __init__(self, responses: list[Response]) -> None:
        self.responses = list(responses)
        self.sent: list[Request] = []

    def send(self, request: Request) -> Response:
        self.sent.append(request)
        if len(self.responses) > 1:
            return self.responses.pop(0)
        return self.responses[0]


def _resp(url: str, status: int, location: str | None = None) -> Response:
    headers = Headers({"content-type": "text/html"})
    if location:
        headers["location"] = location
    return Response(url=URL.parse(url), status=status, headers=headers, body="<p>x</p>")


class TestFetcherRetries:
    def test_transient_errors_retried(self) -> None:
        transport = _ScriptedTransport([
            _resp("https://a.example/", 503),
            _resp("https://a.example/", 503),
            _resp("https://a.example/", 200),
        ])
        fetcher = Fetcher(transport, FetcherConfig(max_retries=3))
        response = fetcher.fetch("https://a.example/")
        assert response.ok
        assert fetcher.stats["retries"] == 2

    def test_retries_exhausted_returns_error_response(self) -> None:
        transport = _ScriptedTransport([_resp("https://a.example/", 503)])
        fetcher = Fetcher(transport, FetcherConfig(max_retries=2))
        response = fetcher.fetch("https://a.example/")
        assert response.status == 503
        assert fetcher.stats["failures"] == 1

    def test_non_retryable_error_not_retried(self) -> None:
        transport = _ScriptedTransport([_resp("https://a.example/", 404)])
        fetcher = Fetcher(transport)
        response = fetcher.fetch("https://a.example/")
        assert response.status == 404
        assert fetcher.stats["retries"] == 0

    def test_user_agent_header_attached(self) -> None:
        transport = _ScriptedTransport([_resp("https://a.example/", 200)])
        fetcher = Fetcher(transport)
        fetcher.fetch("https://a.example/")
        assert "langcruxbot" in transport.sent[0].headers.get("user-agent", "").lower()


class TestFetcherRedirects:
    def test_redirect_followed(self) -> None:
        transport = _ScriptedTransport([
            _resp("https://a.example/", 302, location="/home"),
            _resp("https://a.example/home", 200),
        ])
        fetcher = Fetcher(transport)
        response = fetcher.fetch("https://a.example/")
        assert response.ok
        assert str(response.url).endswith("/home")
        assert fetcher.stats["redirects"] == 1

    def test_redirect_loop_raises(self) -> None:
        transport = _ScriptedTransport([_resp("https://a.example/", 302, location="/")])
        fetcher = Fetcher(transport, FetcherConfig(max_redirects=3))
        with pytest.raises(FetchError):
            fetcher.fetch("https://a.example/")

    def test_vantage_forwarded_across_redirects(self) -> None:
        transport = _ScriptedTransport([
            _resp("https://a.example/", 302, location="/home"),
            _resp("https://a.example/home", 200),
        ])
        fetcher = Fetcher(transport)
        fetcher.fetch("https://a.example/", client_country="th", via_vpn=True)
        assert all(request.client_country == "th" for request in transport.sent)
        assert all(request.via_vpn for request in transport.sent)


class TestEndToEndOverSyntheticWeb:
    def test_fetch_homepage_of_every_site(self, web, domains) -> None:
        fetcher = Fetcher(SimulatedTransport(web, rng=random.Random(3)))
        ok = 0
        for domain in domains:
            response = fetcher.fetch(f"https://{domain}/", client_country="il", via_vpn=True)
            if response.ok:
                ok += 1
                assert "<html" in response.body.lower()
        # Only VPN-blocking sites may fail from an in-country VPN vantage.
        blocking = sum(1 for domain in domains if web.site(domain).blocks_vpn)
        assert ok == len(domains) - blocking

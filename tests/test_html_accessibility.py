"""Tests for accessible-name computation (repro.html.accessibility)."""

from __future__ import annotations

from repro.html.accessibility import NameSource, accessible_name, has_explicit_accessibility_text
from repro.html.parser import parse_html


def _element(markup: str, tag: str, index: int = 0):
    document = parse_html(markup)
    elements = document.root.find_all(tag)
    return elements[index], document


class TestPrecedence:
    def test_aria_labelledby_wins(self) -> None:
        markup = ('<span id="lbl">Visible label</span>'
                  '<button aria-labelledby="lbl" aria-label="secondary">text</button>')
        button, document = _element(markup, "button")
        result = accessible_name(button, document)
        assert result.name == "Visible label"
        assert result.source is NameSource.ARIA_LABELLEDBY
        assert result.explicit

    def test_aria_labelledby_multiple_ids(self) -> None:
        markup = ('<span id="a">first</span><span id="b">second</span>'
                  '<button aria-labelledby="a b"></button>')
        button, document = _element(markup, "button")
        assert accessible_name(button, document).name == "first second"

    def test_aria_label_beats_native_markup(self) -> None:
        image, document = _element('<img alt="native" aria-label="aria">', "img")
        result = accessible_name(image, document)
        assert result.name == "aria"
        assert result.source is NameSource.ARIA_LABEL

    def test_visible_text_fallback_for_buttons(self) -> None:
        button, document = _element("<button>Click me</button>", "button")
        result = accessible_name(button, document)
        assert result.name == "Click me"
        assert result.source is NameSource.VISIBLE_TEXT
        assert not result.explicit

    def test_title_attribute_last_resort(self) -> None:
        div, document = _element('<div title="tooltip"></div>', "div")
        result = accessible_name(div, document)
        assert result.name == "tooltip"
        assert result.source is NameSource.TITLE_ATTR

    def test_no_name_at_all(self) -> None:
        div, document = _element("<div></div>", "div")
        result = accessible_name(div, document)
        assert result.name == ""
        assert result.source is NameSource.NONE
        assert result.is_empty


class TestNativeMarkup:
    def test_img_alt(self) -> None:
        image, document = _element('<img alt="a cat">', "img")
        result = accessible_name(image, document)
        assert result.name == "a cat"
        assert result.source is NameSource.NATIVE_MARKUP

    def test_img_empty_alt_is_explicit_and_empty(self) -> None:
        image, document = _element('<img alt="">', "img")
        result = accessible_name(image, document)
        assert result.name == ""
        assert result.source is NameSource.NATIVE_MARKUP
        assert result.explicit
        assert result.is_empty

    def test_img_missing_alt(self) -> None:
        image, document = _element("<img src='/x.png'>", "img")
        assert accessible_name(image, document).source is NameSource.NONE

    def test_input_image_alt(self) -> None:
        element, document = _element('<input type="image" alt="go">', "input")
        assert accessible_name(element, document).name == "go"

    def test_input_button_value(self) -> None:
        element, document = _element('<input type="submit" value="Send">', "input")
        result = accessible_name(element, document)
        assert result.name == "Send"
        assert result.source is NameSource.NATIVE_MARKUP

    def test_label_for_association(self) -> None:
        markup = '<label for="name">Your name</label><input type="text" id="name">'
        element, document = _element(markup, "input")
        assert accessible_name(element, document).name == "Your name"

    def test_wrapping_label(self) -> None:
        markup = "<label>Email <input type='text'></label>"
        element, document = _element(markup, "input")
        assert accessible_name(element, document).name == "Email"

    def test_select_label(self) -> None:
        markup = '<label for="c">City</label><select id="c"></select>'
        element, document = _element(markup, "select")
        assert accessible_name(element, document).name == "City"

    def test_svg_title_child(self) -> None:
        element, document = _element("<svg><title>Logo</title><path d='M0 0'/></svg>", "svg")
        assert accessible_name(element, document).name == "Logo"

    def test_object_fallback_content(self) -> None:
        element, document = _element("<object data='/r.pdf'>Annual report</object>", "object")
        assert accessible_name(element, document).name == "Annual report"

    def test_iframe_title(self) -> None:
        element, document = _element('<iframe title="Map" src="/m"></iframe>', "iframe")
        assert accessible_name(element, document).name == "Map"


class TestExplicitHelper:
    def test_explicit_for_alt(self) -> None:
        image, document = _element('<img alt="x">', "img")
        assert has_explicit_accessibility_text(image, document)

    def test_not_explicit_for_visible_text(self) -> None:
        button, document = _element("<button>Go</button>", "button")
        assert not has_explicit_accessibility_text(button, document)

    def test_works_without_document(self) -> None:
        image, _ = _element('<img alt="x">', "img")
        assert accessible_name(image).name == "x"

"""Tests for the website generator (repro.webgen.sitegen)."""

from __future__ import annotations

import random
import statistics

import pytest

from repro.langid.detector import ScriptDetector
from repro.html.parser import parse_html
from repro.html.visibility import extract_visible_text
from repro.webgen.profiles import get_profile
from repro.webgen.sitegen import (
    BELOW_THRESHOLD_RATE,
    GLOBAL,
    LOCALIZED,
    SiteGenerator,
    generate_country_sites,
    sample_site_rate,
    stable_seed,
)


class TestStableSeed:
    def test_deterministic(self) -> None:
        assert stable_seed(1, "bd", "x") == stable_seed(1, "bd", "x")

    def test_sensitive_to_inputs(self) -> None:
        assert stable_seed(1, "bd") != stable_seed(2, "bd")
        assert stable_seed(1, "bd") != stable_seed(1, "th")

    def test_fits_32_bits(self) -> None:
        assert 0 <= stable_seed("anything", 123) < 2 ** 32


class TestSampleSiteRate:
    def test_mean_is_preserved(self) -> None:
        rng = random.Random(0)
        samples = [sample_site_rate(0.17, rng) for _ in range(4000)]
        assert statistics.mean(samples) == pytest.approx(0.17, abs=0.03)

    def test_distribution_is_bimodal(self) -> None:
        rng = random.Random(1)
        samples = [sample_site_rate(0.2, rng) for _ in range(2000)]
        near_zero = sum(1 for s in samples if s < 0.05)
        near_one = sum(1 for s in samples if s > 0.95)
        assert near_zero > 0.4 * len(samples)
        assert near_one > 0.02 * len(samples)

    def test_extreme_means_are_clamped(self) -> None:
        rng = random.Random(2)
        assert 0.0 <= sample_site_rate(0.0, rng) <= 1.0
        assert 0.0 <= sample_site_rate(1.0, rng) <= 1.0


class TestSiteGeneration:
    @pytest.fixture(scope="class")
    def sites(self):
        return SiteGenerator(get_profile("bd"), seed=5).generate_sites(40)

    def test_requested_count(self, sites) -> None:
        assert len(sites) == 40

    def test_sorted_by_rank(self, sites) -> None:
        ranks = [site.rank for site in sites]
        assert ranks == sorted(ranks)

    def test_unique_domains(self, sites) -> None:
        assert len({site.domain for site in sites}) == len(sites)

    def test_country_and_language_assigned(self, sites) -> None:
        assert all(site.country_code == "bd" for site in sites)
        assert all(site.language_code == "bn" for site in sites)

    def test_some_sites_below_threshold(self, sites) -> None:
        below = [site for site in sites if not site.meets_language_threshold()]
        # With 40 candidates and a 12% below-threshold rate the expected count
        # is ~5; require at least one so replacement logic is exercised.
        assert below
        assert len(below) < len(sites) * (BELOW_THRESHOLD_RATE + 0.25)

    def test_element_rates_cover_all_elements(self, sites) -> None:
        from repro.webgen.profiles import ELEMENT_PROFILES
        assert set(sites[0].element_rates) == set(ELEMENT_PROFILES)

    def test_a11y_weights_normalised(self, sites) -> None:
        for site in sites:
            assert sum(site.a11y_language_weights.values()) == pytest.approx(1.0)

    def test_determinism_across_generators(self) -> None:
        first = SiteGenerator(get_profile("th"), seed=9).generate_sites(5)
        second = SiteGenerator(get_profile("th"), seed=9).generate_sites(5)
        assert [site.domain for site in first] == [site.domain for site in second]
        assert first[0].page_html() == second[0].page_html()

    def test_generate_country_sites_helper(self) -> None:
        sites = generate_country_sites("jp", 3, seed=1)
        assert len(sites) == 3
        assert all(site.country_code == "jp" for site in sites)


class TestVariants:
    @pytest.fixture(scope="class")
    def site(self):
        sites = SiteGenerator(get_profile("th"), seed=2).generate_sites(10)
        return next(site for site in sites if site.meets_language_threshold())

    def test_localized_variant_is_native(self, site) -> None:
        html = site.page_html("/", LOCALIZED)
        share = ScriptDetector("th").share(extract_visible_text(parse_html(html)))
        assert share.native > 0.5

    def test_global_variant_is_english_heavy(self, site) -> None:
        html = site.page_html("/", GLOBAL)
        share = ScriptDetector("th").share(extract_visible_text(parse_html(html)))
        assert share.english > share.native

    def test_page_cache_returns_same_html(self, site) -> None:
        assert site.page_html("/") is site.page_html("/")

    def test_unknown_path_rejected(self, site) -> None:
        with pytest.raises(KeyError):
            site.page_html("/definitely-not-a-page")

    def test_unknown_variant_rejected(self, site) -> None:
        with pytest.raises(ValueError):
            site.page_html("/", "weird")

"""Tests for visible-text extraction (repro.html.visibility)."""

from __future__ import annotations

from repro.html.dom import Element, new_document
from repro.html.parser import parse_html
from repro.html.visibility import extract_visible_text, is_visible, visible_text_length


class TestVisibleTextExtraction:
    def test_plain_text_is_visible(self) -> None:
        document = parse_html("<body><p>hello</p><p>world</p></body>")
        assert extract_visible_text(document) == "hello world"

    def test_script_and_style_excluded(self) -> None:
        document = parse_html("<body><p>shown</p><script>var hidden=1;</script>"
                              "<style>p{}</style></body>")
        assert extract_visible_text(document) == "shown"

    def test_head_content_excluded(self) -> None:
        document = parse_html("<head><title>Site title</title></head><body><p>body</p></body>")
        assert extract_visible_text(document) == "body"

    def test_hidden_attribute_excludes_subtree(self) -> None:
        document = parse_html("<body><div hidden><p>secret</p></div><p>public</p></body>")
        assert extract_visible_text(document) == "public"

    def test_aria_hidden_excludes_subtree(self) -> None:
        document = parse_html('<body><div aria-hidden="true">secret</div>ok</body>')
        assert extract_visible_text(document) == "ok"

    def test_aria_hidden_false_is_visible(self) -> None:
        document = parse_html('<body><div aria-hidden="false">shown</div></body>')
        assert extract_visible_text(document) == "shown"

    def test_display_none_inline_style(self) -> None:
        document = parse_html('<body><div style="display: none">gone</div>kept</body>')
        assert extract_visible_text(document) == "kept"

    def test_visibility_hidden_inline_style(self) -> None:
        document = parse_html('<body><div style="visibility:hidden">gone</div>kept</body>')
        assert extract_visible_text(document) == "kept"

    def test_input_hidden_excluded(self) -> None:
        document = parse_html('<body><input type="hidden" value="x">shown</body>')
        assert extract_visible_text(document) == "shown"

    def test_attribute_text_is_not_visible(self) -> None:
        document = parse_html('<body><img alt="descriptive alt text"></body>')
        assert extract_visible_text(document) == ""

    def test_whitespace_normalised(self) -> None:
        document = parse_html("<body><p>a\n\n   b</p>\n<p>c</p></body>")
        assert extract_visible_text(document) == "a b c"

    def test_normalisation_can_be_disabled(self) -> None:
        document = parse_html("<body><p>a  b</p></body>")
        assert "a  b" in extract_visible_text(document, normalize=False)

    def test_extraction_from_subtree(self) -> None:
        document = parse_html("<body><div id='a'>inner</div><div>outer</div></body>")
        div = document.get_element_by_id("a")
        assert div is not None
        assert extract_visible_text(div) == "inner"

    def test_visible_text_length(self) -> None:
        document = parse_html("<body><p>abcde</p></body>")
        assert visible_text_length(document) == 5


class TestIsVisible:
    def test_node_inside_hidden_ancestor(self) -> None:
        document = parse_html("<body><div hidden><p id='p'>x</p></div></body>")
        paragraph = document.get_element_by_id("p")
        assert paragraph is not None
        assert not is_visible(paragraph)

    def test_regular_node_is_visible(self) -> None:
        document = parse_html("<body><p id='p'>x</p></body>")
        paragraph = document.get_element_by_id("p")
        assert paragraph is not None
        assert is_visible(paragraph)

    def test_detached_element_is_visible(self) -> None:
        assert is_visible(Element("p"))

    def test_empty_document(self) -> None:
        assert extract_visible_text(new_document()) == ""

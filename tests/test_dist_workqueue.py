"""Unit tests of the distributed work-queue protocol (`repro.dist.workqueue`)
and the window-result codec (`repro.dist.results`)."""

import json
import os

import pytest

from repro.core.pipeline import (
    PipelineConfig,
    SelectionSubShard,
    build_web_for_config,
    execute_selection_subshard,
    plan_selection_windows,
)
from repro.dist.results import decode_window_result, encode_window_result
from repro.dist.workqueue import (
    QUEUE_FORMAT,
    QueuedWindow,
    WorkQueue,
    config_from_dict,
    config_to_dict,
    read_json,
    write_json_atomic,
)


def small_config(**overrides) -> PipelineConfig:
    defaults = dict(countries=("bd",), sites_per_country=3, seed=13,
                    sub_shard_size=2)
    defaults.update(overrides)
    return PipelineConfig(**defaults)


def plan(config: PipelineConfig) -> list[SelectionSubShard]:
    _web, crux = build_web_for_config(config)
    return plan_selection_windows(config, crux)


# -- config serialization --------------------------------------------------------


def test_config_round_trips_through_json():
    config = small_config(max_in_flight=4, crawl_cache="/tmp/cache",
                          profile=True)
    payload = json.loads(json.dumps(config_to_dict(config)))
    assert config_from_dict(payload) == config


def test_config_from_dict_ignores_unknown_keys():
    payload = config_to_dict(small_config())
    payload["knob_from_the_future"] = 42
    assert config_from_dict(payload) == small_config()


# -- atomic JSON -----------------------------------------------------------------


def test_write_json_atomic_leaves_no_partials(tmp_path):
    path = tmp_path / "payload.json"
    write_json_atomic(path, {"a": 1})
    write_json_atomic(path, {"a": 2})  # overwrite is atomic too
    assert read_json(path) == {"a": 2}
    assert [p.name for p in tmp_path.iterdir()] == ["payload.json"]


def test_read_json_handles_missing_and_torn_files(tmp_path):
    assert read_json(tmp_path / "absent.json") is None
    torn = tmp_path / "torn.json"
    torn.write_text('{"window": {"country_code": "bd", "chu', encoding="utf-8")
    assert read_json(torn) is None
    not_object = tmp_path / "list.json"
    not_object.write_text("[1, 2]", encoding="utf-8")
    assert read_json(not_object) is None


# -- queue lifecycle -------------------------------------------------------------


def test_initialize_publishes_plan_in_merge_order(tmp_path):
    config = small_config(countries=("bd", "th"))
    specs = plan(config)
    queue = WorkQueue(tmp_path / "q")
    windows = queue.initialize(config, specs)
    assert [window.spec for window in windows] == specs
    assert windows[0].window_id == "window-00000"
    # Any other participant recovers the identical plan from disk alone.
    other = WorkQueue(tmp_path / "q")
    assert other.wait_for_build(timeout_s=1.0) == config
    assert other.load_windows() == windows


def test_initialize_rejects_a_different_build(tmp_path):
    queue = WorkQueue(tmp_path / "q")
    config = small_config()
    queue.initialize(config, plan(config))
    queue.mark_done()
    other = small_config(seed=99)
    with pytest.raises(ValueError, match="different build"):
        WorkQueue(tmp_path / "q").initialize(other, plan(other))
    # Same config re-initializes fine and clears the stale done marker.
    WorkQueue(tmp_path / "q").initialize(config, plan(config))
    assert not queue.is_done()


def test_wait_for_build_times_out_without_a_plan(tmp_path):
    queue = WorkQueue(tmp_path / "empty")
    with pytest.raises(TimeoutError):
        queue.wait_for_build(timeout_s=0.1, poll_interval_s=0.02)


def test_wait_for_build_rejects_foreign_format(tmp_path):
    queue = WorkQueue(tmp_path / "q")
    queue.root.mkdir(parents=True)
    write_json_atomic(queue.build_path,
                      {"format": QUEUE_FORMAT + 1, "config": {}})
    with pytest.raises(ValueError, match="format"):
        queue.wait_for_build(timeout_s=1.0)


# -- leases ----------------------------------------------------------------------


def initialized_queue(tmp_path) -> tuple[WorkQueue, list[QueuedWindow]]:
    config = small_config()
    queue = WorkQueue(tmp_path / "q")
    return queue, queue.initialize(config, plan(config))


def test_claim_is_exclusive_until_released(tmp_path):
    queue, windows = initialized_queue(tmp_path)
    window_id = windows[0].window_id
    lease = queue.try_claim(window_id, "worker-a")
    assert lease is not None and lease.worker == "worker-a"
    assert queue.try_claim(window_id, "worker-b") is None
    lease.release()
    assert queue.try_claim(window_id, "worker-b") is not None


def test_heartbeat_refreshes_and_detects_a_reaped_lease(tmp_path):
    queue, windows = initialized_queue(tmp_path)
    lease = queue.try_claim(windows[0].window_id, "worker-a")
    stale = lease.path.stat().st_mtime - 100
    os.utime(lease.path, (stale, stale))
    assert lease.heartbeat() is True
    assert lease.path.stat().st_mtime > stale
    lease.path.unlink()  # reaped underneath the worker
    assert lease.heartbeat() is False


def test_reap_removes_only_stale_leases(tmp_path):
    queue, windows = initialized_queue(tmp_path)
    dead = queue.try_claim(windows[0].window_id, "dead-worker")
    alive = queue.try_claim(windows[1].window_id, "live-worker")
    past = dead.path.stat().st_mtime - 100
    os.utime(dead.path, (past, past))
    assert queue.reap_stale_leases(timeout_s=5.0) == [windows[0].window_id]
    assert not dead.path.exists()
    assert alive.path.exists()
    # The reaped window is claimable again — the SIGKILL recovery path.
    assert queue.try_claim(windows[0].window_id, "replacement") is not None


# -- results and markers ---------------------------------------------------------


def test_commit_result_is_atomic_and_idempotent(tmp_path):
    queue, windows = initialized_queue(tmp_path)
    window_id = windows[0].window_id
    queue.commit_result(window_id, {"window": {}, "evaluations": []})
    queue.commit_result(window_id, {"window": {}, "evaluations": []})
    assert queue.read_result(window_id) == {"window": {}, "evaluations": []}
    assert [p.name for p in queue.results_dir.iterdir()] == [f"{window_id}.json"]


def test_torn_result_reads_as_absent(tmp_path):
    queue, windows = initialized_queue(tmp_path)
    queue.result_path(windows[0].window_id).write_text(
        '{"window": {"country', encoding="utf-8")
    assert queue.read_result(windows[0].window_id) is None


def test_markers(tmp_path):
    queue, _windows = initialized_queue(tmp_path)
    assert queue.filled_countries() == set()
    queue.mark_filled("bd")
    queue.mark_filled("bd")  # idempotent
    queue.mark_filled("th")
    assert queue.filled_countries() == {"bd", "th"}
    assert not queue.is_done()
    queue.mark_done()
    assert queue.is_done()


# -- the result codec ------------------------------------------------------------


def test_window_result_round_trips_through_json(tmp_path):
    config = small_config(crawl_cache=str(tmp_path / "cache"), profile=True)
    web_and_crux = build_web_for_config(config)
    spec = plan(config)[0]
    result = execute_selection_subshard(config, spec, web_and_crux=web_and_crux)
    payload = encode_window_result(result, worker="w1", duration_s=0.25)
    decoded = decode_window_result(json.loads(json.dumps(payload)))
    assert decoded.spec == spec
    assert decoded.worker == "w1"
    assert decoded.duration_s == 0.25
    assert len(decoded.evaluations) == len(result.evaluations)
    for original, rebuilt in zip(result.evaluations, decoded.evaluations):
        assert rebuilt.entry == original.entry
        assert rebuilt.native_share == original.native_share
        assert rebuilt.fetch_succeeded == original.fetch_succeeded
        # Page HTML is stripped for the trip; everything else survives.
        assert all(page.html == "" for page in rebuilt.record.pages)
    for record, line in zip(result.records, decoded.record_lines):
        if record is None:
            assert line is None
        else:
            # The shipped line is exactly the writer's serialization.
            assert line == json.dumps(record.to_dict(), ensure_ascii=False)
    assert decoded.transport_metrics is not None
    assert decoded.transport_metrics.as_dict() == result.transport_metrics.as_dict()
    assert decoded.perf_metrics is not None
    assert decoded.perf_metrics.as_dict() == result.perf_metrics.as_dict()


def test_duplicate_executions_encode_identical_payloads(tmp_path):
    """Window purity: a re-issued window's result is byte-identical, which is
    what makes duplicate completions (and result overwrites) harmless."""
    config = small_config(crawl_cache=str(tmp_path / "cache"))
    web_and_crux = build_web_for_config(config)
    spec = plan(config)[0]
    first = execute_selection_subshard(config, spec, web_and_crux=web_and_crux)
    second = execute_selection_subshard(config, spec, web_and_crux=web_and_crux)
    one = encode_window_result(first, worker="w", duration_s=0.0)
    two = encode_window_result(second, worker="w", duration_s=0.0)
    one["transport_metrics"] = two["transport_metrics"] = None  # cache hits differ
    assert json.dumps(one, sort_keys=True) == json.dumps(two, sort_keys=True)
